//! # rl-planner
//!
//! A from-scratch Rust reproduction of **RL-Planner** from *"Guided Task
//! Planning Under Complex Constraints"* (ICDE 2022): the Task Planning
//! Problem (TPP) modeled as a constrained MDP and solved with weighted
//! SARSA, evaluated on course planning and trip planning against the
//! OMEGA and EDA baselines and expert gold standards.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — items, topic bitsets, AND/OR prerequisites, constraints,
//!   interleaving templates, plans, catalogs, validation;
//! * [`text`] — topic-vocabulary extraction from item descriptions;
//! * [`geo`] — haversine distances, city extents, grid index;
//! * [`store`] — crash-safe persistence: atomic JSON snapshots, the
//!   `QPOL` binary policy/checkpoint format, generational checkpoint
//!   sets with corruption fallback, and a fault-injecting test
//!   filesystem;
//! * [`rl`] — tabular RL substrate (Q-tables, SARSA, Q-learning,
//!   policies, transfer);
//! * [`datagen`] — seeded datasets matching the paper's statistics
//!   (Univ-1, Univ-2, NYC, Paris);
//! * [`core`] — the paper's contribution: reward design (Eq. 2–7), CMDP
//!   environments, the RL-Planner learner/recommender, scoring, transfer;
//! * [`baselines`] — OMEGA, EDA and the gold-standard oracle;
//! * [`eval`] — the experiment harness reproducing every table and
//!   figure;
//! * [`serve`] — the resilient planning daemon: NDJSON request/response
//!   protocol, cooperative deadline budgets, panic isolation, graceful
//!   degradation (trained policy → EDA → partial plan), bounded-queue
//!   load shedding, and a deterministic chaos-injection harness;
//! * [`obs`] — std-only structured tracing (JSONL events, RAII spans)
//!   and metrics (counters, gauges, log-bucketed histograms).
//!
//! ## Quickstart
//!
//! ```
//! use rl_planner::prelude::*;
//!
//! // A course-planning instance with the paper's published statistics.
//! let instance = rl_planner::datagen::univ1_ds_ct(42);
//! let mut params = PlannerParams::univ1_defaults()
//!     .with_start(instance.default_start.unwrap());
//! params.episodes = 50; // keep the doctest quick
//!
//! // Learn a policy (Algorithm 1) and recommend a 10-course plan.
//! let (policy, _stats) = RlPlanner::learn(&instance, &params, 7);
//! let plan = RlPlanner::recommend(&policy, &instance, &params,
//!                                 instance.default_start.unwrap());
//! assert_eq!(plan.len(), instance.horizon());
//! println!("{}", plan.render(&instance.catalog));
//! println!("score: {}", score_plan(&instance, &plan));
//! ```

#![warn(missing_docs)]

pub use tpp_baselines as baselines;
pub use tpp_core as core;
pub use tpp_datagen as datagen;
pub use tpp_eval as eval;
pub use tpp_geo as geo;
pub use tpp_model as model;
pub use tpp_obs as obs;
pub use tpp_rl as rl;
pub use tpp_serve as serve;
pub use tpp_store as store;
pub use tpp_text as text;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use tpp_baselines::{eda_plan, gold_plan, omega_plan, OmegaConfig};
    pub use tpp_core::{
        plan_violations, score_plan, PlannerParams, RlPlanner, SimAggregate, StartPolicy, TppEnv,
        TypeWeights,
    };
    pub use tpp_model::{
        Catalog, HardConstraints, InterleavingTemplate, Item, ItemId, ItemKind, Plan,
        PlanningInstance, PrereqExpr, SoftConstraints, TemplateSet, TopicVector, TopicVocabulary,
        TripConstraints,
    };
    pub use tpp_rl::QTable;
}
