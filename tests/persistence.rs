//! Persistence round-trips across crates: a policy saved to `QPOL` and a
//! dataset saved to JSON drive identical behaviour after reload.

use rl_planner::prelude::*;
use rl_planner::store;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rl-planner-it-{}-{name}", std::process::id()))
}

#[test]
fn policy_roundtrip_drives_identical_plans() {
    let instance = rl_planner::datagen::univ1_ds_ct(rl_planner::datagen::defaults::UNIV1_SEED);
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ1_defaults().with_start(start);
    let (policy, _) = RlPlanner::learn(&instance, &params, 13);
    let before = RlPlanner::recommend(&policy, &instance, &params, start);

    let path = tmp("q.qpol");
    store::save_qtable(&path, &policy.q).unwrap();
    let q = store::load_qtable(&path).unwrap();
    assert_eq!(q, policy.q);
    let after = RlPlanner::recommend_with_q(&q, &instance, &params, start);
    assert_eq!(before, after);
    std::fs::remove_file(&path).ok();
}

#[test]
fn dataset_roundtrip_preserves_planning_behaviour() {
    let instance = rl_planner::datagen::univ1_cyber(rl_planner::datagen::defaults::UNIV1_SEED);
    let path = tmp("cyber.json");
    store::save_json(&path, &instance).unwrap();
    let mut back: PlanningInstance = store::load_json(&path).unwrap();
    back.catalog.rebuild_index();
    back.validate().unwrap();
    assert_eq!(back.catalog.len(), instance.catalog.len());

    // Identical seeds on original and reloaded instance give identical plans.
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ1_defaults().with_start(start);
    let (p1, _) = RlPlanner::learn(&instance, &params, 3);
    let (p2, _) = RlPlanner::learn(&back, &params, 3);
    assert_eq!(
        RlPlanner::recommend(&p1, &instance, &params, start),
        RlPlanner::recommend(&p2, &back, &params, start)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_policy_file_is_rejected() {
    let instance = rl_planner::datagen::univ2_ds(rl_planner::datagen::defaults::UNIV2_SEED);
    let params = PlannerParams::univ2_defaults().with_start(instance.default_start.unwrap());
    let (policy, _) = RlPlanner::learn(&instance, &params, 0);
    let path = tmp("corrupt.qpol");
    store::save_qtable(&path, &policy.q).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&path, &bytes).unwrap();
    assert!(store::load_qtable(&path).is_err());
    std::fs::remove_file(&path).ok();
}
