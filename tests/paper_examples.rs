//! The paper's worked examples, verified end-to-end through the public
//! facade: the Table II toy catalog, the §III-B4 similarity computation,
//! the §II-B exemplar sequences, and Theorem 1's guarantee.

use rl_planner::core::{InterleavingKernel, RewardModel};
use rl_planner::model::toy;
use rl_planner::prelude::*;

#[test]
fn table2_exemplar_sequence_is_perfect() {
    // §II-B1: m1 → m2 → m4 → m5 → m6 → m3 "fully satisfies the
    // permutation I2" — so it is valid and scores H = 6.
    let instance = PlanningInstance {
        catalog: toy::table2_catalog(),
        hard: toy::table2_hard(),
        soft: toy::table2_soft(),
        trip: None,
        default_start: Some(ItemId(0)),
    };
    let plan = Plan::from_codes(&instance.catalog, &["m1", "m2", "m4", "m5", "m6", "m3"]).unwrap();
    assert!(plan_violations(&instance, &plan).is_empty());
    assert_eq!(score_plan(&instance, &plan), 6.0);
}

#[test]
fn paper_similarity_worked_example() {
    // §III-B4: seq {P,S,P,P} vs course templates ⇒ Sim = [0.5, 1, 1.5],
    // AvgSim = 1.
    use rl_planner::model::ItemKind::{Primary as P, Secondary as S};
    let it = TemplateSet::paper_course_example();
    let seq = [P, S, P, P];
    let sims: Vec<f64> = it
        .templates()
        .iter()
        .map(|t| InterleavingKernel::sim(&seq, t))
        .collect();
    assert_eq!(sims, vec![0.5, 1.0, 1.5]);
    assert_eq!(
        InterleavingKernel::aggregate(&seq, &it, SimAggregate::Average),
        1.0
    );
}

#[test]
fn paris_exemplar_itinerary_matches_template_i1() {
    // §II-B2: Louvre → Le Cinq → Eiffel → Rue des Martyrs → Seine fully
    // satisfies I1 = PSPSS.
    let catalog = toy::paris_toy_catalog();
    let plan = Plan::from_codes(
        &catalog,
        &[
            "louvre museum",
            "le cinq",
            "eiffel tower",
            "rue des martyrs",
            "river seine",
        ],
    )
    .unwrap();
    let kinds = plan.kind_sequence(&catalog);
    let it = TemplateSet::paper_trip_example();
    assert_eq!(InterleavingKernel::sim(&kinds, &it.templates()[0]), 5.0);
}

#[test]
fn theorem1_reward_zero_on_any_hard_violation() {
    // Theorem 1: θ = r1·r2 zeroes the reward whenever the antecedent gap
    // is violated — driven through the real environment.
    let instance = PlanningInstance {
        catalog: toy::table2_catalog(),
        hard: toy::table2_hard(),
        soft: toy::table2_soft(),
        trip: None,
        default_start: Some(ItemId(0)),
    };
    let mut params = PlannerParams::univ1_defaults();
    params.epsilon = 0.0; // isolate the antecedent gate
    let model = RewardModel::new(
        instance.soft.ideal_topics.clone(),
        instance.soft.templates.clone(),
        instance.hard.gap,
        &params,
        false,
    );
    // m6 (Machine Learning) needs m4 AND m2; with an empty history the
    // reward is exactly zero.
    let m6 = instance.catalog.by_code("m6").unwrap();
    let empty = instance.catalog.vocabulary().zero_vector();
    let none = |_: ItemId| None::<usize>;
    assert_eq!(model.reward(m6, &[], &empty, &none, None), 0.0);
}

#[test]
fn learned_policy_solves_the_toy_instance() {
    // The paper's Table II instance is solvable end-to-end: with enough
    // episodes RL-Planner recovers a valid (often exemplar-equivalent)
    // plan.
    let instance = PlanningInstance {
        catalog: toy::table2_catalog(),
        hard: toy::table2_hard(),
        soft: toy::table2_soft(),
        trip: None,
        default_start: Some(ItemId(0)),
    };
    let mut params = PlannerParams::univ1_defaults().with_start(ItemId(0));
    params.epsilon = 0.0;
    params.episodes = 1500;
    let mut best = 0.0f64;
    for seed in 0..6 {
        let (policy, _) = RlPlanner::learn(&instance, &params, seed);
        let plan = RlPlanner::recommend(&policy, &instance, &params, ItemId(0));
        best = best.max(score_plan(&instance, &plan));
    }
    assert!(best >= 5.0, "best toy score {best} (perfect is 6)");
}
