//! End-to-end trip-planning pipeline over the public facade API.

use rl_planner::prelude::*;

fn nyc() -> PlanningInstance {
    rl_planner::datagen::nyc(rl_planner::datagen::defaults::NYC_SEED).instance
}

#[test]
fn itineraries_respect_all_trip_constraints() {
    let instance = nyc();
    let start = instance.default_start.unwrap();
    let params = PlannerParams::trip_defaults().with_start(start);
    for seed in 0..5 {
        let (policy, _) = RlPlanner::learn(&instance, &params, seed);
        let plan = RlPlanner::recommend(&policy, &instance, &params, start);
        // The CMDP prunes invalid actions, so the walk is violation-free
        // by construction.
        assert!(
            plan_violations(&instance, &plan).is_empty(),
            "seed {seed}: {:?}",
            plan_violations(&instance, &plan)
        );
        // Time budget.
        assert!(plan.total_credits(&instance.catalog) <= instance.hard.credits + 1e-9);
        // No consecutive shared themes.
        for w in plan.items().windows(2) {
            let a = &instance.catalog.item(w[0]).topics;
            let b = &instance.catalog.item(w[1]).topics;
            assert_eq!(a.intersection_count(b), 0, "consecutive same theme");
        }
        // Itineraries are non-trivial.
        assert!(plan.len() >= 2, "seed {seed}: length {}", plan.len());
    }
}

#[test]
fn restaurant_antecedents_enforced_end_to_end() {
    let d = rl_planner::datagen::paris(rl_planner::datagen::defaults::PARIS_SEED);
    let instance = &d.instance;
    let voc = instance.catalog.vocabulary();
    let restaurant = voc.id_of("restaurant").unwrap();
    let start = instance.default_start.unwrap();
    let params = PlannerParams::trip_defaults().with_start(start);
    for seed in 0..5 {
        let (policy, _) = RlPlanner::learn(instance, &params, seed);
        let plan = RlPlanner::recommend(&policy, instance, &params, start);
        for (i, &id) in plan.items().iter().enumerate() {
            let item = instance.catalog.item(id);
            if item.topics.get(restaurant) && !item.prereq.is_none() {
                // Some museum/gallery must appear earlier.
                let earlier = &plan.items()[..i];
                let museum = voc.id_of("museum").unwrap();
                let gallery = voc.id_of("gallery").unwrap();
                assert!(
                    earlier.iter().any(|&e| {
                        let t = &instance.catalog.item(e).topics;
                        t.get(museum) || t.get(gallery)
                    }),
                    "restaurant {} before any museum (seed {seed})",
                    item.code
                );
            }
        }
    }
}

#[test]
fn tightening_budgets_shrinks_or_preserves_itineraries() {
    let base = nyc();
    let start = base.default_start.unwrap();
    let params = PlannerParams::trip_defaults().with_start(start);
    let mut lens = Vec::new();
    for t in [8.0, 6.0, 4.0] {
        let mut instance = base.clone();
        instance.hard.credits = t;
        let (policy, _) = RlPlanner::learn(&instance, &params, 0);
        let plan = RlPlanner::recommend(&policy, &instance, &params, start);
        assert!(plan.total_credits(&instance.catalog) <= t + 1e-9);
        lens.push(plan.len());
    }
    assert!(
        lens[0] >= lens[2],
        "an 8h budget should fit at least as many POIs as 4h: {lens:?}"
    );
}

#[test]
fn trip_scores_bounded_by_max_popularity() {
    let instance = nyc();
    let start = instance.default_start.unwrap();
    let params = PlannerParams::trip_defaults().with_start(start);
    let (policy, _) = RlPlanner::learn(&instance, &params, 2);
    let plan = RlPlanner::recommend(&policy, &instance, &params, start);
    let s = score_plan(&instance, &plan);
    assert!(s > 0.0 && s <= 5.0, "trip score {s} out of range");
}

#[test]
fn itinerary_logs_feed_omega() {
    let d = rl_planner::datagen::nyc(rl_planner::datagen::defaults::NYC_SEED);
    assert_eq!(d.itineraries.len(), 2908);
    let m = rl_planner::datagen::itineraries::co_consumption_matrix(
        &d.instance.catalog,
        &d.itineraries,
    );
    // The matrix is non-trivial: popular pairs co-occur.
    let total: u64 = m.iter().flatten().map(|&x| u64::from(x)).sum();
    assert!(total > 10_000, "co-consumption total {total}");
    let plan = omega_plan(
        &d.instance,
        &OmegaConfig {
            prefix_len: 2,
            use_logs: true,
        },
        Some(&m),
    );
    assert!(!plan.is_empty());
}
