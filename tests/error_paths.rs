//! Failure-injection tests: the public API must fail loudly and
//! informatively, never silently.

use rl_planner::prelude::*;

fn ds_ct() -> PlanningInstance {
    rl_planner::datagen::univ1_ds_ct(rl_planner::datagen::defaults::UNIV1_SEED)
}

#[test]
#[should_panic(expected = "invalid planner parameters")]
fn learn_rejects_inconsistent_delta_beta() {
    let instance = ds_ct();
    let mut params = PlannerParams::univ1_defaults();
    params.delta = 0.9; // beta stays 0.4 → sums to 1.3
    let _ = RlPlanner::learn(&instance, &params, 0);
}

#[test]
#[should_panic(expected = "invalid planner parameters")]
fn learn_rejects_bad_gamma() {
    let instance = ds_ct();
    let mut params = PlannerParams::univ1_defaults();
    params.gamma = 1.5;
    let _ = RlPlanner::learn(&instance, &params, 0);
}

#[test]
#[should_panic(expected = "out of range")]
fn env_rejects_out_of_range_start() {
    use rl_planner::rl::Environment;
    let instance = ds_ct();
    let params = PlannerParams::univ1_defaults();
    let mut env = TppEnv::new(&instance, &params);
    env.reset(instance.catalog.len() + 5);
}

#[test]
fn instance_validation_catches_mismatched_ideal_vector() {
    let mut instance = ds_ct();
    instance.soft.ideal_topics = TopicVector::ones(3); // vocabulary has 60
    let err = instance.validate().unwrap_err();
    assert!(err.to_string().contains("ideal topic vector"));
}

#[test]
fn template_shape_mismatch_is_reported() {
    let hard = HardConstraints {
        credits: 30.0,
        n_primary: 5,
        n_secondary: 5,
        gap: 3,
    };
    let bad = TemplateSet::from_strs(&["PPSS"]).unwrap();
    let err = bad.check_shape(&hard).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('2') && msg.contains('5'), "{msg}");
}

#[test]
fn catalog_rejects_duplicate_codes_with_clear_error() {
    use rl_planner::model::CatalogBuilder;
    let err = CatalogBuilder::new("dup")
        .topics(["a"])
        .course("X", "First", ItemKind::Primary, 3.0, &["a"])
        .course("X", "Second", ItemKind::Primary, 3.0, &["a"])
        .build()
        .unwrap_err();
    assert!(err.to_string().contains('X'));
}

#[test]
fn plan_from_unknown_codes_is_an_error_not_a_panic() {
    let instance = ds_ct();
    let err = Plan::from_codes(&instance.catalog, &["CS 675", "NOT A COURSE"]).unwrap_err();
    assert!(err.to_string().contains("NOT A COURSE"));
}

#[test]
fn scoring_a_foreign_plan_reports_unknown_items() {
    let instance = ds_ct();
    let foreign = Plan::from_items(vec![ItemId(999)]);
    let violations = plan_violations(&instance, &foreign);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].to_string().contains("unknown item"));
    assert_eq!(score_plan(&instance, &foreign), 0.0);
}
