//! Cross-crate property tests driven through the public facade.

use proptest::prelude::*;
use rl_planner::core::{InterleavingKernel, RewardModel};
use rl_planner::model::ItemKind;
use rl_planner::prelude::*;

fn kind_seq(len: usize) -> impl Strategy<Value = Vec<ItemKind>> {
    prop::collection::vec(
        prop::bool::ANY.prop_map(|b| {
            if b {
                ItemKind::Primary
            } else {
                ItemKind::Secondary
            }
        }),
        0..=len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 6 bounds: 0 ≤ Sim(s, I)^k ≤ k, with equality to k only on a
    /// perfect prefix match.
    #[test]
    fn sim_bounded_by_prefix_length(seq in kind_seq(12)) {
        let it = TemplateSet::paper_course_example();
        for t in it.templates() {
            let k = seq.len().min(t.len());
            let s = InterleavingKernel::sim(&seq, t);
            prop_assert!(s >= 0.0);
            prop_assert!(s <= k as f64 + 1e-12);
            if k > 0 && (s - k as f64).abs() < 1e-12 {
                prop_assert!(seq[..k] == t.slots()[..k]);
            }
        }
    }

    /// MinSim ≤ AvgSim ≤ best-template Sim, always.
    #[test]
    fn sim_aggregates_ordered(seq in kind_seq(10)) {
        let it = TemplateSet::paper_course_example();
        let avg = InterleavingKernel::aggregate(&seq, &it, SimAggregate::Average);
        let min = InterleavingKernel::aggregate(&seq, &it, SimAggregate::Minimum);
        let best = InterleavingKernel::best(&seq, &it);
        prop_assert!(min <= avg + 1e-12);
        prop_assert!(avg <= best + 1e-12);
    }

    /// Theorem 1 as a property: the Eq. 2 reward is 0 whenever the
    /// antecedent gate fails, for arbitrary histories.
    #[test]
    fn reward_zero_without_antecedents(
        seq in kind_seq(8),
        delta in 0.0f64..=1.0,
    ) {
        let catalog = rl_planner::model::toy::table2_catalog();
        let mut params = PlannerParams::univ1_defaults();
        params.delta = delta;
        params.beta = 1.0 - delta;
        params.epsilon = 0.0;
        let model = RewardModel::new(
            rl_planner::model::toy::table2_soft().ideal_topics,
            TemplateSet::paper_course_example(),
            3,
            &params,
            false,
        );
        // m6 requires m4 AND m2; the position map reports nothing.
        let m6 = catalog.by_code("m6").unwrap();
        let empty = catalog.vocabulary().zero_vector();
        let none = |_: ItemId| None::<usize>;
        prop_assert_eq!(model.reward(m6, &seq, &empty, &none, None), 0.0);
    }

    /// Rewards are finite and non-negative for any gate-passing item.
    #[test]
    fn reward_finite_nonnegative(seq in kind_seq(8)) {
        let catalog = rl_planner::model::toy::table2_catalog();
        let mut params = PlannerParams::univ1_defaults();
        params.epsilon = 0.0;
        let model = RewardModel::new(
            rl_planner::model::toy::table2_soft().ideal_topics,
            TemplateSet::paper_course_example(),
            3,
            &params,
            false,
        );
        let m1 = catalog.by_code("m1").unwrap(); // no antecedents
        let empty = catalog.vocabulary().zero_vector();
        let none = |_: ItemId| None::<usize>;
        let r = model.reward(m1, &seq, &empty, &none, None);
        prop_assert!(r.is_finite());
        prop_assert!(r >= 0.0);
    }

    /// Recommended plans never repeat an item and never exceed the
    /// horizon, for any seed and episode budget.
    #[test]
    fn recommendation_well_formed(seed in 0u64..50, episodes in 10usize..80) {
        let instance =
            rl_planner::datagen::univ1_ds_ct(rl_planner::datagen::defaults::UNIV1_SEED);
        let start = instance.default_start.unwrap();
        let mut params = PlannerParams::univ1_defaults().with_start(start);
        params.episodes = episodes;
        let (policy, _) = RlPlanner::learn(&instance, &params, seed);
        let plan = RlPlanner::recommend(&policy, &instance, &params, start);
        prop_assert!(plan.len() <= instance.horizon());
        let mut seen = std::collections::HashSet::new();
        for &id in plan.items() {
            prop_assert!(seen.insert(id), "duplicate {id}");
            prop_assert!(instance.catalog.get(id).is_some());
        }
        prop_assert_eq!(plan.items()[0], start);
    }

    /// The environment's incremental validity agrees with the validator:
    /// an episode driven to completion never yields trip violations.
    #[test]
    fn env_validity_agrees_with_validator(seed in 0u64..30) {
        let instance =
            rl_planner::datagen::nyc(rl_planner::datagen::defaults::NYC_SEED).instance;
        let start = instance.default_start.unwrap();
        let mut params = PlannerParams::trip_defaults().with_start(start);
        params.episodes = 30;
        let (policy, _) = RlPlanner::learn(&instance, &params, seed);
        let plan = RlPlanner::recommend(&policy, &instance, &params, start);
        prop_assert!(plan_violations(&instance, &plan).is_empty());
    }

    /// QPOL encode/decode is lossless for arbitrary Q contents.
    #[test]
    fn qpol_roundtrip(vals in prop::collection::vec(-1e6f64..1e6, 16)) {
        let q = QTable::from_raw(4, 4, vals);
        let bytes = rl_planner::store::encode_qtable(&q);
        let back = rl_planner::store::decode_qtable(&bytes).unwrap();
        prop_assert_eq!(q, back);
    }
}
