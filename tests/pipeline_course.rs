//! End-to-end course-planning pipeline over the public facade API.

use rl_planner::prelude::*;

fn ds_ct() -> PlanningInstance {
    rl_planner::datagen::univ1_ds_ct(rl_planner::datagen::defaults::UNIV1_SEED)
}

#[test]
fn full_pipeline_produces_valid_scored_plan() {
    let instance = ds_ct();
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ1_defaults().with_start(start);
    // Across 6 seeds, a clear majority of runs must produce plans that
    // satisfy every hard constraint, and all runs must fill the horizon.
    let mut valid = 0;
    for seed in 0..6 {
        let (policy, stats) = RlPlanner::learn(&instance, &params, seed);
        assert_eq!(stats.episodes(), params.episodes);
        let plan = RlPlanner::recommend(&policy, &instance, &params, start);
        assert_eq!(plan.len(), instance.horizon());
        assert_eq!(plan.items()[0], start);
        if plan_violations(&instance, &plan).is_empty() {
            valid += 1;
            let s = score_plan(&instance, &plan);
            assert!(s > 0.0 && s <= instance.horizon() as f64);
        }
    }
    assert!(valid >= 3, "only {valid}/6 seeds produced valid plans");
}

#[test]
fn rl_beats_eda_beats_omega_on_average() {
    let instance = ds_ct();
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ1_defaults().with_start(start);
    let runs = 8u64;
    let rl: f64 = (0..runs)
        .map(|seed| {
            let (policy, _) = RlPlanner::learn(&instance, &params, seed);
            score_plan(
                &instance,
                &RlPlanner::recommend(&policy, &instance, &params, start),
            )
        })
        .sum::<f64>()
        / runs as f64;
    let eda: f64 = (0..runs)
        .map(|seed| score_plan(&instance, &eda_plan(&instance, &params, start, seed)))
        .sum::<f64>()
        / runs as f64;
    let omega = score_plan(
        &instance,
        &omega_plan(
            &instance,
            &OmegaConfig::paper_adaptation(instance.horizon()),
            None,
        ),
    );
    let gold = score_plan(&instance, &gold_plan(&instance, Some(start)));
    assert!(gold >= rl, "gold {gold} < rl {rl}");
    assert!(rl >= eda - 0.5, "rl {rl} well below eda {eda}");
    assert!(eda > omega, "eda {eda} <= omega {omega}");
    assert_eq!(
        gold,
        instance.horizon() as f64,
        "gold is a perfect template"
    );
}

#[test]
fn plans_respect_semester_structure() {
    // Every valid plan schedules CS 677's antecedents (CS 675 and one of
    // CS 610 / CS 634 / CS 657) at least one semester earlier.
    let instance = ds_ct();
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ1_defaults().with_start(start);
    for seed in 0..6 {
        let (policy, _) = RlPlanner::learn(&instance, &params, seed);
        let plan = RlPlanner::recommend(&policy, &instance, &params, start);
        if !plan_violations(&instance, &plan).is_empty() {
            continue;
        }
        let cs677 = instance.catalog.by_code("CS 677").unwrap().id;
        if let Some(pos) = plan.position_of(cs677) {
            let sem = pos / instance.hard.gap;
            let cs675 = instance.catalog.by_code("CS 675").unwrap().id;
            let p675 = plan
                .position_of(cs675)
                .expect("CS 675 is core, always present");
            assert!(
                p675 / instance.hard.gap < sem,
                "CS 675 not a semester before CS 677"
            );
        }
    }
}

#[test]
fn univ2_category_weights_flow_through() {
    // The Univ-2 pipeline exercises the six-way category weighting.
    let instance = rl_planner::datagen::univ2_ds(rl_planner::datagen::defaults::UNIV2_SEED);
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ2_defaults().with_start(start);
    assert!(matches!(params.weights, TypeWeights::Categories(_)));
    let (policy, _) = RlPlanner::learn(&instance, &params, 1);
    let plan = RlPlanner::recommend(&policy, &instance, &params, start);
    assert_eq!(plan.len(), 15);
    // Every recommended course carries a category.
    for &id in plan.items() {
        assert!(instance.catalog.item(id).category.is_some());
    }
}

#[test]
fn min_similarity_variant_is_comparable() {
    // §IV-A4: "RL-Planner works effectively regardless of the similarity
    // metric used" — MinSim scores the same order of magnitude as AvgSim.
    let instance = ds_ct();
    let start = instance.default_start.unwrap();
    let base = PlannerParams::univ1_defaults().with_start(start);
    let avg: f64 = (0..6u64)
        .map(|s| {
            let (p, _) = RlPlanner::learn(&instance, &base, s);
            score_plan(
                &instance,
                &RlPlanner::recommend(&p, &instance, &base, start),
            )
        })
        .sum::<f64>()
        / 6.0;
    let minp = base.clone().with_sim(SimAggregate::Minimum);
    let min: f64 = (0..6u64)
        .map(|s| {
            let (p, _) = RlPlanner::learn(&instance, &minp, s);
            score_plan(
                &instance,
                &RlPlanner::recommend(&p, &instance, &minp, start),
            )
        })
        .sum::<f64>()
        / 6.0;
    assert!(min > 0.0, "MinSim should still produce valid plans");
    assert!(
        (avg - min).abs() < 6.0,
        "variants diverged: avg {avg}, min {min}"
    );
}
