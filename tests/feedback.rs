//! The §VI feedback loop exercised across crates — including on trips,
//! where exclusions interact with the budget-pruned action space.

use rl_planner::core::{Feedback, FeedbackConfig, FeedbackLoop};
use rl_planner::prelude::*;

#[test]
fn trip_feedback_reroutes_around_disliked_poi() {
    let d = rl_planner::datagen::paris(rl_planner::datagen::defaults::PARIS_SEED);
    let instance = &d.instance;
    let start = instance.default_start.unwrap();
    let params = PlannerParams::trip_defaults().with_start(start);
    let (policy, _) = RlPlanner::learn(instance, &params, 0);
    let before = RlPlanner::recommend(&policy, instance, &params, start);
    assert!(before.len() >= 2);

    // The traveller hates the second stop.
    let disliked = before.items()[1];
    let mut lp = FeedbackLoop::new(policy, instance.catalog.len(), FeedbackConfig::default());
    lp.observe(disliked, &Feedback::Binary(false));
    let after = lp.replan(instance, &params, start);

    assert!(!after.contains(disliked), "disliked POI still present");
    // The rerouted itinerary stays fully valid (the environment enforces
    // budgets regardless of exclusions).
    assert!(plan_violations(instance, &after).is_empty());
    assert!(score_plan(instance, &after) > 0.0);
}

#[test]
fn repeated_feedback_rounds_accumulate() {
    let instance = rl_planner::datagen::univ1_cs(rl_planner::datagen::defaults::UNIV1_SEED);
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ1_defaults().with_start(start);
    let (policy, _) = RlPlanner::learn(&instance, &params, 1);
    let mut lp = FeedbackLoop::new(policy, instance.catalog.len(), FeedbackConfig::default());

    // Three rounds: each round bans the first still-recommended elective.
    let mut banned_total = 0;
    for _ in 0..3 {
        let plan = lp.replan(&instance, &params, start);
        let Some(elective) = plan
            .items()
            .iter()
            .copied()
            .find(|&id| !instance.catalog.item(id).is_primary() && !lp.banned().contains(&id))
        else {
            break;
        };
        lp.observe(elective, &Feedback::Binary(false));
        banned_total += 1;
        let next = lp.replan(&instance, &params, start);
        for b in lp.banned() {
            assert!(!next.contains(*b), "banned item {b} reappeared");
        }
    }
    assert_eq!(lp.banned().len(), banned_total);
}

#[test]
fn distribution_feedback_equivalent_to_its_mean_rating() {
    // A distribution concentrated on rating r has the same utility as
    // Rating(r), so the loop state evolves identically.
    let instance = rl_planner::datagen::univ1_ds_ct(rl_planner::datagen::defaults::UNIV1_SEED);
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ1_defaults().with_start(start);
    let (policy, _) = RlPlanner::learn(&instance, &params, 2);
    let item = instance.catalog.by_code("CS 683").unwrap().id;

    let mut a = FeedbackLoop::new(
        policy.clone(),
        instance.catalog.len(),
        FeedbackConfig::default(),
    );
    a.observe(item, &Feedback::Rating(4));
    let mut b = FeedbackLoop::new(policy, instance.catalog.len(), FeedbackConfig::default());
    let mut dist = [0.0; 5];
    dist[3] = 1.0; // all mass on rating 4
    b.observe(item, &Feedback::Distribution(dist));

    assert_eq!(a.utility_of(item), b.utility_of(item));
    assert_eq!(
        a.replan(&instance, &params, start),
        b.replan(&instance, &params, start)
    );
}
