//! End-to-end observability: short training runs with the JSONL sink
//! installed must emit schema-conformant trace lines, and the metrics
//! registry must pick up the constraint-gate and histogram instruments.
//!
//! Single `#[test]` because the sink registry and metrics are
//! process-wide.

use rl_planner::obs;
use rl_planner::obs::json::{self, Json};
use rl_planner::prelude::*;
use std::sync::Arc;

#[test]
fn training_with_jsonl_sink_emits_schema_valid_trace() {
    let path =
        std::env::temp_dir().join(format!("rl-planner-obs-trace-{}.jsonl", std::process::id()));
    let sink = obs::JsonlSink::create(&path, obs::Level::Trace).expect("create trace file");
    obs::add_sink(Arc::new(sink));

    // A short course training run + recommendation on DS-CT…
    let course = rl_planner::datagen::univ1_ds_ct(42);
    let start = course.default_start.unwrap();
    let mut params = PlannerParams::univ1_defaults().with_start(start);
    params.episodes = 50;
    let (policy, stats) = RlPlanner::learn(&course, &params, 0);
    let _ = RlPlanner::recommend(&policy, &course, &params, start);
    assert_eq!(stats.episodes(), 50);

    // …and a trip run, which exercises the constraint gate.
    let trip = rl_planner::datagen::paris(7).instance;
    let tstart = trip.default_start.unwrap();
    let mut tparams = PlannerParams::trip_defaults().with_start(tstart);
    tparams.episodes = 50;
    let _ = RlPlanner::learn(&trip, &tparams, 0);

    // Flushes buffered lines and disables emission.
    obs::clear_sinks();

    let body = std::fs::read_to_string(&path).expect("trace file exists");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "trace must not be empty");

    let levels = ["error", "warn", "info", "debug", "trace"];
    let mut episodes = 0usize;
    let mut sessions = 0usize;
    let mut recommends = 0usize;
    for line in &lines {
        let v = json::parse(line).unwrap_or_else(|e| panic!("invalid JSONL line {line:?}: {e}"));
        // Schema: t_us (number), level (known string), event (string),
        // fields (object).
        let t_us = v
            .get("t_us")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("missing t_us in {line:?}"));
        assert!(t_us >= 0.0);
        let level = v
            .get("level")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("missing level in {line:?}"));
        assert!(levels.contains(&level), "unknown level {level:?}");
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("missing event in {line:?}"));
        let fields = v
            .get("fields")
            .unwrap_or_else(|| panic!("missing fields in {line:?}"));
        match event {
            "train.episode" => {
                episodes += 1;
                assert!(fields.get("episode").and_then(Json::as_f64).is_some());
                assert!(fields.get("epsilon").and_then(Json::as_f64).is_some());
                assert!(fields.get("ep_return").and_then(Json::as_f64).is_some());
            }
            "train.session" => {
                sessions += 1;
                assert!(fields.get("mean_return").and_then(Json::as_f64).is_some());
                assert!(fields.get("duration_us").and_then(Json::as_f64).is_some());
                assert!(fields.get("gate_checked").and_then(Json::as_f64).is_some());
            }
            "plan.recommend" => {
                recommends += 1;
                assert!(fields.get("plan_len").and_then(Json::as_f64).is_some());
            }
            _ => {}
        }
    }
    assert_eq!(episodes, 100, "one train.episode event per episode");
    assert_eq!(sessions, 2, "one train.session span per learn call");
    assert!(recommends >= 1, "the recommendation span must appear");

    // Timestamps are monotone non-decreasing in emission order.
    let stamps: Vec<f64> = lines
        .iter()
        .map(|l| {
            json::parse(l)
                .unwrap()
                .get("t_us")
                .unwrap()
                .as_f64()
                .unwrap()
        })
        .collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]));

    // The metrics registry saw the gate and the action-set histogram.
    let m = obs::metrics();
    assert!(m.counter("gate.checked").get() > 0);
    let rejected = m.counter("gate.reject.credits").get()
        + m.counter("gate.reject.theme_gap").get()
        + m.counter("gate.reject.distance").get();
    assert!(rejected > 0, "trip training must hit the constraint gate");
    assert!(m.histogram("env.valid_actions").count() > 0);
    assert!(m.histogram("span.train.session.us").count() >= 2);

    // The machine-readable metrics dump is itself valid JSON.
    let dump = m.render_json();
    let parsed = json::parse(&dump).expect("metrics JSON parses");
    assert!(parsed.get("counters").is_some());
    assert!(parsed.get("histograms").is_some());
}
