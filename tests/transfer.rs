//! Cross-universe transfer pipelines (the §IV-D case studies) through the
//! public API.

use rl_planner::core::{course_mapping_by_code, poi_mapping_by_theme, transfer_policy};
use rl_planner::prelude::*;

#[test]
fn course_transfer_cs_to_dsct_produces_usable_plans() {
    use rl_planner::datagen::{defaults::UNIV1_SEED, univ1_cs, univ1_ds_ct};
    let cs = univ1_cs(UNIV1_SEED);
    let ds = univ1_ds_ct(UNIV1_SEED);
    let src_params = PlannerParams::univ1_defaults().with_start(cs.default_start.unwrap());
    let mapping = course_mapping_by_code(&ds.catalog, &cs.catalog);
    assert!(mapping.coverage() > 0.4);

    let start = ds.default_start.unwrap();
    let tgt_params = PlannerParams::univ1_defaults().with_start(start);
    let mut positive = 0;
    for seed in 0..6 {
        let (policy, _) = RlPlanner::learn(&cs, &src_params, seed);
        let q = transfer_policy(&policy.q, &mapping);
        let plan = RlPlanner::recommend_with_q(&q, &ds, &tgt_params, start);
        assert_eq!(plan.len(), ds.horizon());
        if score_plan(&ds, &plan) > 0.0 {
            positive += 1;
        }
    }
    assert!(positive >= 2, "only {positive}/6 transfers scored > 0");
}

#[test]
fn course_transfer_roundtrip_both_directions() {
    use rl_planner::datagen::{defaults::UNIV1_SEED, univ1_cs, univ1_ds_ct};
    let cs = univ1_cs(UNIV1_SEED);
    let ds = univ1_ds_ct(UNIV1_SEED);
    // DS-CT → CS direction.
    let src_params = PlannerParams::univ1_defaults().with_start(ds.default_start.unwrap());
    let (policy, _) = RlPlanner::learn(&ds, &src_params, 1);
    let mapping = course_mapping_by_code(&cs.catalog, &ds.catalog);
    let q = transfer_policy(&policy.q, &mapping);
    let start = cs.default_start.unwrap();
    let plan = RlPlanner::recommend_with_q(
        &q,
        &cs,
        &PlannerParams::univ1_defaults().with_start(start),
        start,
    );
    assert_eq!(plan.len(), cs.horizon());
    // The plan must be well-formed even when invalid: no duplicates.
    let mut seen = std::collections::HashSet::new();
    for &id in plan.items() {
        assert!(seen.insert(id));
    }
}

#[test]
fn trip_transfer_both_directions_scores_high() {
    use rl_planner::datagen::{defaults::*, nyc, paris};
    let n = nyc(NYC_SEED).instance;
    let p = paris(PARIS_SEED).instance;
    for (src, tgt) in [(&n, &p), (&p, &n)] {
        let src_params = PlannerParams::trip_defaults().with_start(src.default_start.unwrap());
        let (policy, _) = RlPlanner::learn(src, &src_params, 0);
        let mapping = poi_mapping_by_theme(&tgt.catalog, &src.catalog);
        assert!(
            mapping.coverage() > 0.5,
            "{} → {}",
            src.catalog.name(),
            tgt.catalog.name()
        );
        let q = transfer_policy(&policy.q, &mapping);
        let start = tgt.default_start.unwrap();
        let plan = RlPlanner::recommend_with_q(
            &q,
            tgt,
            &PlannerParams::trip_defaults().with_start(start),
            start,
        );
        let s = score_plan(tgt, &plan);
        assert!(
            s > 3.5,
            "{} → {}: transferred score {s}",
            src.catalog.name(),
            tgt.catalog.name()
        );
    }
}

#[test]
fn transferred_q_respects_target_validity() {
    // Even a transferred (foreign) policy cannot make the environment
    // violate trip constraints — validity is enforced by the CMDP.
    use rl_planner::datagen::{defaults::*, nyc, paris};
    let n = nyc(NYC_SEED).instance;
    let p = paris(PARIS_SEED).instance;
    let src_params = PlannerParams::trip_defaults().with_start(n.default_start.unwrap());
    let (policy, _) = RlPlanner::learn(&n, &src_params, 4);
    let mapping = poi_mapping_by_theme(&p.catalog, &n.catalog);
    let q = transfer_policy(&policy.q, &mapping);
    let start = p.default_start.unwrap();
    let plan = RlPlanner::recommend_with_q(
        &q,
        &p,
        &PlannerParams::trip_defaults().with_start(start),
        start,
    );
    assert!(plan_violations(&p, &plan).is_empty());
}
