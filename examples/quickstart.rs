//! Quickstart: build a dataset, learn a policy, recommend a plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rl_planner::prelude::*;

fn main() {
    // The Univ-1 M.S. DS-CT instance with the paper's statistics: 31
    // courses, 60 topics, hard constraints ⟨30 credits, 5 core,
    // 5 elective, gap 3⟩.
    let instance = rl_planner::datagen::univ1_ds_ct(rl_planner::datagen::defaults::UNIV1_SEED);
    println!(
        "dataset: {} — {} courses, {} topics, horizon {}",
        instance.catalog.name(),
        instance.catalog.len(),
        instance.catalog.vocabulary().len(),
        instance.horizon()
    );

    // Table III defaults, starting from CS 675 (Machine Learning).
    let start = instance.default_start.expect("dataset has a default start");
    let params = PlannerParams::univ1_defaults().with_start(start);

    // Learn (Algorithm 1: SARSA over the CMDP) and recommend.
    let (policy, stats) = RlPlanner::learn(&instance, &params, 42);
    println!(
        "trained {} episodes; mean episode return {:.2}",
        stats.episodes(),
        stats.mean_return()
    );
    let plan = RlPlanner::recommend(&policy, &instance, &params, start);

    println!("\nrecommended plan:");
    for (i, &id) in plan.items().iter().enumerate() {
        let item = instance.catalog.item(id);
        println!(
            "  semester {} | {:8} {:50} [{}]",
            i / instance.hard.gap + 1,
            item.code,
            item.name,
            if item.is_primary() {
                "core"
            } else {
                "elective"
            },
        );
    }

    // Score and validate (any hard-constraint violation would zero it).
    let score = score_plan(&instance, &plan);
    let violations = plan_violations(&instance, &plan);
    println!("\nscore: {score} / {} (gold standard)", instance.horizon());
    if violations.is_empty() {
        println!("all hard constraints satisfied");
    } else {
        for v in violations {
            println!("violation: {v}");
        }
    }
}
