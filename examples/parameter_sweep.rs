//! A miniature robustness sweep (the Tables IX–XI idea at example
//! scale): vary one knob at a time from the Table III defaults and print
//! the average score, with both AvgSim and MinSim reward variants.
//!
//! ```sh
//! cargo run --release --example parameter_sweep
//! ```

use rl_planner::prelude::*;

fn avg_score(instance: &PlanningInstance, params: &PlannerParams, runs: u64) -> f64 {
    let start = instance.default_start.unwrap();
    (0..runs)
        .map(|seed| {
            let (policy, _) = RlPlanner::learn(instance, params, seed);
            score_plan(
                instance,
                &RlPlanner::recommend(&policy, instance, params, start),
            )
        })
        .sum::<f64>()
        / runs as f64
}

fn main() {
    let instance = rl_planner::datagen::univ1_ds_ct(rl_planner::datagen::defaults::UNIV1_SEED);
    let start = instance.default_start.unwrap();
    let base = || PlannerParams::univ1_defaults().with_start(start);
    let runs = 5;

    println!("Univ-1 DS-CT, {} runs per cell (gold = 10)\n", runs);

    println!("topic threshold ε:");
    for eps in [0.0025, 0.01, 0.02] {
        let mut p = base();
        p.epsilon = eps;
        let avg = avg_score(&instance, &p, runs);
        let min = avg_score(&instance, &p.clone().with_sim(SimAggregate::Minimum), runs);
        println!("  ε={eps:<7} avg-sim {avg:>5.2}   min-sim {min:>5.2}");
    }

    println!("reward weights (δ, β):");
    for (d, b) in [(0.4, 0.6), (0.5, 0.5), (0.6, 0.4)] {
        let p = base().with_delta_beta(d, b);
        println!(
            "  δ/β={d}/{b:<5} avg-sim {:>5.2}",
            avg_score(&instance, &p, runs)
        );
    }

    println!("episodes N:");
    for n in [100, 500, 1000] {
        let mut p = base();
        p.episodes = n;
        println!("  N={n:<6} avg-sim {:>5.2}", avg_score(&instance, &p, runs));
    }

    println!("\nThe full sweeps (Tables IX–XVI) run via:  rl-planner exp table9  …  exp table16");
}
