//! Bring your own catalog: build a planning instance from scratch with
//! `CatalogBuilder` and plan over it — the workflow a university or
//! travel platform adopting this library would follow.
//!
//! ```sh
//! cargo run --release --example custom_catalog
//! ```

use rl_planner::model::CatalogBuilder;
use rl_planner::prelude::*;

fn main() {
    // A small fictional "M.S. Robotics" program: 12 courses, 10 topics.
    let catalog = CatalogBuilder::new("custom/ms-robotics")
        .topics([
            "kinematics",
            "control",
            "perception",
            "planning",
            "learning",
            "hardware",
            "software",
            "mathematics",
            "ethics",
            "simulation",
        ])
        .course(
            "ROB 500",
            "Foundations of Robotics",
            ItemKind::Primary,
            3.0,
            &["kinematics", "mathematics"],
        )
        .course(
            "ROB 510",
            "Robot Control Systems",
            ItemKind::Primary,
            3.0,
            &["control", "mathematics"],
        )
        .course(
            "ROB 520",
            "Motion Planning",
            ItemKind::Primary,
            3.0,
            &["planning", "software"],
        )
        .course(
            "ROB 530",
            "Robot Perception",
            ItemKind::Primary,
            3.0,
            &["perception", "learning"],
        )
        .course(
            "ROB 601",
            "Learning for Robotics",
            ItemKind::Secondary,
            3.0,
            &["learning", "simulation"],
        )
        .course(
            "ROB 602",
            "Embedded Robot Software",
            ItemKind::Secondary,
            3.0,
            &["software", "hardware"],
        )
        .course(
            "ROB 603",
            "Mechatronics",
            ItemKind::Secondary,
            3.0,
            &["hardware", "kinematics"],
        )
        .course(
            "ROB 604",
            "Human-Robot Interaction",
            ItemKind::Secondary,
            3.0,
            &["ethics", "perception"],
        )
        .course(
            "ROB 605",
            "Simulation Environments",
            ItemKind::Secondary,
            3.0,
            &["simulation", "software"],
        )
        .course(
            "ROB 606",
            "Optimal Control",
            ItemKind::Secondary,
            3.0,
            &["control", "mathematics"],
        )
        .course(
            "ROB 607",
            "Field Robotics Project",
            ItemKind::Secondary,
            3.0,
            &["hardware", "planning"],
        )
        .course(
            "ROB 608",
            "Robot Ethics and Policy",
            ItemKind::Secondary,
            3.0,
            &["ethics"],
        )
        // Prerequisite structure: control before optimal control, the
        // foundations before the project, perception OR learning before HRI.
        .requires_all("ROB 606", &["ROB 510"])
        .requires_all("ROB 607", &["ROB 500"])
        .requires_any("ROB 604", &["ROB 530", "ROB 601"])
        .requires_all("ROB 520", &["ROB 500"])
        .build()
        .expect("catalog is well-formed");

    // Degree rules: 7 courses (21 credits), 3 core + 4 electives, with
    // prerequisites at least a 2-course "term" earlier.
    let hard = HardConstraints {
        credits: 21.0,
        n_primary: 3,
        n_secondary: 4,
        gap: 2,
    };
    let templates = TemplateSet::from_strs(&["PSPSPSS", "PPSSPSS", "PSPSSPS"]).unwrap();
    let ideal = catalog
        .vocabulary()
        .vector_of(&["control", "planning", "learning", "simulation"])
        .unwrap();
    let soft = SoftConstraints::new(ideal, templates, &hard).unwrap();
    let start = catalog.by_code("ROB 500").unwrap().id;
    let instance = PlanningInstance {
        catalog,
        hard,
        soft,
        trip: None,
        default_start: Some(start),
    };
    instance.validate().expect("instance is consistent");

    let mut params = PlannerParams::univ1_defaults().with_start(start);
    params.epsilon = 0.0; // the ideal vector is sparse: don't gate on it
    let (policy, _) = RlPlanner::learn(&instance, &params, 7);
    let plan = RlPlanner::recommend(&policy, &instance, &params, start);

    println!("M.S. Robotics plan:");
    for (i, &id) in plan.items().iter().enumerate() {
        let item = instance.catalog.item(id);
        println!(
            "  term {} | {:8} {:28} [{}]",
            i / 2 + 1,
            item.code,
            item.name,
            if item.is_primary() {
                "core"
            } else {
                "elective"
            }
        );
    }
    println!(
        "\nscore {:.2} / {}; violations: {}",
        score_plan(&instance, &plan),
        instance.horizon(),
        plan_violations(&instance, &plan).len()
    );
}
