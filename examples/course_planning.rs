//! Course planning end to end: compare RL-Planner against the paper's
//! baselines (EDA, OMEGA) and the expert gold standard on all four degree
//! programs, reproducing the Fig. 1(a) comparison at example scale.
//!
//! ```sh
//! cargo run --release --example course_planning
//! ```

use rl_planner::prelude::*;

fn avg<F: Fn(u64) -> f64>(runs: u64, f: F) -> f64 {
    (0..runs).map(f).sum::<f64>() / runs as f64
}

fn main() {
    use rl_planner::datagen::{self, defaults::*};
    let runs = 5;
    let datasets: Vec<(&str, PlanningInstance, PlannerParams)> = vec![
        (
            "Univ-1 DS-CT",
            datagen::univ1_ds_ct(UNIV1_SEED),
            PlannerParams::univ1_defaults(),
        ),
        (
            "Univ-1 Cybersecurity",
            datagen::univ1_cyber(UNIV1_SEED),
            PlannerParams::univ1_defaults(),
        ),
        (
            "Univ-1 CS",
            datagen::univ1_cs(UNIV1_SEED),
            PlannerParams::univ1_defaults(),
        ),
        (
            "Univ-2 DS",
            datagen::univ2_ds(UNIV2_SEED),
            PlannerParams::univ2_defaults(),
        ),
    ];
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>6}",
        "program", "RL-Planner", "EDA", "OMEGA", "Gold"
    );
    for (label, instance, base) in datasets {
        let start = instance.default_start.unwrap();
        let params = base.with_start(start);
        let rl = avg(runs, |seed| {
            let (policy, _) = RlPlanner::learn(&instance, &params, seed);
            score_plan(
                &instance,
                &RlPlanner::recommend(&policy, &instance, &params, start),
            )
        });
        let eda = avg(runs, |seed| {
            score_plan(&instance, &eda_plan(&instance, &params, start, seed))
        });
        let omega = score_plan(
            &instance,
            &omega_plan(
                &instance,
                &OmegaConfig::paper_adaptation(instance.horizon()),
                None,
            ),
        );
        let gold = score_plan(&instance, &gold_plan(&instance, Some(start)));
        println!("{label:<22} {rl:>10.2} {eda:>8.2} {omega:>8.2} {gold:>6.2}");
    }
    println!(
        "\nExpected shape (paper Fig. 1a): RL-Planner below gold but above EDA;\n\
         OMEGA near 0 because its sequences violate the hard constraints."
    );
}
