//! Policy persistence: train once, save the Q-table in the checksummed
//! `QPOL` binary format, reload it, and verify the reloaded policy
//! recommends the identical plan (interactive reuse without retraining).
//!
//! ```sh
//! cargo run --release --example policy_persistence
//! ```

use rl_planner::prelude::*;
use rl_planner::store;

fn main() {
    let instance = rl_planner::datagen::univ1_ds_ct(rl_planner::datagen::defaults::UNIV1_SEED);
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ1_defaults().with_start(start);

    let (policy, _) = RlPlanner::learn(&instance, &params, 9);
    let before = RlPlanner::recommend(&policy, &instance, &params, start);

    let path = std::env::temp_dir().join("rl-planner-example-policy.qpol");
    store::save_qtable(&path, &policy.q).expect("save policy");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "saved {}×{} Q-table to {} ({bytes} bytes, fnv-1a checksummed)",
        policy.q.n_states(),
        policy.q.n_actions(),
        path.display()
    );

    let reloaded = store::load_qtable(&path).expect("load policy");
    assert_eq!(reloaded, policy.q, "round-trip must be lossless");
    let after = RlPlanner::recommend_with_q(&reloaded, &instance, &params, start);
    assert_eq!(before, after, "reloaded policy must plan identically");
    println!("reloaded policy recommends the identical plan:");
    println!("  {}", after.render(&instance.catalog));
    std::fs::remove_file(&path).ok();
}
