//! Adaptive feedback (the paper's §VI future work): recommend a plan,
//! collect the student's reactions — a binary thumbs-down, a 5-star
//! rating, and a probability-distribution rating — and replan.
//!
//! ```sh
//! cargo run --release --example adaptive_feedback
//! ```

use rl_planner::core::{Feedback, FeedbackConfig, FeedbackLoop};
use rl_planner::prelude::*;

fn main() {
    let instance = rl_planner::datagen::univ1_ds_ct(rl_planner::datagen::defaults::UNIV1_SEED);
    let start = instance.default_start.unwrap();
    let params = PlannerParams::univ1_defaults().with_start(start);
    let (policy, _) = RlPlanner::learn(&instance, &params, 0);
    let plan = RlPlanner::recommend(&policy, &instance, &params, start);
    println!("initial plan:\n  {}\n", plan.render(&instance.catalog));

    let mut lp = FeedbackLoop::new(policy, instance.catalog.len(), FeedbackConfig::default());

    // The student reacts to three recommended electives.
    let electives: Vec<_> = plan
        .items()
        .iter()
        .copied()
        .filter(|&id| !instance.catalog.item(id).is_primary())
        .collect();
    let (hated, meh, loved) = (electives[0], electives[1], electives[2]);
    println!(
        "feedback: 👎 {}   ★★☆☆☆ {}   p(5)=0.9 {}",
        instance.catalog.item(hated).code,
        instance.catalog.item(meh).code,
        instance.catalog.item(loved).code
    );
    lp.observe(hated, &Feedback::Binary(false));
    lp.observe(meh, &Feedback::Rating(2));
    lp.observe(loved, &Feedback::Distribution([0.0, 0.0, 0.05, 0.05, 0.9]));

    println!(
        "utilities: {} → {:+.2}, {} → {:+.2}, {} → {:+.2}; banned: {:?}",
        instance.catalog.item(hated).code,
        lp.utility_of(hated),
        instance.catalog.item(meh).code,
        lp.utility_of(meh),
        instance.catalog.item(loved).code,
        lp.utility_of(loved),
        lp.banned()
            .iter()
            .map(|&id| instance.catalog.item(id).code.as_str())
            .collect::<Vec<_>>()
    );

    let replanned = lp.replan(&instance, &params, start);
    println!("\nreplanned:\n  {}", replanned.render(&instance.catalog));
    assert!(!replanned.contains(hated), "banned elective must be gone");
    println!(
        "\nscore {} (violations: {}); the disliked course is gone, the loved \
         one keeps winning its ties.",
        score_plan(&instance, &replanned),
        plan_violations(&instance, &replanned).len()
    );
}
