//! Trip planning end to end: plan a 6-hour Paris day under the distance
//! threshold and the no-consecutive-theme gap, then tighten the budgets
//! and watch the itinerary adapt (the Table VIII scenario).
//!
//! ```sh
//! cargo run --release --example trip_planning
//! ```

use rl_planner::prelude::*;

fn describe(instance: &PlanningInstance, plan: &Plan) {
    let mut hours = 0.0;
    for (i, &id) in plan.items().iter().enumerate() {
        let item = instance.catalog.item(id);
        let attrs = item.poi.expect("POI items carry attrs");
        hours += item.credits;
        let themes: Vec<&str> = item
            .topics
            .iter_topics()
            .map(|t| instance.catalog.vocabulary().name(t))
            .collect();
        println!(
            "  {}. {:35} {:.1}h  pop {:.1}  [{}]",
            i + 1,
            item.name,
            item.credits,
            attrs.popularity,
            themes.join(", ")
        );
    }
    println!(
        "  total {hours:.1}h of {:.1}h budget; score {:.2}; violations: {}",
        instance.hard.credits,
        score_plan(instance, plan),
        plan_violations(instance, plan).len()
    );
}

fn main() {
    let dataset = rl_planner::datagen::paris(rl_planner::datagen::defaults::PARIS_SEED);
    let base = dataset.instance;
    let start = base.default_start.unwrap();

    for (t, d) in [(6.0, 5.0), (8.0, 5.0), (5.0, 3.0)] {
        let mut instance = base.clone();
        instance.hard.credits = t;
        if let Some(trip) = &mut instance.trip {
            trip.max_distance_km = Some(d);
        }
        let params = PlannerParams::trip_defaults().with_start(start);
        let (policy, _) = RlPlanner::learn(&instance, &params, 1);
        let plan = RlPlanner::recommend(&policy, &instance, &params, start);
        println!("\nParis itinerary with t ≤ {t}h, d ≤ {d} km:");
        describe(&instance, &plan);
    }
    println!(
        "\nAntecedent rule at work: a restaurant (e.g. Le Cinq) can only be\n\
         recommended after a museum or gallery, per §II-B2 of the paper."
    );
}
