//! Transfer learning (the §IV-D case studies): learn on M.S. CS and plan
//! for M.S. DS-CT through the shared-course mapping; learn on NYC and
//! plan Paris through the theme-space mapping.
//!
//! ```sh
//! cargo run --release --example transfer_learning
//! ```

use rl_planner::core::{course_mapping_by_code, poi_mapping_by_theme, transfer_policy};
use rl_planner::prelude::*;

fn main() {
    use rl_planner::datagen::{self, defaults::*};

    // --- Courses: M.S. CS → M.S. DS-CT.
    let cs = datagen::univ1_cs(UNIV1_SEED);
    let ds = datagen::univ1_ds_ct(UNIV1_SEED);
    let src_params = PlannerParams::univ1_defaults().with_start(cs.default_start.unwrap());
    let (policy, _) = RlPlanner::learn(&cs, &src_params, 3);

    let mapping = course_mapping_by_code(&ds.catalog, &cs.catalog);
    println!(
        "course mapping: {:.0}% of DS-CT courses are shared with M.S. CS",
        100.0 * mapping.coverage()
    );
    let q = transfer_policy(&policy.q, &mapping);
    let start = ds.default_start.unwrap();
    let tgt_params = PlannerParams::univ1_defaults().with_start(start);
    let plan = RlPlanner::recommend_with_q(&q, &ds, &tgt_params, start);
    println!("transferred DS-CT plan:\n  {}", plan.render(&ds.catalog));
    println!(
        "score {:.2}; violations {}\n",
        score_plan(&ds, &plan),
        plan_violations(&ds, &plan).len()
    );

    // --- Trips: NYC → Paris (disjoint POIs, different theme vocabularies).
    let nyc = datagen::nyc(NYC_SEED).instance;
    let paris = datagen::paris(PARIS_SEED).instance;
    let src_params = PlannerParams::trip_defaults().with_start(nyc.default_start.unwrap());
    let (policy, _) = RlPlanner::learn(&nyc, &src_params, 3);
    let mapping = poi_mapping_by_theme(&paris.catalog, &nyc.catalog);
    println!(
        "trip mapping: {:.0}% of Paris POIs found a theme-profile match in NYC",
        100.0 * mapping.coverage()
    );
    let q = transfer_policy(&policy.q, &mapping);
    let start = paris.default_start.unwrap();
    let tgt_params = PlannerParams::trip_defaults().with_start(start);
    let plan = RlPlanner::recommend_with_q(&q, &paris, &tgt_params, start);
    let names: Vec<&str> = plan
        .items()
        .iter()
        .map(|&id| paris.catalog.item(id).code.as_str())
        .collect();
    println!("transferred Paris itinerary: {names:?}");
    println!("score {:.2}", score_plan(&paris, &plan));
}
