//! Beyond-paper extension experiments:
//!
//! * **ablations** — the design-choice ablations DESIGN.md §5 calls out,
//!   measured as *quality* (scores) on the DS-CT dataset rather than
//!   runtime (the Criterion benches measure runtime);
//! * **size-scaling** — learning/recommendation wall-clock as the item
//!   universe grows (the paper's Fig. 2 varies only the episode count;
//!   the Q-table is `|I|²`, so `|I|` is the other axis that matters);
//! * **feedback** — the §VI future-work loop: recommend, inject
//!   negative feedback on a recommended elective, replan, and show the
//!   plan adapts while staying valid.

use crate::datasets::{course_instance, CourseDataset};
use crate::report::{fmt_score, NamedTable, Report};
use crate::runner;
use std::time::Instant;
use tpp_core::{
    score_plan, Feedback, FeedbackConfig, FeedbackLoop, PlannerParams, RlPlanner, SimAggregate,
};
use tpp_datagen::{synthetic_course_instance, SyntheticConfig};
use tpp_rl::Schedule;

/// Quality ablations on Univ-1 DS-CT (10-run averages).
pub fn run_ablations() -> Report {
    let inst = course_instance(CourseDataset::DsCt);
    let base = runner::pinned(&PlannerParams::univ1_defaults(), inst);
    let mut report = Report::new(
        "ablations",
        "Design-choice ablations on Univ-1 DS-CT (extension)",
    );
    let variants: Vec<(&str, PlannerParams)> = vec![
        ("default (SARSA(λ=0.9), AvgSim, decaying ε)", base.clone()),
        ("one-step SARSA (λ = 0)", {
            let mut p = base.clone();
            p.lambda = 0.0;
            p
        }),
        (
            "MinSim aggregation",
            base.clone().with_sim(SimAggregate::Minimum),
        ),
        ("no exploration (pure reward-greedy training)", {
            let mut p = base.clone();
            p.exploration = Schedule::Constant(0.0);
            p
        }),
        ("always-exploring (ε = 0.5 constant)", {
            let mut p = base.clone();
            p.exploration = Schedule::Constant(0.5);
            p
        }),
        ("coverage gate off (ε = 0)", {
            let mut p = base.clone();
            p.epsilon = 0.0;
            p
        }),
        ("flat type weights (w = 0.5/0.5)", {
            let mut p = base.clone();
            p.weights = tpp_core::TypeWeights::PrimarySecondary { w1: 0.5, w2: 0.5 };
            p
        }),
    ];
    let rows = variants
        .into_iter()
        .map(|(label, params)| {
            vec![
                label.to_owned(),
                fmt_score(runner::rl_avg_score(inst, &params)),
            ]
        })
        .collect();
    report.push_table(NamedTable::new(
        "average score over 10 runs (gold = 10)",
        ["variant", "score"].map(String::from).to_vec(),
        rows,
    ));
    report.push_note(
        "Expected: traces and a decaying exploration schedule help the trap \
         instances; flat type weights collapse the core/elective signal \
         (Theorem 1 Case II); the coverage gate costs little here because \
         the spread topics keep it satisfiable.",
    );
    report
}

/// Learning/recommendation time vs catalog size (extension to Fig. 2).
pub fn run_size_scaling() -> Report {
    let mut report = Report::new(
        "size-scaling",
        "Scalability in |I|: wall-clock vs catalog size (extension)",
    );
    let mut rows = Vec::new();
    for n in [25usize, 50, 100, 200, 400] {
        let inst = synthetic_course_instance(&SyntheticConfig::sized(n), 42);
        let mut params = PlannerParams::univ1_defaults();
        params.episodes = 200;
        let params = runner::pinned(&params, &inst);
        let start = runner::start_of(&inst);
        let t0 = Instant::now();
        let (policy, _) = RlPlanner::learn(&inst, &params, 0);
        let learn_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let plan = RlPlanner::recommend(&policy, &inst, &params, start);
        let rec_ms = t1.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            n.to_string(),
            format!("{learn_ms:.1}"),
            format!("{rec_ms:.3}"),
            fmt_score(score_plan(&inst, &plan)),
        ]);
    }
    report.push_table(NamedTable::new(
        "N = 200 episodes, synthetic course instances",
        ["|I|", "learn (ms)", "recommend (ms)", "score"]
            .map(String::from)
            .to_vec(),
        rows,
    ));
    report.push_note(
        "Learning cost per episode is O(H · |I|) reward evaluations, so the \
         learn column grows roughly linearly in |I| at fixed N; the Q-table \
         itself is |I|² but only touched along trajectories.",
    );
    report
}

/// Learning-curve experiment: moving-average episode return over
/// training, showing SARSA(λ) convergence on DS-CT and NYC.
pub fn run_convergence() -> Report {
    let mut report = Report::new(
        "convergence",
        "Learning curves: moving-average episode return vs episode (extension)",
    );
    let specs: [(&str, &tpp_model::PlanningInstance, PlannerParams); 2] = [
        (
            "Univ-1 DS-CT",
            course_instance(CourseDataset::DsCt),
            PlannerParams::univ1_defaults(),
        ),
        (
            "NYC",
            &crate::datasets::trip_dataset(crate::datasets::TripCity::Nyc).instance,
            PlannerParams::trip_defaults(),
        ),
    ];
    for (label, inst, base) in specs {
        let params = runner::pinned(&base, inst);
        let (_, stats) = RlPlanner::learn(inst, &params, 0);
        let ma = stats.moving_average(50);
        let checkpoints = [0usize, 49, 99, 199, 299, 399, 499];
        let rows = checkpoints
            .iter()
            .filter(|&&e| e < ma.len())
            .map(|&e| vec![format!("{}", e + 1), format!("{:.3}", ma[e])])
            .collect();
        report.push_table(NamedTable::new(
            format!("{label} — 50-episode moving average return"),
            ["episode", "avg return"].map(String::from).to_vec(),
            rows,
        ));
        let s = stats.summary();
        report.push_table(NamedTable::new(
            format!("{label} — return distribution"),
            ["episodes", "mean", "p50", "p95", "min", "max"]
                .map(String::from)
                .to_vec(),
            vec![vec![
                s.episodes.to_string(),
                format!("{:.3}", s.mean),
                format!("{:.3}", s.p50),
                format!("{:.3}", s.p95),
                format!("{:.3}", s.min),
                format!("{:.3}", s.max),
            ]],
        ));
    }
    report.push_note(
        "Returns climb as exploration decays and the Q-table locks onto a          template; the curve flattening is the convergence the paper          attributes to on-policy SARSA.",
    );
    report
}

/// The §VI feedback loop in action.
pub fn run_feedback() -> Report {
    let inst = course_instance(CourseDataset::DsCt);
    let params = runner::pinned(&PlannerParams::univ1_defaults(), inst);
    let start = runner::start_of(inst);
    let (policy, _) = RlPlanner::learn(inst, &params, 0);
    let before = RlPlanner::recommend(&policy, inst, &params, start);

    let mut lp = FeedbackLoop::new(policy, inst.catalog.len(), FeedbackConfig::default());
    // The student dislikes the first recommended elective…
    let disliked = before
        .items()
        .iter()
        .copied()
        .find(|&id| !inst.catalog.item(id).is_primary())
        .expect("plan has electives");
    lp.observe(disliked, &Feedback::Binary(false));
    // …and loves another one.
    let liked = before
        .items()
        .iter()
        .copied()
        .filter(|&id| !inst.catalog.item(id).is_primary() && id != disliked)
        .nth(1)
        .expect("plan has several electives");
    lp.observe(liked, &Feedback::Rating(5));
    let after = lp.replan(inst, &params, start);

    let mut report = Report::new("feedback", "Feedback-adaptive replanning (§VI extension)");
    report.push_table(NamedTable::new(
        "before vs after one round of feedback",
        ["plan", "sequence", "score"].map(String::from).to_vec(),
        vec![
            vec![
                "initial".into(),
                before.render(&inst.catalog),
                fmt_score(score_plan(inst, &before)),
            ],
            vec![
                format!(
                    "after (disliked {}, liked {})",
                    inst.catalog.item(disliked).code,
                    inst.catalog.item(liked).code
                ),
                after.render(&inst.catalog),
                fmt_score(score_plan(inst, &after)),
            ],
        ],
    ));
    report.push_note(format!(
        "The disliked elective {} is excluded from the replanned sequence; \
         the loop shifts Q mass toward {} so it survives future ties.",
        inst.catalog.item(disliked).code,
        inst.catalog.item(liked).code
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_returns_improve() {
        let report = run_convergence();
        for table in &report.tables {
            let first: f64 = table.rows.first().unwrap()[1].parse().unwrap();
            let last: f64 = table.rows.last().unwrap()[1].parse().unwrap();
            assert!(
                last >= first,
                "{}: late return {last} < early {first}",
                table.name
            );
        }
    }

    #[test]
    fn size_scaling_learning_grows_with_catalog() {
        let report = run_size_scaling();
        let rows = &report.tables[0].rows;
        let first: f64 = rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(
            last > first,
            "learning at |I|=400 ({last} ms) should cost more than at 25 ({first} ms)"
        );
    }

    #[test]
    fn feedback_report_excludes_disliked_item() {
        let report = run_feedback();
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), 2);
        // Extract the disliked code from the label and check it is gone
        // from the "after" sequence.
        let label = &rows[1][0];
        let disliked = label
            .split("disliked ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .unwrap()
            .trim();
        assert!(
            !rows[1][1].contains(disliked),
            "disliked {disliked} still present: {}",
            rows[1][1]
        );
        let score: f64 = rows[1][2].parse().unwrap();
        assert!(score > 0.0, "replanned sequence should stay valid");
    }

    #[test]
    fn ablation_default_beats_flat_weights() {
        let report = run_ablations();
        let rows = &report.tables[0].rows;
        let get = |needle: &str| -> f64 {
            rows.iter()
                .find(|r| r[0].contains(needle))
                .unwrap_or_else(|| panic!("row {needle}"))[1]
                .parse()
                .unwrap()
        };
        let default = get("default");
        let flat = get("flat type weights");
        assert!(
            default > flat,
            "default {default} should beat flat weights {flat} (Theorem 1 Case II)"
        );
    }
}
