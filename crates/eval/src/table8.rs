//! Table VIII: sample itineraries with the (t, d) thresholds they meet
//! and the POI types they visit.
//!
//! The paper lists RL-Planner itineraries for NYC and Paris under
//! combinations like (t ≤ 6, d ≤ 4) and (t ≤ 8, d ≤ 5), annotated with
//! each POI's leading theme.

use crate::datasets::{trip_dataset, TripCity};
use crate::report::{NamedTable, Report};
use crate::runner;
use tpp_core::{plan_violations, PlannerParams, RlPlanner};

/// Runs the Table VIII itinerary listing.
pub fn run() -> Report {
    let mut report = Report::new(
        "table8",
        "Sample RL-Planner itineraries with thresholds met (Table VIII)",
    );
    let combos = [(6.0, 4.0), (8.0, 5.0), (6.0, 5.0), (5.0, 5.0)];
    let mut rows = Vec::new();
    for city in TripCity::ALL {
        let base = &trip_dataset(city).instance;
        for &(t, d) in &combos {
            let mut instance = base.clone();
            instance.hard.credits = t;
            if let Some(trip) = &mut instance.trip {
                trip.max_distance_km = Some(d);
            }
            let params = runner::pinned(&PlannerParams::trip_defaults(), &instance);
            let (policy, _) = RlPlanner::learn(&instance, &params, 0);
            let plan =
                RlPlanner::recommend(&policy, &instance, &params, runner::start_of(&instance));
            let ok = plan_violations(&instance, &plan).is_empty();
            let names = plan
                .items()
                .iter()
                .map(|&id| format!("'{}'", instance.catalog.item(id).code))
                .collect::<Vec<_>>()
                .join(", ");
            let types = plan
                .items()
                .iter()
                .map(|&id| {
                    let item = instance.catalog.item(id);
                    item.topics
                        .iter_topics()
                        .next()
                        .map(|topic| instance.catalog.vocabulary().name(topic).to_owned())
                        .unwrap_or_else(|| "?".to_owned())
                })
                .map(|t| format!("'{t}'"))
                .collect::<Vec<_>>()
                .join(", ");
            rows.push(vec![
                city.label().to_owned(),
                format!("[{names}]"),
                format!("≤ {t}"),
                format!("≤ {d}"),
                format!("[{types}]"),
                if ok { "yes".into() } else { "no".into() },
            ]);
        }
    }
    report.push_table(NamedTable::new(
        "itinerary descriptions",
        [
            "city",
            "itinerary",
            "time threshold (t)",
            "distance threshold (d)",
            "POIs' type",
            "constraints met",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    ));
    report.push_note(
        "Paper shape: itineraries of 3–5 POIs meeting the stated thresholds, \
         with varied POI types (the no-consecutive-theme gap at work).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itineraries_meet_their_thresholds() {
        let report = run();
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), 8);
        let met = rows.iter().filter(|r| r[5] == "yes").count();
        assert!(
            met >= 6,
            "most itineraries should meet their thresholds, got {met}/8"
        );
        // Every itinerary has at least 2 stops.
        for r in rows {
            let stops = r[1].matches('\'').count() / 2;
            assert!(stops >= 2, "{}: only {stops} stops", r[0]);
        }
    }
}
