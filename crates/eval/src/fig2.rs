//! Figure 2: scalability — policy-learning time vs N (panels a, c) and
//! recommendation time vs N (panels b, d).
//!
//! The paper's claims are shape claims: learning time grows linearly
//! with the number of episodes, and applying a learned policy takes
//! seconds or less (interactive use). Both are re-measured here on the
//! DS-CT and NYC datasets.

use crate::datasets::{course_instance, trip_dataset, CourseDataset, TripCity};
use crate::report::{NamedTable, Report};
use crate::runner;
use std::time::Instant;
use tpp_core::{PlannerParams, RlPlanner};

/// Episode counts measured, as in Fig. 2.
pub const EPISODES: [usize; 5] = [100, 200, 300, 500, 1000];

/// Wall-clock of one learn and one recommend at `episodes`, in
/// milliseconds, averaged over `reps` repetitions.
fn measure(
    instance: &tpp_model::PlanningInstance,
    base: &PlannerParams,
    episodes: usize,
    reps: u64,
) -> (f64, f64) {
    let mut params = runner::pinned(base, instance);
    params.episodes = episodes;
    let start = runner::start_of(instance);
    let mut learn_ms = 0.0;
    let mut rec_ms = 0.0;
    for seed in 0..reps {
        let t0 = Instant::now();
        let (policy, _) = RlPlanner::learn(instance, &params, seed);
        learn_ms += t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let _ = RlPlanner::recommend(&policy, instance, &params, start);
        rec_ms += t1.elapsed().as_secs_f64() * 1e3;
    }
    (learn_ms / reps as f64, rec_ms / reps as f64)
}

/// Runs Fig. 2 and returns the report. `reps` averages repeated timings
/// (3 by default from the registry).
pub fn run_with_reps(reps: u64) -> Report {
    let mut report = Report::new(
        "fig2",
        "Scalability: learning and recommendation time vs N (Fig. 2)",
    );
    let specs: [(&str, &tpp_model::PlanningInstance, PlannerParams); 2] = [
        (
            "courses (Univ-1 DS-CT)",
            course_instance(CourseDataset::DsCt),
            PlannerParams::univ1_defaults(),
        ),
        (
            "trips (NYC)",
            &trip_dataset(TripCity::Nyc).instance,
            PlannerParams::trip_defaults(),
        ),
    ];
    for (label, instance, base) in specs {
        let mut rows = Vec::new();
        for n in EPISODES {
            let (learn, rec) = measure(instance, &base, n, reps);
            rows.push(vec![
                n.to_string(),
                format!("{learn:.1}"),
                format!("{rec:.3}"),
            ]);
        }
        report.push_table(NamedTable::new(
            format!("{label} — wall-clock vs episodes"),
            ["N", "learn (ms)", "recommend (ms)"]
                .map(String::from)
                .to_vec(),
            rows,
        ));
    }
    report.push_note(
        "Paper shape: learning time linear in N; recommendation time flat and \
         far below a second, enabling interactive use.",
    );
    report
}

/// Runs with the default repetition count.
pub fn run() -> Report {
    run_with_reps(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learning_time_grows_roughly_linearly() {
        // Compare N=100 vs N=1000 on the course dataset with 1 rep: the
        // ratio should be clearly super-constant (≥ 3x) and not wildly
        // super-linear (≤ 40x) — generous bounds, this is a timing test.
        let instance = course_instance(CourseDataset::DsCt);
        let base = PlannerParams::univ1_defaults();
        let (t100, _) = measure(instance, &base, 100, 1);
        let (t1000, r1000) = measure(instance, &base, 1000, 1);
        let ratio = t1000 / t100.max(1e-6);
        assert!(
            (3.0..60.0).contains(&ratio),
            "t(1000)/t(100) = {ratio} (t100={t100}ms t1000={t1000}ms)"
        );
        // Recommendation is interactive-fast.
        assert!(r1000 < 1000.0, "recommend took {r1000} ms");
    }
}
