//! Tables IX–XVI: parameter robustness sweeps.
//!
//! One parameter varies at a time from the Table III defaults; every cell
//! is the 10-run average score. RL-Planner is evaluated with both the
//! AvgSim and MinSim reward variants (the paper reports both throughout);
//! EDA appears on the rows the paper gives it (it has no N/α/γ/start to
//! tune).

use crate::datasets::{course_instance, trip_dataset, CourseDataset, TripCity};
use crate::report::{fmt_score, NamedTable, Report};
use crate::runner;
use tpp_core::{PlannerParams, SimAggregate, TypeWeights};
use tpp_model::PlanningInstance;

/// One sweep cell: a label plus the configuration it evaluates.
struct Cell {
    label: String,
    params: PlannerParams,
    /// Instance override (trip t/d sweeps mutate the instance, not the
    /// planner).
    instance: Option<PlanningInstance>,
}

/// Builds one sweep block table: columns are the parameter values, rows
/// are methods.
fn sweep_table(
    name: &str,
    base_instance: &PlanningInstance,
    cells: Vec<Cell>,
    with_eda: bool,
) -> NamedTable {
    let mut headers = vec!["method".to_owned()];
    headers.extend(cells.iter().map(|c| c.label.clone()));

    let score_row = |label: &str,
                     f: &dyn Fn(&PlanningInstance, &PlannerParams) -> f64,
                     sim: Option<SimAggregate>| {
        let mut row = vec![label.to_owned()];
        for cell in &cells {
            let instance = cell.instance.as_ref().unwrap_or(base_instance);
            let mut params = runner::pinned(&cell.params, instance);
            if let Some(sim) = sim {
                params.sim = sim;
            }
            row.push(fmt_score(f(instance, &params)));
        }
        row
    };

    let mut rows = vec![
        score_row(
            "RL-Planner (AvgSim)",
            &runner::rl_avg_score,
            Some(SimAggregate::Average),
        ),
        score_row(
            "RL-Planner (MinSim)",
            &runner::rl_avg_score,
            Some(SimAggregate::Minimum),
        ),
    ];
    if with_eda {
        rows.push(score_row("EDA", &runner::eda_avg_score, None));
    }
    NamedTable::new(name, headers, rows)
}

fn cells_from<F>(values: &[f64], fmt: &dyn Fn(f64) -> String, make: F) -> Vec<Cell>
where
    F: Fn(f64) -> (PlannerParams, Option<PlanningInstance>),
{
    values
        .iter()
        .map(|&v| {
            let (params, instance) = make(v);
            Cell {
                label: fmt(v),
                params,
                instance,
            }
        })
        .collect()
}

fn univ1_base() -> PlannerParams {
    PlannerParams::univ1_defaults()
}

fn univ2_base() -> PlannerParams {
    PlannerParams::univ2_defaults()
}

/// Table IX: Univ-1 DS-CT — topic threshold ε and (w1, w2).
pub fn run_table9() -> Report {
    let inst = course_instance(CourseDataset::DsCt);
    let mut report = Report::new(
        "table9",
        "Univ-1 DS-CT sweep: topic threshold ε and type weights (Table IX)",
    );
    report.push_table(sweep_table(
        "topic coverage threshold ε",
        inst,
        cells_from(
            &[0.0025, 0.005, 0.01, 0.0175, 0.02],
            &|v| format!("{v}"),
            |v| {
                let mut p = univ1_base();
                p.epsilon = v;
                (p, None)
            },
        ),
        true,
    ));
    let weight_pairs = [(0.4, 0.6), (0.8, 0.2), (0.5, 0.5), (0.6, 0.4), (0.65, 0.35)];
    let cells = weight_pairs
        .iter()
        .map(|&(w1, w2)| {
            let mut p = univ1_base();
            p.weights = TypeWeights::PrimarySecondary { w1, w2 };
            Cell {
                label: format!("w=({w1},{w2})"),
                params: p,
                instance: None,
            }
        })
        .collect();
    report.push_table(sweep_table("type weights (w1, w2)", inst, cells, false));
    report.push_note(
        "Paper shape: lower ε helps (7.9 at 0.0025, dropping as ε grows); \
         best weights at w1=0.6/w2=0.4.",
    );
    report
}

/// Table X: Univ-1 DS-CT — N, α, γ.
pub fn run_table10() -> Report {
    let inst = course_instance(CourseDataset::DsCt);
    let mut report = Report::new("table10", "Univ-1 DS-CT sweep: N, α, γ (Table X)");
    report.push_table(sweep_table(
        "number of episodes N",
        inst,
        cells_from(
            &[100.0, 200.0, 300.0, 500.0, 1000.0],
            &|v| format!("{v}"),
            |v| {
                let mut p = univ1_base();
                p.episodes = v as usize;
                (p, None)
            },
        ),
        false,
    ));
    report.push_table(sweep_table(
        "learning rate α",
        inst,
        cells_from(&[0.5, 0.6, 0.75, 0.8, 0.95], &|v| format!("{v}"), |v| {
            let mut p = univ1_base();
            p.alpha = v;
            (p, None)
        }),
        false,
    ));
    report.push_table(sweep_table(
        "discount factor γ",
        inst,
        cells_from(&[0.5, 0.6, 0.9, 0.95, 0.99], &|v| format!("{v}"), |v| {
            let mut p = univ1_base();
            p.gamma = v;
            (p, None)
        }),
        false,
    ));
    report.push_note("Paper shape: best around N=500, α=0.75, γ=0.95; no cliff anywhere.");
    report
}

/// Table XI: Univ-1 DS-CT — starting point and (δ, β).
pub fn run_table11() -> Report {
    let inst = course_instance(CourseDataset::DsCt);
    let mut report = Report::new(
        "table11",
        "Univ-1 DS-CT sweep: starting point and (δ, β) (Table XI)",
    );
    let starts = ["CS 644", "CS 636", "CS 675", "MATH 661"];
    let cells = starts
        .iter()
        .map(|code| {
            let id = inst
                .catalog
                .by_code(code)
                .unwrap_or_else(|| panic!("{code} in catalog"))
                .id;
            Cell {
                label: (*code).to_owned(),
                params: univ1_base().with_start(id),
                instance: None,
            }
        })
        .collect();
    report.push_table(sweep_table("starting point s1", inst, cells, false));
    let pairs = [
        (0.4, 0.6),
        (0.45, 0.55),
        (0.5, 0.5),
        (0.55, 0.45),
        (0.6, 0.4),
    ];
    let cells = pairs
        .iter()
        .map(|&(d, b)| Cell {
            label: format!("δ/β={d}/{b}"),
            params: univ1_base().with_delta_beta(d, b),
            instance: None,
        })
        .collect();
    report.push_table(sweep_table("reward weights (δ, β)", inst, cells, true));
    report.push_note(
        "Paper shape: start choice has minimal impact; δ=0.6/β=0.4 is best \
         (the interleaving term needs enough weight to commit to a template).",
    );
    report
}

/// Table XII: Univ-2 — N, α, γ, ε.
pub fn run_table12() -> Report {
    let inst = course_instance(CourseDataset::Univ2);
    let mut report = Report::new("table12", "Univ-2 DS sweep: N, α, γ, ε (Table XII)");
    report.push_table(sweep_table(
        "number of episodes N",
        inst,
        cells_from(
            &[100.0, 200.0, 300.0, 500.0, 1000.0],
            &|v| format!("{v}"),
            |v| {
                let mut p = univ2_base();
                p.episodes = v as usize;
                (p, None)
            },
        ),
        false,
    ));
    report.push_table(sweep_table(
        "learning rate α",
        inst,
        cells_from(&[0.5, 0.6, 0.75, 0.8, 0.9], &|v| format!("{v}"), |v| {
            let mut p = univ2_base();
            p.alpha = v;
            (p, None)
        }),
        false,
    ));
    report.push_table(sweep_table(
        "discount factor γ",
        inst,
        cells_from(&[0.7, 0.75, 0.8, 0.9, 0.95], &|v| format!("{v}"), |v| {
            let mut p = univ2_base();
            p.gamma = v;
            (p, None)
        }),
        false,
    ));
    report.push_table(sweep_table(
        "topic coverage threshold ε",
        inst,
        cells_from(
            &[0.0025, 0.005, 0.01, 0.015, 0.02],
            &|v| format!("{v}"),
            |v| {
                let mut p = univ2_base();
                p.epsilon = v;
                (p, None)
            },
        ),
        true,
    ));
    report
}

/// Table XIII: Univ-2 — six-way sub-discipline weights ω1..ω6.
pub fn run_table13() -> Report {
    let inst = course_instance(CourseDataset::Univ2);
    let mut report = Report::new(
        "table13",
        "Univ-2 DS sweep: sub-discipline weights ω1..ω6 (Table XIII)",
    );
    let vectors: [[f64; 6]; 4] = [
        [0.2, 0.01, 0.16, 0.4, 0.01, 0.22],
        [0.21, 0.01, 0.15, 0.41, 0.02, 0.2],
        [0.25, 0.01, 0.15, 0.4, 0.01, 0.18],
        [0.25, 0.01, 0.15, 0.42, 0.01, 0.16], // Table III default
    ];
    let cells = vectors
        .iter()
        .map(|w| Cell {
            label: format!("ω={w:?}"),
            params: {
                let mut p = univ2_base();
                p.weights = TypeWeights::Categories(w.to_vec());
                p
            },
            instance: None,
        })
        .collect();
    report.push_table(sweep_table("ω1..ω6", inst, cells, false));
    report
}

/// Table XIV: Univ-2 — starting point and (δ, β).
pub fn run_table14() -> Report {
    let inst = course_instance(CourseDataset::Univ2);
    let mut report = Report::new(
        "table14",
        "Univ-2 DS sweep: starting point and (δ, β) (Table XIV)",
    );
    let cells = ["STATS 263", "MS&E 237"]
        .iter()
        .map(|code| {
            let id = inst.catalog.by_code(code).expect("embedded start").id;
            Cell {
                label: (*code).to_owned(),
                params: univ2_base().with_start(id),
                instance: None,
            }
        })
        .collect();
    report.push_table(sweep_table("starting point s1", inst, cells, false));
    let pairs = [
        (0.2, 0.8),
        (0.3, 0.7),
        (0.4, 0.6),
        (0.6, 0.4),
        (0.7, 0.3),
        (0.8, 0.2),
    ];
    let cells = pairs
        .iter()
        .map(|&(d, b)| Cell {
            label: format!("δ/β={d}/{b}"),
            params: univ2_base().with_delta_beta(d, b),
            instance: None,
        })
        .collect();
    report.push_table(sweep_table("reward weights (δ, β)", inst, cells, true));
    report
}

/// Tables XV: trips — N, α, γ, distance threshold d, per city.
pub fn run_table15() -> Report {
    let mut report = Report::new(
        "table15",
        "Trip sweep: N, α, γ, distance threshold d (Table XV)",
    );
    for city in TripCity::ALL {
        let d = trip_dataset(city);
        let inst = &d.instance;
        let base = PlannerParams::trip_defaults;
        report.push_table(sweep_table(
            &format!("{} — number of episodes N", city.label()),
            inst,
            cells_from(
                &[100.0, 200.0, 300.0, 500.0, 1000.0],
                &|v| format!("{v}"),
                |v| {
                    let mut p = base();
                    p.episodes = v as usize;
                    (p, None)
                },
            ),
            false,
        ));
        report.push_table(sweep_table(
            &format!("{} — learning rate α", city.label()),
            inst,
            cells_from(&[0.5, 0.6, 0.75, 0.8, 0.95], &|v| format!("{v}"), |v| {
                let mut p = base();
                p.alpha = v;
                (p, None)
            }),
            false,
        ));
        report.push_table(sweep_table(
            &format!("{} — discount factor γ", city.label()),
            inst,
            cells_from(&[0.5, 0.6, 0.75, 0.8, 0.95], &|v| format!("{v}"), |v| {
                let mut p = base();
                p.gamma = v;
                (p, None)
            }),
            false,
        ));
        report.push_table(sweep_table(
            &format!("{} — distance threshold d (km)", city.label()),
            inst,
            cells_from(&[4.0, 5.0], &|v| format!("{v}"), |v| {
                let mut instance = inst.clone();
                if let Some(trip) = &mut instance.trip {
                    trip.max_distance_km = Some(v);
                }
                (base(), Some(instance))
            }),
            true,
        ));
    }
    report.push_note(
        "Paper shape: scores stable in N/α/γ (≈4.5–4.6); tightening d \
         squeezes EDA harder than RL-Planner.",
    );
    report
}

/// Table XVI: trips — time threshold t and (δ, β), per city.
pub fn run_table16() -> Report {
    let mut report = Report::new(
        "table16",
        "Trip sweep: time threshold t and (δ, β) (Table XVI)",
    );
    for city in TripCity::ALL {
        let d = trip_dataset(city);
        let inst = &d.instance;
        report.push_table(sweep_table(
            &format!("{} — time threshold t (hours)", city.label()),
            inst,
            cells_from(&[5.0, 6.0, 8.0], &|v| format!("{v}"), |v| {
                let mut instance = inst.clone();
                instance.hard.credits = v;
                (PlannerParams::trip_defaults(), Some(instance))
            }),
            true,
        ));
        let pairs = [
            (0.4, 0.6),
            (0.45, 0.55),
            (0.5, 0.5),
            (0.55, 0.45),
            (0.6, 0.4),
        ];
        let cells = pairs
            .iter()
            .map(|&(dl, b)| Cell {
                label: format!("δ/β={dl}/{b}"),
                params: PlannerParams::trip_defaults().with_delta_beta(dl, b),
                instance: None,
            })
            .collect();
        report.push_table(sweep_table(
            &format!("{} — reward weights (δ, β)", city.label()),
            inst,
            cells,
            true,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-level checks live here; the full sweeps run from the CLI and
    /// benches (they are minutes-scale). These tests run one cell each.
    #[test]
    fn sweep_table_shapes() {
        let inst = course_instance(CourseDataset::DsCt);
        let mut p = univ1_base();
        p.episodes = 20; // tiny smoke config
        let cells = vec![Cell {
            label: "x".into(),
            params: p,
            instance: None,
        }];
        let t = sweep_table("smoke", inst, cells, true);
        assert_eq!(t.headers, vec!["method", "x"]);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[2][0], "EDA");
    }

    #[test]
    fn trip_instance_override_applies() {
        let d = trip_dataset(TripCity::Nyc);
        let mut instance = d.instance.clone();
        instance.hard.credits = 5.0;
        assert_eq!(instance.hard.credits, 5.0);
        assert_eq!(d.instance.hard.credits, 6.0);
    }
}
