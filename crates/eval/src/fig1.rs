//! Figure 1: RL-Planner vs OMEGA vs EDA vs gold standard.
//!
//! (a) average plan score on the four course programs; (b) on the two
//! cities. Scores average 10 runs; OMEGA and gold are deterministic.
//! Expected shape (§IV-B): RL-Planner above both automated baselines and
//! close to gold; OMEGA mostly 0 (hard-constraint failures).

use crate::datasets::{course_instance, trip_dataset, CourseDataset, TripCity};
use crate::report::{fmt_score, NamedTable, Report};
use crate::runner;
use tpp_core::{PlannerParams, SimAggregate};

/// Runs Fig. 1 and returns the report.
pub fn run() -> Report {
    let mut report = Report::new("fig1", "RL-Planner, OMEGA, EDA, and Gold Standard (Fig. 1)");

    // (a) Course planning.
    let mut rows = Vec::new();
    for ds in CourseDataset::ALL {
        let instance = course_instance(ds);
        let base = if ds == CourseDataset::Univ2 {
            PlannerParams::univ2_defaults()
        } else {
            PlannerParams::univ1_defaults()
        };
        let params = runner::pinned(&base, instance);
        let min_params = params.clone().with_sim(SimAggregate::Minimum);
        rows.push(vec![
            ds.label().to_owned(),
            fmt_score(runner::rl_avg_score(instance, &params)),
            fmt_score(runner::rl_avg_score(instance, &min_params)),
            fmt_score(runner::eda_avg_score(instance, &params)),
            fmt_score(runner::omega_score_course(ds)),
            fmt_score(runner::gold_score(instance)),
        ]);
    }
    report.push_table(NamedTable::new(
        "(a) course planning — average score over 10 runs",
        [
            "dataset",
            "RL-Planner (AvgSim)",
            "RL-Planner (MinSim)",
            "EDA",
            "OMEGA",
            "Gold",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    ));

    // (b) Trip planning.
    let mut rows = Vec::new();
    for city in TripCity::ALL {
        let d = trip_dataset(city);
        let params = runner::pinned(&PlannerParams::trip_defaults(), &d.instance);
        let min_params = params.clone().with_sim(SimAggregate::Minimum);
        rows.push(vec![
            city.label().to_owned(),
            fmt_score(runner::rl_avg_score(&d.instance, &params)),
            fmt_score(runner::rl_avg_score(&d.instance, &min_params)),
            fmt_score(runner::eda_avg_score(&d.instance, &params)),
            fmt_score(runner::omega_score_trip(city)),
            fmt_score(runner::gold_score(&d.instance)),
        ]);
    }
    report.push_table(NamedTable::new(
        "(b) trip planning — average score over 10 runs",
        [
            "city",
            "RL-Planner (AvgSim)",
            "RL-Planner (MinSim)",
            "EDA",
            "OMEGA",
            "Gold",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    ));

    report.push_note(
        "Paper shape: RL-Planner close to gold (7.9/10 on DS-CT, ~4.6/5 on trips), \
         EDA lower, OMEGA mostly 0 because its recommendations violate hard constraints.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_ordering() {
        let report = run();
        assert_eq!(report.tables.len(), 2);
        for table in &report.tables {
            for row in &table.rows {
                let rl: f64 = row[1].parse().unwrap();
                let eda: f64 = row[3].parse().unwrap();
                let omega: f64 = row[4].parse().unwrap();
                let gold: f64 = row[5].parse().unwrap();
                // RL must match or beat EDA up to 10-run sampling noise
                // (Univ-2's N = 100 default leaves the two within a few
                // tenths of each other on some seed draws).
                assert!(rl >= eda - 0.5, "{}: RL {rl} < EDA {eda}", row[0]);
                assert!(gold >= rl - 1e-9, "{}: gold {gold} < RL {rl}", row[0]);
                assert!(omega <= 1e-9, "{}: OMEGA {omega} should be ~0", row[0]);
                assert!(rl > 0.0, "{}: RL should produce valid plans", row[0]);
            }
        }
    }
}
