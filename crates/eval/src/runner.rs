//! Shared measurement helpers: averaged scores over 10 runs, in
//! parallel.
//!
//! The paper "present\[s\] average scores over 10 runs" (§IV-A); every
//! score-producing helper here follows that protocol with seeds `0..10`.

use crate::datasets::{course_instance, trip_dataset, CourseDataset, TripCity};
use tpp_baselines::{eda_plan, gold_plan, omega_plan, OmegaConfig};
use tpp_core::{score_plan, PlannerParams, RlPlanner};
use tpp_datagen::itineraries::co_consumption_matrix;
use tpp_model::{ItemId, PlanningInstance};
use tpp_obs::Level;

/// Number of runs averaged, per the paper's protocol.
pub const RUNS: u64 = 10;

/// A worker panic captured by [`parallel_try_map`], tagged with the seed
/// whose run raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedPanic {
    /// The seed whose closure panicked.
    pub seed: u64,
    /// The panic payload, stringified (`&str` / `String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for SeedPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker for seed {} panicked: {}",
            self.seed, self.message
        )
    }
}

impl std::error::Error for SeedPanic {}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Maps `seeds` through `f` on a bounded pool of scoped worker threads
/// and returns per-seed results in seed order. A panic in one seed's
/// closure is caught and reported as that seed's `Err(SeedPanic)`; the
/// remaining seeds still run to completion.
///
/// The pool is capped at `available_parallelism` (experiments sweep far
/// more seeds than there are cores; one thread per seed oversubscribes
/// and, under the old spawn-per-seed scheme, a single panic aborted the
/// whole process via the scope's implicit join).
pub fn parallel_try_map<T, F>(seeds: std::ops::Range<u64>, f: F) -> Vec<Result<T, SeedPanic>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let seeds: Vec<u64> = seeds.collect();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(seeds.len().max(1));
    let next = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<Result<T, SeedPanic>>>> =
        (0..seeds.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (f, next, seeds, out) = (&f, &next, &seeds, &out);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(i) else { break };
                let result = catch_unwind(AssertUnwindSafe(|| f(seed))).map_err(|p| SeedPanic {
                    seed,
                    message: payload_message(p),
                });
                *out[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").expect("slot filled"))
        .collect()
}

/// Maps `seeds` through `f` on a bounded worker pool and returns the
/// results in seed order. If any seed's closure panicked, re-panics
/// with the seed attached — but only after every other seed has
/// finished, so one poisoned seed no longer tears down its siblings'
/// in-flight work. Callers that want to keep the surviving results use
/// [`parallel_try_map`].
pub fn parallel_map<T, F>(seeds: std::ops::Range<u64>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    parallel_try_map(seeds, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

/// The start item an experiment uses for an instance.
///
/// Falls back to `ItemId(0)` when the instance pins no
/// `default_start` — an arbitrary but deterministic choice, so the
/// substitution is surfaced as a `Warn` event instead of happening
/// silently.
pub fn start_of(instance: &PlanningInstance) -> ItemId {
    match instance.default_start {
        Some(id) => id,
        None => {
            tpp_obs::obs_event!(
                Level::Warn,
                "eval.start_fallback",
                catalog = instance.catalog.name(),
                fallback_item = 0usize,
            );
            ItemId(0)
        }
    }
}

/// Pins the training/recommendation start to the instance default
/// (Table III fixes `s_1` per dataset).
pub fn pinned(params: &PlannerParams, instance: &PlanningInstance) -> PlannerParams {
    params.clone().with_start(start_of(instance))
}

/// Mean RL-Planner score over [`RUNS`] learn+recommend runs.
pub fn rl_avg_score(instance: &PlanningInstance, params: &PlannerParams) -> f64 {
    let start = match params.start {
        tpp_core::StartPolicy::Fixed(id) => id,
        _ => start_of(instance),
    };
    let scores = parallel_map(0..RUNS, |seed| {
        let mut span = tpp_obs::span(Level::Debug, "eval.rl_run")
            .with("catalog", instance.catalog.name())
            .with("seed", seed);
        let (policy, _) = RlPlanner::learn(instance, params, seed);
        let score = score_plan(
            instance,
            &RlPlanner::recommend(&policy, instance, params, start),
        );
        span.record("score", score);
        score
    });
    mean(&scores)
}

/// Mean EDA score over [`RUNS`] runs (the seed drives tie-breaking).
pub fn eda_avg_score(instance: &PlanningInstance, params: &PlannerParams) -> f64 {
    let start = match params.start {
        tpp_core::StartPolicy::Fixed(id) => id,
        _ => start_of(instance),
    };
    let scores = parallel_map(0..RUNS, |seed| {
        score_plan(instance, &eda_plan(instance, params, start, seed))
    });
    mean(&scores)
}

/// OMEGA's (deterministic) score on a course dataset.
pub fn omega_score_course(ds: CourseDataset) -> f64 {
    let instance = course_instance(ds);
    let plan = omega_plan(
        instance,
        &OmegaConfig::paper_adaptation(instance.horizon()),
        None,
    );
    score_plan(instance, &plan)
}

/// OMEGA's score on a trip dataset (uses the itinerary-log
/// co-consumption matrix, as the original algorithm does).
pub fn omega_score_trip(city: TripCity) -> f64 {
    let d = trip_dataset(city);
    let m = co_consumption_matrix(&d.instance.catalog, &d.itineraries);
    let plan = omega_plan(
        &d.instance,
        &OmegaConfig {
            prefix_len: d.instance.horizon() / 2,
            use_logs: true,
        },
        Some(&m),
    );
    score_plan(&d.instance, &plan)
}

/// Gold-standard score (deterministic expert oracle), start pinned.
pub fn gold_score(instance: &PlanningInstance) -> f64 {
    score_plan(instance, &gold_plan(instance, Some(start_of(instance))))
}

/// Arithmetic mean (`0.0` for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (`0.0` for n < 2).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(0..8, |s| s * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn parallel_map_handles_more_seeds_than_workers() {
        // 64 seeds on an `available_parallelism`-bounded pool: every
        // seed still runs exactly once, in order.
        let out = parallel_map(0..64, |s| s + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn one_poisoned_seed_keeps_the_other_nine() {
        let out = parallel_try_map(0..RUNS, |seed| {
            if seed == 3 {
                panic!("poisoned seed");
            }
            seed * 10
        });
        assert_eq!(out.len() as u64, RUNS);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.seed, 3);
                assert!(err.message.contains("poisoned seed"), "{err}");
            } else {
                assert_eq!(*r, Ok(i as u64 * 10));
            }
        }
    }

    #[test]
    fn parallel_map_repanics_with_seed_context() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(0..4, |seed| {
                if seed == 2 {
                    panic!("boom");
                }
                seed
            })
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("seed 2"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn start_of_fallback_is_warned_not_silent() {
        use std::sync::Arc;
        let mut inst = course_instance(CourseDataset::DsCt).clone();
        inst.default_start = None;
        let collector = Arc::new(tpp_obs::CollectorSink::new());
        tpp_obs::add_sink(collector.clone());
        let got = start_of(&inst);
        tpp_obs::clear_sinks();
        assert_eq!(got, ItemId(0));
        let lines = collector.lines();
        assert!(
            lines.iter().any(|l| l.contains("eval.start_fallback")),
            "expected a warn event, got {lines:?}"
        );
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn omega_scores_are_deterministic() {
        assert_eq!(
            omega_score_course(CourseDataset::DsCt),
            omega_score_course(CourseDataset::DsCt)
        );
    }

    #[test]
    fn gold_beats_or_ties_everyone_on_toy_scale() {
        let inst = course_instance(CourseDataset::DsCt);
        let params = pinned(&PlannerParams::univ1_defaults(), inst);
        let gold = gold_score(inst);
        assert_eq!(gold, inst.horizon() as f64);
        let eda = eda_avg_score(inst, &params);
        assert!(eda <= gold);
    }
}
