//! Shared measurement helpers: averaged scores over 10 runs, in
//! parallel.
//!
//! The paper "present\[s\] average scores over 10 runs" (§IV-A); every
//! score-producing helper here follows that protocol with seeds `0..10`.

use crate::datasets::{course_instance, trip_dataset, CourseDataset, TripCity};
use tpp_baselines::{eda_plan, gold_plan, omega_plan, OmegaConfig};
use tpp_core::{score_plan, PlannerParams, RlPlanner};
use tpp_datagen::itineraries::co_consumption_matrix;
use tpp_model::{ItemId, PlanningInstance};
use tpp_obs::Level;

/// Number of runs averaged, per the paper's protocol.
pub const RUNS: u64 = 10;

/// Maps `seeds` through `f` on scoped threads and returns the results in
/// seed order. Used for the per-seed learn+recommend runs, which dominate
/// experiment wall-clock.
pub fn parallel_map<T, F>(seeds: std::ops::Range<u64>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let seeds: Vec<u64> = seeds.collect();
    let mut out: Vec<Option<T>> = (0..seeds.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(seeds.len());
        for &seed in &seeds {
            let f = &f;
            handles.push(scope.spawn(move || f(seed)));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("worker panicked"));
        }
    });
    out.into_iter().map(|v| v.expect("filled")).collect()
}

/// The start item an experiment uses for an instance.
pub fn start_of(instance: &PlanningInstance) -> ItemId {
    instance.default_start.unwrap_or(ItemId(0))
}

/// Pins the training/recommendation start to the instance default
/// (Table III fixes `s_1` per dataset).
pub fn pinned(params: &PlannerParams, instance: &PlanningInstance) -> PlannerParams {
    params.clone().with_start(start_of(instance))
}

/// Mean RL-Planner score over [`RUNS`] learn+recommend runs.
pub fn rl_avg_score(instance: &PlanningInstance, params: &PlannerParams) -> f64 {
    let start = match params.start {
        tpp_core::StartPolicy::Fixed(id) => id,
        _ => start_of(instance),
    };
    let scores = parallel_map(0..RUNS, |seed| {
        let mut span = tpp_obs::span(Level::Debug, "eval.rl_run")
            .with("catalog", instance.catalog.name())
            .with("seed", seed);
        let (policy, _) = RlPlanner::learn(instance, params, seed);
        let score = score_plan(
            instance,
            &RlPlanner::recommend(&policy, instance, params, start),
        );
        span.record("score", score);
        score
    });
    mean(&scores)
}

/// Mean EDA score over [`RUNS`] runs (the seed drives tie-breaking).
pub fn eda_avg_score(instance: &PlanningInstance, params: &PlannerParams) -> f64 {
    let start = match params.start {
        tpp_core::StartPolicy::Fixed(id) => id,
        _ => start_of(instance),
    };
    let scores = parallel_map(0..RUNS, |seed| {
        score_plan(instance, &eda_plan(instance, params, start, seed))
    });
    mean(&scores)
}

/// OMEGA's (deterministic) score on a course dataset.
pub fn omega_score_course(ds: CourseDataset) -> f64 {
    let instance = course_instance(ds);
    let plan = omega_plan(
        instance,
        &OmegaConfig::paper_adaptation(instance.horizon()),
        None,
    );
    score_plan(instance, &plan)
}

/// OMEGA's score on a trip dataset (uses the itinerary-log
/// co-consumption matrix, as the original algorithm does).
pub fn omega_score_trip(city: TripCity) -> f64 {
    let d = trip_dataset(city);
    let m = co_consumption_matrix(&d.instance.catalog, &d.itineraries);
    let plan = omega_plan(
        &d.instance,
        &OmegaConfig {
            prefix_len: d.instance.horizon() / 2,
            use_logs: true,
        },
        Some(&m),
    );
    score_plan(&d.instance, &plan)
}

/// Gold-standard score (deterministic expert oracle), start pinned.
pub fn gold_score(instance: &PlanningInstance) -> f64 {
    score_plan(instance, &gold_plan(instance, Some(start_of(instance))))
}

/// Arithmetic mean (`0.0` for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (`0.0` for n < 2).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(0..8, |s| s * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn omega_scores_are_deterministic() {
        assert_eq!(
            omega_score_course(CourseDataset::DsCt),
            omega_score_course(CourseDataset::DsCt)
        );
    }

    #[test]
    fn gold_beats_or_ties_everyone_on_toy_scale() {
        let inst = course_instance(CourseDataset::DsCt);
        let params = pinned(&PlannerParams::univ1_defaults(), inst);
        let gold = gold_score(inst);
        assert_eq!(gold, inst.horizon() as f64);
        let eda = eda_avg_score(inst, &params);
        assert!(eda <= gold);
    }
}
