//! Table VII: transfer learning between NYC and Paris.
//!
//! The cities share no POIs and even their theme vocabularies differ
//! (21 vs 16 themes), so Q mass is transported through the
//! nearest-theme-profile mapping. The paper reports short transferred
//! itineraries with their scores.

use crate::datasets::{trip_dataset, TripCity};
use crate::report::{fmt_score, NamedTable, Report};
use crate::runner;
use tpp_core::{poi_mapping_by_theme, score_plan, transfer_policy, PlannerParams, RlPlanner};

/// Runs the Table VII case study.
pub fn run() -> Report {
    let mut report = Report::new("table7", "Trip transfer learning NYC ↔ Paris (Table VII)");
    let mut rows = Vec::new();
    for (learnt, applied) in [
        (TripCity::Nyc, TripCity::Paris),
        (TripCity::Paris, TripCity::Nyc),
    ] {
        let source = &trip_dataset(learnt).instance;
        let target = &trip_dataset(applied).instance;
        let params = PlannerParams::trip_defaults();
        let mapping = poi_mapping_by_theme(&target.catalog, &source.catalog);
        let src_params = runner::pinned(&params, source);
        let (policy, _) = RlPlanner::learn(source, &src_params, 0);
        let q = transfer_policy(&policy.q, &mapping);
        let start = runner::start_of(target);
        let tgt_params = params.clone().with_start(start);
        let plan = RlPlanner::recommend_with_q(&q, target, &tgt_params, start);
        let seq = plan
            .items()
            .iter()
            .map(|&id| format!("'{}'", target.catalog.item(id).code))
            .collect::<Vec<_>>()
            .join(" → ");
        rows.push(vec![
            learnt.label().to_owned(),
            applied.label().to_owned(),
            format!("[{seq}]"),
            fmt_score(score_plan(target, &plan)),
            format!("{:.0}%", 100.0 * mapping.coverage()),
        ]);
    }
    report.push_table(NamedTable::new(
        "transferred itineraries (Table VII)",
        [
            "learnt policy",
            "applied policy",
            "sequence of recommended POIs",
            "score",
            "mapping coverage",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    ));
    report.push_note(
        "Paper values: NYC→Paris 4.3 and Paris→NYC 4.5 on 2–3-POI itineraries; \
         the reproduced claim is that theme-space transfer yields valid, \
         high-popularity itineraries without retraining.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_transfer_yields_positive_scores() {
        let report = run();
        for row in &report.tables[0].rows {
            let score: f64 = row[3].parse().unwrap();
            assert!(score > 3.5, "{} → {}: score {score}", row[0], row[1]);
            assert!(!row[2].is_empty());
        }
    }
}
