//! # tpp-eval
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§IV), a shared parallel runner, a rater simulation for the
//! user study, and ASCII/CSV report rendering.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig1`] | Fig. 1(a)(b) — RL-Planner vs OMEGA vs EDA vs gold |
//! | [`table4`] | Table IV — user-study ratings (simulated raters) |
//! | [`table5`] | Tables V & VI — course transfer learning case study |
//! | [`table7`] | Table VII — trip transfer learning case study |
//! | [`table8`] | Table VIII — itinerary descriptions under (t, d) |
//! | [`sweeps`] | Tables IX–XVI — parameter robustness |
//! | [`fig2`] | Fig. 2 — scalability (learn / recommend time vs N) |
//! | [`extensions`] | beyond-paper: ablations, size scaling, feedback |
//!
//! Every experiment returns a [`report::Report`]; `run_experiment` and
//! `all_experiments` drive them by id (the CLI's `exp` subcommand).

#![warn(missing_docs)]

pub mod datasets;
pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod raters;
pub mod registry;
pub mod report;
pub mod runner;
pub mod sweeps;
pub mod table4;
pub mod table5;
pub mod table7;
pub mod table8;

pub use registry::{all_experiments, run_experiment, ExperimentId};
pub use report::{write_markdown_bundle, NamedTable, Report};
