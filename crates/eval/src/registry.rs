//! Experiment registry: run any table/figure by id.

use crate::report::Report;
use crate::{extensions, fig1, fig2, sweeps, table4, table5, table7, table8};

/// Identifiers of every reproducible experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Fig. 1 — method comparison.
    Fig1,
    /// Table IV — user study.
    Table4,
    /// Tables V & VI — course transfer.
    Table5,
    /// Table VII — trip transfer.
    Table7,
    /// Table VIII — itinerary descriptions.
    Table8,
    /// Table IX — Univ-1 ε & weights sweep.
    Table9,
    /// Table X — Univ-1 N/α/γ sweep.
    Table10,
    /// Table XI — Univ-1 start & δβ sweep.
    Table11,
    /// Table XII — Univ-2 N/α/γ/ε sweep.
    Table12,
    /// Table XIII — Univ-2 ω sweep.
    Table13,
    /// Table XIV — Univ-2 start & δβ sweep.
    Table14,
    /// Table XV — trips N/α/γ/d sweep.
    Table15,
    /// Table XVI — trips t & δβ sweep.
    Table16,
    /// Fig. 2 — scalability.
    Fig2,
    /// Extension: design-choice ablations.
    Ablations,
    /// Extension: scalability in catalog size.
    SizeScaling,
    /// Extension: the §VI feedback loop.
    Feedback,
    /// Extension: learning curves.
    Convergence,
}

impl ExperimentId {
    /// All experiments, in paper order.
    pub const ALL: [ExperimentId; 18] = [
        ExperimentId::Fig1,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Table7,
        ExperimentId::Table8,
        ExperimentId::Table9,
        ExperimentId::Table10,
        ExperimentId::Table11,
        ExperimentId::Table12,
        ExperimentId::Table13,
        ExperimentId::Table14,
        ExperimentId::Table15,
        ExperimentId::Table16,
        ExperimentId::Fig2,
        ExperimentId::Ablations,
        ExperimentId::SizeScaling,
        ExperimentId::Feedback,
        ExperimentId::Convergence,
    ];

    /// String id accepted by the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            ExperimentId::Fig1 => "fig1",
            ExperimentId::Table4 => "table4",
            ExperimentId::Table5 => "table5",
            ExperimentId::Table7 => "table7",
            ExperimentId::Table8 => "table8",
            ExperimentId::Table9 => "table9",
            ExperimentId::Table10 => "table10",
            ExperimentId::Table11 => "table11",
            ExperimentId::Table12 => "table12",
            ExperimentId::Table13 => "table13",
            ExperimentId::Table14 => "table14",
            ExperimentId::Table15 => "table15",
            ExperimentId::Table16 => "table16",
            ExperimentId::Fig2 => "fig2",
            ExperimentId::Ablations => "ablations",
            ExperimentId::SizeScaling => "size-scaling",
            ExperimentId::Feedback => "feedback",
            ExperimentId::Convergence => "convergence",
        }
    }

    /// Parses a string id (case-insensitive).
    pub fn parse(s: &str) -> Option<ExperimentId> {
        let s = s.to_ascii_lowercase();
        Self::ALL.into_iter().find(|e| e.as_str() == s)
    }

    /// Runs the experiment.
    pub fn run(self) -> Report {
        self.run_timed().0
    }

    /// Runs the experiment and reports its wall-clock. The duration is
    /// also emitted as an `exp.run` event and recorded in the
    /// `exp.run.ms` metrics histogram.
    pub fn run_timed(self) -> (Report, std::time::Duration) {
        let started = std::time::Instant::now();
        let mut span = tpp_obs::span(tpp_obs::Level::Info, "exp.run").with("id", self.as_str());
        let report = self.dispatch();
        let elapsed = started.elapsed();
        span.record("wall_ms", elapsed.as_secs_f64() * 1e3);
        drop(span);
        tpp_obs::metrics()
            .histogram("exp.run.ms")
            .record(u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX));
        (report, elapsed)
    }

    fn dispatch(self) -> Report {
        match self {
            ExperimentId::Fig1 => fig1::run(),
            ExperimentId::Table4 => table4::run(),
            ExperimentId::Table5 => table5::run(),
            ExperimentId::Table7 => table7::run(),
            ExperimentId::Table8 => table8::run(),
            ExperimentId::Table9 => sweeps::run_table9(),
            ExperimentId::Table10 => sweeps::run_table10(),
            ExperimentId::Table11 => sweeps::run_table11(),
            ExperimentId::Table12 => sweeps::run_table12(),
            ExperimentId::Table13 => sweeps::run_table13(),
            ExperimentId::Table14 => sweeps::run_table14(),
            ExperimentId::Table15 => sweeps::run_table15(),
            ExperimentId::Table16 => sweeps::run_table16(),
            ExperimentId::Fig2 => fig2::run(),
            ExperimentId::Ablations => extensions::run_ablations(),
            ExperimentId::SizeScaling => extensions::run_size_scaling(),
            ExperimentId::Feedback => extensions::run_feedback(),
            ExperimentId::Convergence => extensions::run_convergence(),
        }
    }
}

/// Runs one experiment by string id.
pub fn run_experiment(id: &str) -> Option<Report> {
    ExperimentId::parse(id).map(ExperimentId::run)
}

/// All experiment ids, in paper order.
pub fn all_experiments() -> impl Iterator<Item = ExperimentId> {
    ExperimentId::ALL.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for e in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(e.as_str()), Some(e));
        }
        assert_eq!(ExperimentId::parse("TABLE9"), Some(ExperimentId::Table9));
        assert_eq!(ExperimentId::parse("nope"), None);
    }

    #[test]
    fn registry_is_complete() {
        // 8 sweep/robustness tables + fig1 + fig2 + user study + 3 case
        // studies (Table VI folds into table5) + 4 extensions.
        assert_eq!(ExperimentId::ALL.len(), 18);
    }
}
