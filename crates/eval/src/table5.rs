//! Tables V & VI: transfer learning between M.S. CS and M.S. DS-CT.
//!
//! A policy is learned on the source program, its Q mass transported to
//! the target through the shared-course-code mapping, and plans are
//! recommended in the target. The paper presents a "Good" case (all hard
//! constraints met) and a "Bad" case (one core course short); we sweep
//! seeds and report the first of each, plus the Table VI course-title
//! mapping for every course the sequences mention.

use crate::datasets::{course_instance, CourseDataset};
use crate::report::{fmt_score, NamedTable, Report};
use crate::runner;
use tpp_core::{
    course_mapping_by_code, plan_violations, score_plan, transfer_policy, PlannerParams, RlPlanner,
};
use tpp_model::{Plan, PlanningInstance};

/// One direction of the case study.
/// A scored plan, or `None` when no seed produced the case.
type Case = Option<(Plan, f64)>;

fn transfer_case(source: &PlanningInstance, target: &PlanningInstance) -> (Case, Case) {
    let params = PlannerParams::univ1_defaults();
    let mapping = course_mapping_by_code(&target.catalog, &source.catalog);
    let start = runner::start_of(target);
    let mut good = None;
    let mut bad = None;
    for seed in 0..16u64 {
        let src_params = runner::pinned(&params, source);
        let (policy, _) = RlPlanner::learn(source, &src_params, seed);
        let q = transfer_policy(&policy.q, &mapping);
        let tgt_params = params.clone().with_start(start);
        let plan = RlPlanner::recommend_with_q(&q, target, &tgt_params, start);
        let score = score_plan(target, &plan);
        let violations = plan_violations(target, &plan);
        if violations.is_empty() && good.is_none() {
            good = Some((plan, score));
        } else if !violations.is_empty() && bad.is_none() {
            bad = Some((plan, score));
        }
        if good.is_some() && bad.is_some() {
            break;
        }
    }
    (good, bad)
}

/// Runs the Tables V/VI case study.
pub fn run() -> Report {
    let mut report = Report::new(
        "table5",
        "Transfer learning between M.S. CS and M.S. DS-CT (Tables V & VI)",
    );
    let ds = course_instance(CourseDataset::DsCt);
    let cs = course_instance(CourseDataset::Cs);

    let mut rows = Vec::new();
    let mut mentioned: Vec<tpp_model::ItemId> = Vec::new();
    let mut mentioned_from: Vec<&PlanningInstance> = Vec::new();
    for (learnt, applied, source, target) in [
        ("M.S. CS", "M.S. DS-CT", cs, ds),
        ("M.S. DS-CT", "M.S. CS", ds, cs),
    ] {
        let (good, bad) = transfer_case(source, target);
        for (tag, case) in [("Good", good), ("Bad", bad)] {
            match case {
                Some((plan, score)) => {
                    for &id in plan.items() {
                        if !mentioned.contains(&id)
                            || !std::ptr::eq(
                                mentioned_from[mentioned.iter().position(|&m| m == id).unwrap()],
                                target,
                            )
                        {
                            mentioned.push(id);
                            mentioned_from.push(target);
                        }
                    }
                    rows.push(vec![
                        learnt.to_owned(),
                        applied.to_owned(),
                        tag.to_owned(),
                        plan.render(&target.catalog),
                        fmt_score(score),
                    ]);
                }
                None => rows.push(vec![
                    learnt.to_owned(),
                    applied.to_owned(),
                    tag.to_owned(),
                    "(no such case in 16 seeds)".to_owned(),
                    "—".to_owned(),
                ]),
            }
        }
    }
    report.push_table(NamedTable::new(
        "transferred recommendations (Table V)",
        [
            "learnt policy",
            "applied policy",
            "case",
            "sequence",
            "score",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    ));

    // Table VI: code → title mapping for every mentioned course.
    let mut rows: Vec<Vec<String>> = mentioned
        .iter()
        .zip(&mentioned_from)
        .map(|(&id, inst)| {
            let item = inst.catalog.item(id);
            vec![item.code.clone(), item.name.clone()]
        })
        .collect();
    rows.sort();
    rows.dedup();
    report.push_table(NamedTable::new(
        "course IDs & descriptions (Table VI)",
        ["course number", "course name"].map(String::from).to_vec(),
        rows,
    ));
    report.push_note(
        "Paper shape: transferred policies produce valid plans in the good \
         cases; the bad cases typically fall one core course short — the \
         same failure mode Table V prints.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_produces_a_good_case_both_ways() {
        let report = run();
        let table = &report.tables[0];
        let good_rows: Vec<_> = table
            .rows
            .iter()
            .filter(|r| r[2] == "Good" && r[4] != "—")
            .collect();
        assert!(
            !good_rows.is_empty(),
            "at least one direction should transfer successfully"
        );
        for r in good_rows {
            let score: f64 = r[4].parse().unwrap();
            assert!(score > 0.0);
        }
    }

    #[test]
    fn table6_lists_mentioned_courses() {
        let report = run();
        let table = &report.tables[1];
        assert!(!table.rows.is_empty());
        // Every row has a code and a non-empty title.
        for r in &table.rows {
            assert!(!r[0].is_empty() && !r[1].is_empty());
        }
    }
}
