//! Report structures and rendering (ASCII tables + CSV).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One table of results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedTable {
    /// Table caption.
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl NamedTable {
    /// Creates a table, checking row widths.
    pub fn new(name: impl Into<String>, headers: Vec<String>, rows: Vec<Vec<String>>) -> Self {
        let headers_len = headers.len();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), headers_len, "row {i} has wrong width");
        }
        NamedTable {
            name: name.into(),
            headers,
            rows,
        }
    }

    /// Renders the table with box-drawing-free ASCII (pipes and dashes).
    pub fn render_ascii(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.name);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, width) in widths.iter().enumerate().take(ncols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                s.push(' ');
                s.push_str(cell);
                s.extend(std::iter::repeat(' ').take(pad));
                s.push_str(" |");
            }
            out.push_str(&s);
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// A full experiment report: one or more tables plus free-form notes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id (e.g. `"fig1"`, `"table9"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Result tables.
    pub tables: Vec<NamedTable>,
    /// Interpretation / caveats, one paragraph per entry.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a table.
    pub fn push_table(&mut self, table: NamedTable) {
        self.tables.push(table);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the whole report as ASCII.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# [{}] {}", self.id, self.title);
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render_ascii());
        }
        for n in &self.notes {
            out.push('\n');
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Writes one CSV per table under `dir` as `<id>_<k>.csv`.
    pub fn write_csvs(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (k, t) in self.tables.iter().enumerate() {
            let path = dir.join(format!("{}_{k}.csv", self.id));
            std::fs::write(path, t.to_csv())?;
        }
        Ok(())
    }

    /// Renders as GitHub-flavoured Markdown (the ASCII tables are already
    /// valid GFM pipe tables; this adds headings and italicised notes).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} (`{}`)", self.title, self.id);
        for t in &self.tables {
            let _ = writeln!(out, "\n### {}\n", t.name);
            // Re-render the body without the `## name` line.
            let body = t.render_ascii();
            let mut lines = body.lines();
            let _ = lines.next(); // drop "## name"
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }
}

/// Appends `reports` to one combined Markdown file.
pub fn write_markdown_bundle(
    path: impl AsRef<std::path::Path>,
    title: &str,
    reports: &[Report],
) -> std::io::Result<()> {
    let mut out = format!("# {title}\n");
    for r in reports {
        out.push('\n');
        out.push_str(&r.render_markdown());
    }
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

/// Formats a score cell the way the paper prints them (two decimals,
/// trailing zeros trimmed).
pub fn fmt_score(v: f64) -> String {
    let s = format!("{v:.2}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_owned()
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NamedTable {
        NamedTable::new(
            "demo",
            vec!["a".into(), "long header".into()],
            vec![
                vec!["1".into(), "x".into()],
                vec!["2222".into(), "y,z".into()],
            ],
        )
    }

    #[test]
    fn ascii_aligns_columns() {
        let s = sample().render_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("## demo"));
        // All data lines have the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"y,z\""));
        assert!(csv.starts_with("a,long header\n"));
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn rejects_jagged_rows() {
        NamedTable::new("bad", vec!["a".into()], vec![vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn fmt_score_trims() {
        assert_eq!(fmt_score(7.90), "7.9");
        assert_eq!(fmt_score(10.0), "10");
        assert_eq!(fmt_score(0.0), "0");
        assert_eq!(fmt_score(8.24), "8.24");
    }

    #[test]
    fn markdown_render_and_bundle() {
        let mut r = Report::new("t2", "md demo");
        r.push_table(sample());
        r.push_note("be careful");
        let md = r.render_markdown();
        assert!(md.contains("## md demo (`t2`)"));
        assert!(md.contains("### demo"));
        assert!(md.contains("> be careful"));
        assert!(md.contains("| a"));
        let path = std::env::temp_dir().join(format!("tpp-md-{}.md", std::process::id()));
        write_markdown_bundle(&path, "bundle", &[r]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("# bundle"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_render_and_csv() {
        let mut r = Report::new("t1", "demo report");
        r.push_table(sample());
        r.push_note("hello");
        let s = r.render_ascii();
        assert!(s.contains("[t1]") && s.contains("note: hello"));
        let dir = std::env::temp_dir().join(format!("tpp-report-{}", std::process::id()));
        r.write_csvs(&dir).unwrap();
        assert!(dir.join("t1_0.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
