//! Simulated raters for the Table IV user study.
//!
//! The paper's study puts an RL-Planner plan and a gold-standard plan
//! (unlabeled) in front of 25 DS-CT students / 50 AMT travellers, who
//! rate four questions on 1–5. We cannot hire humans, so we model a
//! rater as: *an affine function of the measurable plan-quality feature
//! behind each question, plus a per-rater leniency bias, plus noise* —
//! and freeze the calibration constants. What the experiment then tests
//! is the paper's *relative* finding: RL-Planner rates close to (but
//! slightly below) the gold standard on every question.
//!
//! Features (each in [0, 1]):
//! * **overall** — plan score / maximum score;
//! * **ordering** — fraction of items whose antecedent constraints hold;
//! * **topic coverage** — covered ideal topics / |T_ideal|;
//! * **interleaving / thresholds** — courses: best-template similarity
//!   normalized by H; trips: budget-compliance × length-completeness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpp_core::{plan_violations, raw_score, score_plan, InterleavingKernel};
use tpp_model::{Plan, PlanningInstance, Violation};

/// The four Table IV questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Question {
    /// Overall rating.
    Overall,
    /// Ordering of items.
    Ordering,
    /// Topic/theme coverage.
    TopicCoverage,
    /// Core/elective interleaving (courses) or distance & time threshold
    /// compliance (trips).
    InterleavingOrThresholds,
}

impl Question {
    /// All four questions in Table IV order.
    pub const ALL: [Question; 4] = [
        Question::Overall,
        Question::Ordering,
        Question::TopicCoverage,
        Question::InterleavingOrThresholds,
    ];

    /// Row label as printed in Table IV.
    pub fn label(self) -> &'static str {
        match self {
            Question::Overall => "Overall Rating",
            Question::Ordering => "Ordering of Items",
            Question::TopicCoverage => "Topic/Theme Coverage",
            Question::InterleavingOrThresholds => {
                "Core and Elective Interleaving / Distance and Time Threshold"
            }
        }
    }

    /// Calibration constants `(base, span)` of the affine rater response
    /// `base + span · feature`. Frozen once; chosen so that a perfect
    /// plan rates in the low 4s and a mediocre one in the low 3s, the
    /// regime Table IV reports.
    fn calibration(self) -> (f64, f64) {
        match self {
            Question::Overall => (2.9, 1.3),
            Question::Ordering => (2.6, 1.1),
            Question::TopicCoverage => (2.9, 1.0),
            Question::InterleavingOrThresholds => (2.7, 1.2),
        }
    }
}

/// The measurable feature behind each question, in `[0, 1]`.
pub fn feature(instance: &PlanningInstance, plan: &Plan, q: Question) -> f64 {
    if plan.is_empty() {
        return 0.0;
    }
    match q {
        Question::Overall => {
            let max = if instance.is_trip() {
                5.0
            } else {
                instance.horizon() as f64
            };
            // Invalid plans still *look* partially good to a human, so
            // the overall feature blends validity with the raw score.
            let s = score_plan(instance, plan);
            let raw = raw_score(instance, plan);
            (0.7 * s + 0.3 * raw) / max
        }
        Question::Ordering => {
            let bad = plan_violations(instance, plan)
                .iter()
                .filter(|v| matches!(v, Violation::PrereqUnsatisfied { .. }))
                .count();
            1.0 - bad as f64 / plan.len() as f64
        }
        Question::TopicCoverage => {
            let ideal = &instance.soft.ideal_topics;
            let covered = plan.covered_topics(&instance.catalog);
            f64::from(covered.intersection_count(ideal)) / f64::from(ideal.count_ones().max(1))
        }
        Question::InterleavingOrThresholds => {
            if instance.is_trip() {
                let budget_ok = plan_violations(instance, plan).iter().all(|v| {
                    !matches!(
                        v,
                        Violation::TimeBudgetExceeded { .. } | Violation::DistanceExceeded { .. }
                    )
                });
                let completeness = plan.len() as f64 / instance.horizon() as f64;
                if budget_ok {
                    0.5 + 0.5 * completeness.min(1.0)
                } else {
                    0.3 * completeness.min(1.0)
                }
            } else {
                let kinds = plan.kind_sequence(&instance.catalog);
                InterleavingKernel::best(&kinds, &instance.soft.templates)
                    / instance.horizon() as f64
            }
        }
    }
}

/// A standard-normal sample via Box–Muller (no `rand_distr` offline).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Simulates a panel of `n_raters` rating `plan` on all four questions;
/// returns the per-question mean ratings in [`Question::ALL`] order.
pub fn panel_ratings(
    instance: &PlanningInstance,
    plan: &Plan,
    n_raters: usize,
    seed: u64,
) -> [f64; 4] {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sums = [0.0f64; 4];
    for _ in 0..n_raters {
        // Per-rater leniency applies to all of this rater's answers.
        let bias = 0.25 * gaussian(&mut rng);
        for (qi, q) in Question::ALL.iter().enumerate() {
            let (base, span) = q.calibration();
            let f = feature(instance, plan, *q);
            let noise = 0.35 * gaussian(&mut rng);
            let rating = (base + span * f + bias + noise).clamp(1.0, 5.0);
            sums[qi] += rating;
        }
    }
    sums.map(|s| s / n_raters as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{course_instance, CourseDataset};
    use tpp_baselines::gold_plan;

    #[test]
    fn features_in_unit_interval() {
        let inst = course_instance(CourseDataset::DsCt);
        let plan = gold_plan(inst, None);
        for q in Question::ALL {
            let f = feature(inst, &plan, q);
            assert!((0.0..=1.0 + 1e-9).contains(&f), "{q:?}: {f}");
        }
    }

    #[test]
    fn gold_features_are_high() {
        let inst = course_instance(CourseDataset::DsCt);
        let plan = gold_plan(inst, None);
        assert!(feature(inst, &plan, Question::Overall) > 0.9);
        assert_eq!(feature(inst, &plan, Question::Ordering), 1.0);
        assert_eq!(
            feature(inst, &plan, Question::InterleavingOrThresholds),
            1.0
        );
    }

    #[test]
    fn empty_plan_features_zero() {
        let inst = course_instance(CourseDataset::DsCt);
        for q in Question::ALL {
            assert_eq!(feature(inst, &Plan::new(), q), 0.0);
        }
    }

    #[test]
    fn panel_is_deterministic_and_bounded() {
        let inst = course_instance(CourseDataset::DsCt);
        let plan = gold_plan(inst, None);
        let a = panel_ratings(inst, &plan, 25, 42);
        let b = panel_ratings(inst, &plan, 25, 42);
        assert_eq!(a, b);
        for r in a {
            assert!((1.0..=5.0).contains(&r));
        }
    }

    #[test]
    fn better_plans_rate_higher() {
        let inst = course_instance(CourseDataset::DsCt);
        let gold = gold_plan(inst, None);
        // A deliberately bad plan: first H items in id order.
        let bad = Plan::from_items(inst.catalog.ids().take(inst.horizon()).collect());
        let rg = panel_ratings(inst, &gold, 50, 7);
        let rb = panel_ratings(inst, &bad, 50, 7);
        assert!(
            rg[0] > rb[0],
            "gold overall {} should beat bad overall {}",
            rg[0],
            rb[0]
        );
    }
}
