//! Table IV: the user study, with simulated raters (see [`crate::raters`]).
//!
//! Course side: 25 students rate an RL-Planner DS-CT plan against the
//! gold standard. Trip side: 50 workers validate 10 itineraries (5 NYC +
//! 5 Paris, 5 raters each) for both methods. Ratings are per-question
//! means on a 1–5 scale.

use crate::datasets::{course_instance, trip_dataset, CourseDataset, TripCity};
use crate::raters::{panel_ratings, Question};
use crate::report::{NamedTable, Report};
use crate::runner;
use tpp_baselines::gold_plan;
use tpp_core::{PlannerParams, RlPlanner};
use tpp_model::{Plan, PlanningInstance};

fn rl_plan(instance: &PlanningInstance, params: &PlannerParams, seed: u64) -> Plan {
    let params = runner::pinned(params, instance);
    let (policy, _) = RlPlanner::learn(instance, &params, seed);
    RlPlanner::recommend(&policy, instance, &params, runner::start_of(instance))
}

/// Runs the Table IV study simulation.
pub fn run() -> Report {
    let mut report = Report::new("table4", "User study: average ratings (Table IV)");

    // --- Course planning: 25 students, DS-CT.
    let inst = course_instance(CourseDataset::DsCt);
    let params = PlannerParams::univ1_defaults();
    // Average the RL ratings over 5 independent plans, as multiple
    // advisee plans were shown in the study.
    let mut rl_course = [0.0f64; 4];
    for seed in 0..5 {
        let plan = rl_plan(inst, &params, seed);
        let r = panel_ratings(inst, &plan, 25, 100 + seed);
        for i in 0..4 {
            rl_course[i] += r[i] / 5.0;
        }
    }
    let gold_course = panel_ratings(inst, &gold_plan(inst, None), 25, 7);

    // --- Trip planning: 5 itineraries per city, 5 unique raters each.
    let mut rl_trip = [0.0f64; 4];
    let mut gold_trip = [0.0f64; 4];
    let mut n = 0.0;
    for city in TripCity::ALL {
        let d = trip_dataset(city);
        let tparams = PlannerParams::trip_defaults();
        for seed in 0..5u64 {
            let plan = rl_plan(&d.instance, &tparams, seed);
            let r = panel_ratings(&d.instance, &plan, 5, 200 + seed);
            let g = panel_ratings(
                &d.instance,
                &gold_plan(&d.instance, Some(runner::start_of(&d.instance))),
                5,
                300 + seed,
            );
            for i in 0..4 {
                rl_trip[i] += r[i];
                gold_trip[i] += g[i];
            }
            n += 1.0;
        }
    }
    for i in 0..4 {
        rl_trip[i] /= n;
        gold_trip[i] /= n;
    }

    let rows = Question::ALL
        .iter()
        .enumerate()
        .map(|(i, q)| {
            vec![
                q.label().to_owned(),
                format!("{:.2}", rl_course[i]),
                format!("{:.2}", gold_course[i]),
                format!("{:.2}", rl_trip[i]),
                format!("{:.2}", gold_trip[i]),
            ]
        })
        .collect();
    report.push_table(NamedTable::new(
        "average ratings (1–5), simulated raters",
        [
            "question",
            "course RL-Planner",
            "course Gold",
            "trip RL-Planner",
            "trip Gold",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    ));
    report.push_note(
        "Paper values — course: RL 3.6/3.1/3.6/3.24 vs gold 4.12/3.4/3.76/3.68; \
         trip: RL 4.2/3.7/3.8/4.09 vs gold 4.5/4.12/3.9/4.11. The raters here are \
         simulated (see raters.rs); the reproduced claim is the relative one: \
         RL-Planner within a few tenths of gold on every question.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_rl_close_to_but_below_gold() {
        let report = run();
        let table = &report.tables[0];
        for row in &table.rows {
            let rl_c: f64 = row[1].parse().unwrap();
            let gold_c: f64 = row[2].parse().unwrap();
            let rl_t: f64 = row[3].parse().unwrap();
            let gold_t: f64 = row[4].parse().unwrap();
            for v in [rl_c, gold_c, rl_t, gold_t] {
                assert!((1.0..=5.0).contains(&v));
            }
            // Gold matches or beats RL up to rater noise, and stays
            // within ~1.2 points — the paper's "highly comparable" claim.
            assert!(
                gold_c + 0.2 >= rl_c,
                "{}: course rl {rl_c} gold {gold_c}",
                row[0]
            );
            assert!(
                gold_t + 0.2 >= rl_t,
                "{}: trip rl {rl_t} gold {gold_t}",
                row[0]
            );
            assert!(gold_c - rl_c < 1.2, "{}: course gap too wide", row[0]);
            assert!(gold_t - rl_t < 1.2, "{}: trip gap too wide", row[0]);
        }
    }
}
