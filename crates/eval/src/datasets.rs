//! Cached dataset construction shared by all experiments.
//!
//! The sweep tables re-evaluate the same instances dozens of times;
//! regenerating 5k+ itineraries per cell would dominate the runtime, so
//! the six evaluation datasets are built once behind `OnceLock`s with the
//! default seeds.

use std::sync::OnceLock;
use tpp_datagen::defaults::{NYC_SEED, PARIS_SEED, UNIV1_SEED, UNIV2_SEED};
use tpp_datagen::TripDataset;
use tpp_model::PlanningInstance;

/// The four course datasets, in the order Fig. 1(a) presents them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CourseDataset {
    /// Univ-1 M.S. Data Science — Computational Track.
    DsCt,
    /// Univ-1 M.S. Cybersecurity.
    Cyber,
    /// Univ-1 M.S. Computer Science.
    Cs,
    /// Univ-2 M.S. Data Science.
    Univ2,
}

impl CourseDataset {
    /// All four, in presentation order.
    pub const ALL: [CourseDataset; 4] = [
        CourseDataset::DsCt,
        CourseDataset::Cyber,
        CourseDataset::Cs,
        CourseDataset::Univ2,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CourseDataset::DsCt => "Univ-1 DS-CT",
            CourseDataset::Cyber => "Univ-1 Cybersecurity",
            CourseDataset::Cs => "Univ-1 CS",
            CourseDataset::Univ2 => "Univ-2 DS",
        }
    }
}

/// The two trip datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCity {
    /// New York City (90 POIs, 21 themes).
    Nyc,
    /// Paris (114 POIs, 16 themes).
    Paris,
}

impl TripCity {
    /// Both cities, in presentation order.
    pub const ALL: [TripCity; 2] = [TripCity::Nyc, TripCity::Paris];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TripCity::Nyc => "NYC",
            TripCity::Paris => "Paris",
        }
    }
}

/// The cached instance for a course dataset.
pub fn course_instance(ds: CourseDataset) -> &'static PlanningInstance {
    match ds {
        CourseDataset::DsCt => {
            static CELL: OnceLock<PlanningInstance> = OnceLock::new();
            CELL.get_or_init(|| tpp_datagen::univ1_ds_ct(UNIV1_SEED))
        }
        CourseDataset::Cyber => {
            static CELL: OnceLock<PlanningInstance> = OnceLock::new();
            CELL.get_or_init(|| tpp_datagen::univ1_cyber(UNIV1_SEED))
        }
        CourseDataset::Cs => {
            static CELL: OnceLock<PlanningInstance> = OnceLock::new();
            CELL.get_or_init(|| tpp_datagen::univ1_cs(UNIV1_SEED))
        }
        CourseDataset::Univ2 => {
            static CELL: OnceLock<PlanningInstance> = OnceLock::new();
            CELL.get_or_init(|| tpp_datagen::univ2_ds(UNIV2_SEED))
        }
    }
}

/// The cached trip dataset (instance + itinerary logs) for a city.
pub fn trip_dataset(city: TripCity) -> &'static TripDataset {
    match city {
        TripCity::Nyc => {
            static CELL: OnceLock<TripDataset> = OnceLock::new();
            CELL.get_or_init(|| tpp_datagen::nyc(NYC_SEED))
        }
        TripCity::Paris => {
            static CELL: OnceLock<TripDataset> = OnceLock::new();
            CELL.get_or_init(|| tpp_datagen::paris(PARIS_SEED))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_return_same_instance() {
        let a = course_instance(CourseDataset::DsCt) as *const _;
        let b = course_instance(CourseDataset::DsCt) as *const _;
        assert_eq!(a, b);
        let t = trip_dataset(TripCity::Nyc) as *const _;
        let u = trip_dataset(TripCity::Nyc) as *const _;
        assert_eq!(t, u);
    }

    #[test]
    fn labels_and_sizes() {
        assert_eq!(course_instance(CourseDataset::Univ2).catalog.len(), 36);
        assert_eq!(trip_dataset(TripCity::Paris).instance.catalog.len(), 114);
        assert_eq!(CourseDataset::DsCt.label(), "Univ-1 DS-CT");
        assert_eq!(TripCity::Nyc.label(), "NYC");
    }
}
