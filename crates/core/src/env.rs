//! The TPP CMDP environment (§III-A).
//!
//! States are items of the complete item graph `G`; an action adds one
//! item; transitions are deterministic. Course episodes run to the fixed
//! horizon `H = #primary + #secondary` (equivalently `#cr / cr^m` for
//! uniform credits); trip episodes additionally enforce the visit-time
//! budget, the distance threshold `d`, and the no-consecutive-theme gap
//! as *action validity*, so the learner only ever explores feasible
//! itineraries.

use crate::params::{PlannerParams, ShortlistMode};
use crate::reward::{RewardModel, SimTracker};
use std::cell::{Cell, RefCell};
use tpp_geo::{haversine_km, DistanceMatrix, GeoPoint, GridIndex};
use tpp_model::{ItemId, ItemKind, Plan, PlanningInstance, TopicVector};
use tpp_rl::{Environment, StepOutcome, DENSE_AUTO_MAX};

/// Float tolerance on the `#cr` budget boundary, shared by the
/// admission gate and the course termination check so the two can never
/// disagree about the boundary: an item is admitted iff
/// `elapsed + cr^m ≤ #cr + ε`, so `elapsed_hours` can never exceed
/// `#cr` by more than accumulated float error, and a course episode is
/// over once `elapsed ≥ #cr − ε`.
const CREDIT_EPS: f64 = 1e-9;

/// Why the constraint gate rejected a candidate action (§III-A's action
/// validity: only feasible items are explorable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateReject {
    /// The `#cr` budget — course credits, or the trip visit-time limit.
    Credits,
    /// The no-consecutive-same-theme rule (the trip gap constraint).
    ThemeGap,
    /// The trip distance threshold `d`.
    Distance,
}

impl GateReject {
    /// Stable lowercase name, used as the metrics-counter suffix.
    pub fn as_str(self) -> &'static str {
        match self {
            GateReject::Credits => "credits",
            GateReject::ThemeGap => "theme_gap",
            GateReject::Distance => "distance",
        }
    }
}

/// Constraint-gate tallies accumulated across [`Environment::valid_actions`]
/// calls: how many candidate actions were checked and how many each hard
/// constraint rejected. Drained by the training loop into the global
/// metrics registry (`gate.checked`, `gate.reject.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// Unvisited candidates examined by the gate.
    pub checked: u64,
    /// Rejections by the `#cr` budget.
    pub credits: u64,
    /// Rejections by the no-consecutive-same-theme rule.
    pub theme_gap: u64,
    /// Rejections by the distance threshold.
    pub distance: u64,
}

impl GateCounts {
    fn bump(&mut self, reason: GateReject) {
        match reason {
            GateReject::Credits => self.credits += 1,
            GateReject::ThemeGap => self.theme_gap += 1,
            GateReject::Distance => self.distance += 1,
        }
    }

    /// Total rejections across every constraint.
    pub fn rejected(&self) -> u64 {
        self.credits + self.theme_gap + self.distance
    }
}

/// Precomputed distance structure for trip instances (§III-A's
/// distance gate probes one leg per unvisited candidate per step).
#[derive(Debug, Clone)]
enum DistCache {
    /// No geometry: course instances, POI-less items (rejected by
    /// [`PlanningInstance::validate`]), or the naive benchmark path.
    Direct,
    /// The full catalog matrix, built once in [`TppEnv::new`] for
    /// catalogs under [`DistanceMatrix::DEFAULT_CAP`] items.
    Matrix(DistanceMatrix),
    /// Over-cap fallback: one on-demand row ([`tpp_geo::LazyRowCache`]),
    /// rebuilt only when the current item changes (once per step, not
    /// once per candidate — the cache's rebuild counter proves it).
    /// `RefCell` because the gate runs under `&self`; the env is
    /// single-threaded per experiment run.
    Lazy {
        points: Vec<GeoPoint>,
        row: RefCell<tpp_geo::LazyRowCache>,
    },
}

/// Grid-pruned candidate shortlisting for city-scale trip catalogs:
/// `valid_actions` queries the spatial index for unvisited POIs within
/// `radius_km` of the current item and keeps the first `top_k` that
/// pass the constraint gate (nearest-first), instead of gating all `n`
/// items. A **documented approximation**: exploration is restricted to
/// the geographic neighbourhood of the current item, and an empty
/// shortlist ends the episode early even if a feasible far-away item
/// exists. The full scan stays available as the measured baseline
/// (`ShortlistMode::Off`).
#[derive(Debug, Clone)]
struct Shortlist {
    grid: GridIndex<usize>,
    points: Vec<GeoPoint>,
    radius_km: f64,
    top_k: usize,
}

/// The TPP environment over one planning instance.
#[derive(Debug, Clone)]
pub struct TppEnv<'a> {
    instance: &'a PlanningInstance,
    model: RewardModel,
    horizon: usize,
    // Interior mutability because `valid_actions` takes `&self`; the env
    // is single-threaded per experiment run.
    gates: Cell<GateCounts>,
    /// Distance structure for `leg_km` (trips).
    dist: DistCache,
    /// Grid-pruned action shortlisting (`None` = full scan).
    shortlist: Option<Shortlist>,
    /// `#cr + ε`, precomputed for the admission gate.
    credits_admit_cap: f64,
    /// `#cr − ε`, precomputed for the course termination check.
    credits_done_floor: f64,
    /// Benchmark/equivalence switch: recompute distances and template
    /// similarity from scratch every probe (the pre-incremental hot
    /// path) instead of using the caches. Semantics are identical; only
    /// the work per step differs.
    naive: bool,
    // --- episode state ---
    visited: Vec<bool>,
    positions: Vec<Option<usize>>,
    seq_kinds: Vec<ItemKind>,
    /// Incremental Eq. 6/7 prefix counters, kept in lockstep with
    /// `seq_kinds`.
    sim: SimTracker,
    coverage: TopicVector,
    /// Topics of the current item, cached so the theme gate doesn't
    /// re-index the catalog per candidate.
    cur_topics: TopicVector,
    items: Vec<ItemId>,
    current: usize,
    elapsed_hours: f64,
    travelled_km: f64,
}

impl<'a> TppEnv<'a> {
    /// Builds an environment for `instance` under `params`.
    pub fn new(instance: &'a PlanningInstance, params: &PlannerParams) -> Self {
        let n = instance.catalog.len();
        let model = RewardModel::new(
            instance.soft.ideal_topics.clone(),
            instance.soft.templates.clone(),
            instance.hard.gap,
            params,
            instance.is_trip(),
        );
        let naive = params.naive_hot_path;
        let geo_points = || -> Option<Vec<GeoPoint>> {
            instance
                .catalog
                .items()
                .iter()
                .map(|i| i.poi.map(|p| GeoPoint::new(p.lat, p.lon)))
                .collect()
        };
        let shortlist_wanted = match params.shortlist {
            ShortlistMode::Off => false,
            ShortlistMode::On => true,
            ShortlistMode::Auto => instance.is_trip() && n > DENSE_AUTO_MAX,
        };
        // The shortlist needs full POI geometry; course catalogs (or
        // unvalidated trip catalogs with POI-less items) fall back to
        // the full scan.
        let shortlist = (shortlist_wanted && instance.is_trip())
            .then(geo_points)
            .flatten()
            .and_then(|points| {
                let grid = GridIndex::from_points(points.iter().copied().zip(0..))?;
                Some(Shortlist {
                    grid,
                    points,
                    radius_km: params.shortlist_radius_km,
                    top_k: params.shortlist_top_k.max(1),
                })
            });
        let dist = if instance.is_trip() && !naive {
            match geo_points() {
                // A POI-less item in a trip catalog is rejected by
                // `PlanningInstance::validate`; an unvalidated instance
                // keeps the direct path (and its original panic site).
                None => DistCache::Direct,
                Some(points) => {
                    match DistanceMatrix::build_capped(&points, DistanceMatrix::DEFAULT_CAP) {
                        Some(m) => DistCache::Matrix(m),
                        // Over the matrix cap the per-step choice is a
                        // full O(n) lazy-row rebuild vs one haversine
                        // per probe. With a shortlist only ~top_k legs
                        // are probed per step, so direct evaluation
                        // wins (all three paths delegate to
                        // `haversine_km` and are bit-identical).
                        None if shortlist.is_some() => DistCache::Direct,
                        None => DistCache::Lazy {
                            points,
                            row: RefCell::new(tpp_geo::LazyRowCache::new()),
                        },
                    }
                }
            }
        } else {
            DistCache::Direct
        };
        let sim = model.sim_tracker();
        TppEnv {
            instance,
            model,
            horizon: instance.horizon(),
            gates: Cell::new(GateCounts::default()),
            dist,
            shortlist,
            credits_admit_cap: instance.hard.credits + CREDIT_EPS,
            credits_done_floor: instance.hard.credits - CREDIT_EPS,
            naive,
            visited: vec![false; n],
            positions: vec![None; n],
            seq_kinds: Vec::with_capacity(instance.horizon()),
            sim,
            coverage: instance.catalog.vocabulary().zero_vector(),
            cur_topics: instance.catalog.vocabulary().zero_vector(),
            items: Vec::with_capacity(instance.horizon()),
            current: 0,
            elapsed_hours: 0.0,
            travelled_km: 0.0,
        }
    }

    /// The reward model in use (shared with the EDA baseline).
    pub fn model(&self) -> &RewardModel {
        &self.model
    }

    /// The item sequence accumulated this episode, as a [`Plan`].
    pub fn plan(&self) -> Plan {
        Plan::from_items(self.items.clone())
    }

    /// The plan horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Excludes an item from the rest of the current episode (marks it
    /// visited without seating it). Call after [`Environment::reset`];
    /// used by the feedback loop to honour "not useful" feedback.
    pub fn exclude(&mut self, id: ItemId) {
        if id.index() < self.visited.len() && id.index() != self.current {
            self.visited[id.index()] = true;
        }
    }

    fn leg_km(&self, from: usize, to: usize) -> f64 {
        match &self.dist {
            DistCache::Matrix(m) => m.get(from, to),
            DistCache::Lazy { points, row } => row.borrow_mut().leg(points, from, to),
            DistCache::Direct => {
                let a = self.instance.catalog.items()[from]
                    .poi
                    .expect("trip items carry POI attrs");
                let b = self.instance.catalog.items()[to]
                    .poi
                    .expect("trip items carry POI attrs");
                haversine_km(a.lat, a.lon, b.lat, b.lon)
            }
        }
    }

    /// Course episodes also end once the credit requirement `#cr` is
    /// met (§III-A: `H` is "computed considering #cr and the cr^m of
    /// each course" — with uniform 3-credit courses this coincides with
    /// the `#primary + #secondary` horizon, but variable-credit catalogs
    /// terminate by accumulation).
    fn credits_exhausted(&self) -> bool {
        !self.instance.is_trip() && self.elapsed_hours >= self.credits_done_floor
    }

    /// The action-validity gate: `None` if item `j` may follow the
    /// current state, otherwise the hard constraint that rejects it.
    fn gate(&self, j: usize) -> Option<GateReject> {
        let item = &self.instance.catalog.items()[j];
        // The `#cr` budget — course credits, or the trip visit-time
        // limit. Both families gate admission, so a variable-credit
        // catalog can never admit an item that pushes `elapsed_hours`
        // past `#cr` (beyond the shared float tolerance); see
        // [`CREDIT_EPS`] for the boundary convention.
        if self.elapsed_hours + item.credits > self.credits_admit_cap {
            return Some(GateReject::Credits);
        }
        let Some(trip) = &self.instance.trip else {
            return None;
        };
        if trip.no_consecutive_same_theme && !self.items.is_empty() {
            let cur = if self.naive {
                &self.instance.catalog.items()[self.current].topics
            } else {
                &self.cur_topics
            };
            if cur.intersection_count(&item.topics) > 0 {
                return Some(GateReject::ThemeGap);
            }
        }
        if let Some(max_km) = trip.max_distance_km {
            if !self.items.is_empty()
                && self.travelled_km + self.leg_km(self.current, j) > max_km + 1e-9
            {
                return Some(GateReject::Distance);
            }
        }
        None
    }

    /// Gate tallies accumulated so far (see [`GateCounts`]).
    pub fn gate_counts(&self) -> GateCounts {
        self.gates.get()
    }

    /// Returns the accumulated gate tallies and resets them to zero.
    pub fn take_gate_counts(&self) -> GateCounts {
        self.gates.take()
    }
}

impl Environment for TppEnv<'_> {
    fn n_states(&self) -> usize {
        self.instance.catalog.len()
    }

    fn reset(&mut self, start: usize) {
        let n = self.instance.catalog.len();
        assert!(start < n, "start {start} out of range {n}");
        self.visited.iter_mut().for_each(|v| *v = false);
        self.positions.iter_mut().for_each(|p| *p = None);
        self.seq_kinds.clear();
        self.sim.reset();
        self.items.clear();
        self.coverage = self.instance.catalog.vocabulary().zero_vector();
        self.elapsed_hours = 0.0;
        self.travelled_km = 0.0;
        // Seat the start item as position 0 of the episode.
        let item = &self.instance.catalog.items()[start];
        self.visited[start] = true;
        self.positions[start] = Some(0);
        self.seq_kinds.push(item.kind);
        self.sim.push(item.kind);
        self.coverage.union_with(&item.topics);
        self.cur_topics.clone_from(&item.topics);
        self.items.push(item.id);
        self.elapsed_hours += item.credits;
        self.current = start;
    }

    fn state(&self) -> usize {
        self.current
    }

    fn valid_actions(&self, buf: &mut Vec<usize>) {
        buf.clear();
        if self.items.len() >= self.horizon || self.credits_exhausted() {
            return;
        }
        let mut g = self.gates.get();
        if let Some(sl) = &self.shortlist {
            // Grid-pruned shortlist: gate candidates nearest-first and
            // stop once `top_k` pass, then restore ascending index
            // order so downstream tie-breaking ("lower index wins")
            // keeps its meaning.
            let here = &sl.points[self.current];
            for (_, &j) in sl.grid.within_radius(here, sl.radius_km) {
                if self.visited[j] {
                    continue;
                }
                g.checked += 1;
                match self.gate(j) {
                    None => {
                        buf.push(j);
                        if buf.len() >= sl.top_k {
                            break;
                        }
                    }
                    Some(reason) => g.bump(reason),
                }
            }
            buf.sort_unstable();
        } else {
            for j in 0..self.visited.len() {
                if self.visited[j] {
                    continue;
                }
                g.checked += 1;
                match self.gate(j) {
                    None => buf.push(j),
                    Some(reason) => g.bump(reason),
                }
            }
        }
        self.gates.set(g);
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        debug_assert!(!self.visited[action], "action {action} already visited");
        let reward = self.peek_reward(action);
        let item = &self.instance.catalog.items()[action];
        if self.instance.is_trip() && !self.items.is_empty() {
            self.travelled_km += self.leg_km(self.current, action);
        }
        let pos = self.items.len();
        self.visited[action] = true;
        self.positions[action] = Some(pos);
        self.seq_kinds.push(item.kind);
        self.sim.push(item.kind);
        self.coverage.union_with(&item.topics);
        self.cur_topics.clone_from(&item.topics);
        self.items.push(item.id);
        self.elapsed_hours += item.credits;
        self.current = action;
        StepOutcome {
            next_state: action,
            reward,
            done: self.items.len() >= self.horizon || self.credits_exhausted(),
        }
    }

    fn peek_reward(&self, action: usize) -> f64 {
        let item = &self.instance.catalog.items()[action];
        let positions = &self.positions;
        let pos_of = |id: ItemId| positions[id.index()];
        if self.naive {
            let prev = (!self.items.is_empty() && self.instance.is_trip())
                .then(|| &self.instance.catalog.items()[self.current].topics);
            self.model
                .reward(item, &self.seq_kinds, &self.coverage, &pos_of, prev)
        } else {
            let prev =
                (!self.items.is_empty() && self.instance.is_trip()).then_some(&self.cur_topics);
            self.model
                .reward_incremental(item, &self.sim, &self.coverage, &pos_of, prev)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_model::toy;
    use tpp_model::TripConstraints;

    fn course_instance() -> PlanningInstance {
        PlanningInstance {
            catalog: toy::table2_catalog(),
            hard: toy::table2_hard(),
            soft: toy::table2_soft(),
            trip: None,
            default_start: Some(ItemId(0)),
        }
    }

    fn course_params() -> PlannerParams {
        let mut p = PlannerParams::univ1_defaults();
        p.epsilon = 1.0; // the paper's §III-B1 example threshold
        p
    }

    #[test]
    fn reset_seats_start_item() {
        let inst = course_instance();
        let params = course_params();
        let mut env = TppEnv::new(&inst, &params);
        env.reset(0);
        assert_eq!(env.state(), 0);
        assert_eq!(env.plan().items(), &[ItemId(0)]);
        let mut acts = Vec::new();
        env.valid_actions(&mut acts);
        assert_eq!(acts, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn episode_terminates_at_horizon() {
        let inst = course_instance();
        let params = course_params();
        let mut env = TppEnv::new(&inst, &params);
        env.reset(0);
        let order = [1usize, 3, 4, 5, 2];
        let mut last = StepOutcome {
            next_state: 0,
            reward: 0.0,
            done: false,
        };
        for &a in &order {
            assert!(!last.done);
            last = env.step(a);
        }
        assert!(last.done);
        assert_eq!(env.plan().len(), 6);
        let mut acts = Vec::new();
        env.valid_actions(&mut acts);
        assert!(acts.is_empty());
    }

    #[test]
    fn paper_example_sequence_collects_positive_reward() {
        // m1 → m2 → m4 → m5 → m6 → m3 (§II-B1's exemplar).
        let inst = course_instance();
        let params = course_params();
        let mut env = TppEnv::new(&inst, &params);
        env.reset(0); // m1
        let mut total = 0.0;
        for &a in &[1usize, 3, 4, 5, 2] {
            total += env.step(a).reward;
        }
        assert!(total > 0.0, "exemplar plan should earn reward, got {total}");
    }

    #[test]
    fn peek_reward_matches_step_reward() {
        let inst = course_instance();
        let params = course_params();
        let mut env = TppEnv::new(&inst, &params);
        env.reset(0);
        let peek = env.peek_reward(1);
        let got = env.step(1).reward;
        assert_eq!(peek, got);
    }

    #[test]
    fn prereq_gated_reward_is_zero_in_env() {
        // m5 (Big Data) straight after m1: neither m2 nor m3 present.
        let inst = course_instance();
        let params = course_params();
        let mut env = TppEnv::new(&inst, &params);
        env.reset(0);
        assert_eq!(env.peek_reward(4), 0.0);
    }

    fn trip_instance() -> PlanningInstance {
        PlanningInstance {
            catalog: toy::paris_toy_catalog(),
            hard: toy::paris_toy_hard(),
            soft: toy::paris_toy_soft(),
            trip: Some(TripConstraints {
                max_distance_km: Some(20.0),
                no_consecutive_same_theme: true,
            }),
            default_start: Some(ItemId(1)),
        }
    }

    #[test]
    fn trip_budget_limits_actions() {
        let inst = trip_instance();
        let params = PlannerParams::trip_defaults();
        let mut env = TppEnv::new(&inst, &params);
        env.reset(1); // Louvre, 2.5h of the 6h budget
        let mut acts = Vec::new();
        env.valid_actions(&mut acts);
        // Musée d'Orsay (2.0h) shares Museum/Art Gallery themes with the
        // Louvre → blocked by the no-consecutive-theme rule.
        assert!(!acts.contains(&4));
        // Eiffel Tower shares Architecture with the Louvre → blocked too.
        assert!(!acts.contains(&0));
        // Pantheon shares Architecture → blocked; Seine (River) fine.
        assert!(acts.contains(&7));
    }

    #[test]
    fn trip_time_budget_excludes_overflow() {
        let inst = trip_instance();
        let params = PlannerParams::trip_defaults();
        let mut env = TppEnv::new(&inst, &params);
        env.reset(1); // 2.5h used
        env.step(7); // Seine 0.5h → 3h used
        env.step(2); // Pantheon 1h → 4h
        env.step(3); // Rue des Martyrs 0.5h → 4.5h
        let mut acts = Vec::new();
        env.valid_actions(&mut acts);
        // Musée d'Orsay needs 2h: 6.5 > 6 → excluded.
        assert!(!acts.contains(&4), "{acts:?}");
        // Le Cinq needs 1.5h: exactly 6 → allowed.
        assert!(acts.contains(&8), "{acts:?}");
    }

    #[test]
    fn trip_distance_threshold_excludes_far_pois() {
        let mut inst = trip_instance();
        inst.trip = Some(TripConstraints {
            max_distance_km: Some(1.0),
            no_consecutive_same_theme: false,
        });
        let params = PlannerParams::trip_defaults();
        let mut env = TppEnv::new(&inst, &params);
        env.reset(1); // Louvre
        let mut acts = Vec::new();
        env.valid_actions(&mut acts);
        // Eiffel Tower is ~3.2 km from the Louvre → excluded.
        assert!(!acts.contains(&0), "{acts:?}");
        // Musée d'Orsay is ~0.8 km → allowed.
        assert!(acts.contains(&4), "{acts:?}");
    }

    #[test]
    fn variable_credit_courses_terminate_by_accumulation() {
        // A catalog with 4-credit courses and #cr = 12 finishes after 3
        // courses even though the primary/secondary horizon allows 6.
        use tpp_model::CatalogBuilder;
        let catalog = {
            let mut b =
                CatalogBuilder::new("var-credits").topics(["t0", "t1", "t2", "t3", "t4", "t5"]);
            for i in 0..6 {
                let kind = if i < 3 {
                    tpp_model::ItemKind::Primary
                } else {
                    tpp_model::ItemKind::Secondary
                };
                let names = ["t0", "t1", "t2", "t3", "t4", "t5"];
                b = b.course(
                    format!("C{i}"),
                    format!("Course {i}"),
                    kind,
                    4.0,
                    &[names[i]],
                );
            }
            b.build().unwrap()
        };
        let hard = tpp_model::HardConstraints {
            credits: 12.0,
            n_primary: 3,
            n_secondary: 3,
            gap: 1,
        };
        let soft = tpp_model::SoftConstraints::new(
            tpp_model::TopicVector::ones(6),
            tpp_model::TemplateSet::from_strs(&["PSPSPS", "PPPSSS"]).unwrap(),
            &hard,
        )
        .unwrap();
        let inst = PlanningInstance {
            catalog,
            hard,
            soft,
            trip: None,
            default_start: Some(ItemId(0)),
        };
        let mut params = PlannerParams::univ1_defaults();
        params.epsilon = 0.0;
        let mut env = TppEnv::new(&inst, &params);
        env.reset(0); // 4 credits
        let out = env.step(3); // 8 credits
        assert!(!out.done);
        let out = env.step(1); // 12 credits: requirement met
        assert!(out.done, "episode must end once #cr is accumulated");
        let mut acts = Vec::new();
        env.valid_actions(&mut acts);
        assert!(acts.is_empty());
    }

    /// A course catalog with non-uniform credits: three 4-credit and
    /// three 2-credit courses under `#cr = 10`.
    fn mixed_credit_instance() -> PlanningInstance {
        use tpp_model::CatalogBuilder;
        let names = ["t0", "t1", "t2", "t3", "t4", "t5"];
        let mut b = CatalogBuilder::new("mixed-credits").topics(names);
        for (i, name) in names.iter().enumerate() {
            let kind = if i < 3 {
                tpp_model::ItemKind::Primary
            } else {
                tpp_model::ItemKind::Secondary
            };
            let credits = if i < 3 { 4.0 } else { 2.0 };
            b = b.course(
                format!("C{i}"),
                format!("Course {i}"),
                kind,
                credits,
                &[*name],
            );
        }
        let hard = tpp_model::HardConstraints {
            credits: 10.0,
            n_primary: 3,
            n_secondary: 3,
            gap: 1,
        };
        let soft = tpp_model::SoftConstraints::new(
            tpp_model::TopicVector::ones(6),
            tpp_model::TemplateSet::from_strs(&["PSPSPS", "PPPSSS"]).unwrap(),
            &hard,
        )
        .unwrap();
        PlanningInstance {
            catalog: b.build().unwrap(),
            hard,
            soft,
            trip: None,
            default_start: Some(ItemId(0)),
        }
    }

    #[test]
    fn course_gate_rejects_credit_overshoot() {
        // Regression for the asymmetric-epsilon audit: pre-fix, course
        // instances had no admission gate at all, so a 4-credit course
        // could be seated at 8/10 credits and push `elapsed_hours` to 12.
        let inst = mixed_credit_instance();
        let mut params = PlannerParams::univ1_defaults();
        params.epsilon = 0.0;
        let mut env = TppEnv::new(&inst, &params);
        env.reset(0); // C0: 4 credits
        env.step(1); // C1: 8 of 10 credits
        let mut acts = Vec::new();
        env.valid_actions(&mut acts);
        // C2 (4 credits) would overshoot to 12 > 10 → rejected; the
        // 2-credit electives fit exactly.
        assert!(!acts.contains(&2), "{acts:?}");
        assert_eq!(acts, vec![3, 4, 5]);
        assert!(env.gate_counts().credits > 0);
        // Seat an exact-fit item: elapsed lands on #cr, never past it.
        let out = env.step(3);
        assert!(out.done, "10/10 credits must terminate the episode");
        assert!(env.elapsed_hours <= inst.hard.credits + 1e-9);
    }

    #[test]
    fn course_gate_admits_exact_credit_fit() {
        // The boundary convention: `elapsed + cr^m ≤ #cr + ε` admits an
        // exact fit (and tolerates accumulated float error), mirroring
        // the trip gate's treatment of `Le Cinq` at exactly 6 h.
        let inst = mixed_credit_instance();
        let mut params = PlannerParams::univ1_defaults();
        params.epsilon = 0.0;
        let mut env = TppEnv::new(&inst, &params);
        env.reset(0); // 4
        env.step(1); // 8
        let mut acts = Vec::new();
        env.valid_actions(&mut acts);
        assert!(acts.contains(&5), "2-credit exact fit must be admitted");
    }

    #[test]
    fn trip_admission_never_pushes_elapsed_past_budget() {
        // Walk every greedy-feasible trip trajectory prefix and check the
        // invariant the gate promises: elapsed ≤ #cr + ε at all times.
        let inst = trip_instance();
        let params = PlannerParams::trip_defaults();
        let mut env = TppEnv::new(&inst, &params);
        for start in [0usize, 1, 5] {
            env.reset(start);
            let mut acts = Vec::new();
            loop {
                env.valid_actions(&mut acts);
                let Some(&a) = acts.first() else { break };
                assert!(env.elapsed_hours <= inst.hard.credits + 1e-9);
                if env.step(a).done {
                    break;
                }
            }
            assert!(
                env.elapsed_hours <= inst.hard.credits + 1e-9,
                "start {start}: elapsed {} > budget {}",
                env.elapsed_hours,
                inst.hard.credits
            );
        }
    }

    #[test]
    fn naive_and_incremental_paths_agree_on_toy_instances() {
        // Lockstep walk of both engines over course and trip toys: same
        // valid sets, bit-identical rewards at every step.
        for inst in [course_instance(), trip_instance()] {
            let params = if inst.is_trip() {
                PlannerParams::trip_defaults()
            } else {
                course_params()
            };
            let naive_params = params.clone().with_naive_hot_path(true);
            let mut fast = TppEnv::new(&inst, &params);
            let mut naive = TppEnv::new(&inst, &naive_params);
            fast.reset(0);
            naive.reset(0);
            let (mut fa, mut na) = (Vec::new(), Vec::new());
            loop {
                fast.valid_actions(&mut fa);
                naive.valid_actions(&mut na);
                assert_eq!(fa, na);
                let Some(&a) = fa.first() else { break };
                for &cand in &fa {
                    assert_eq!(
                        fast.peek_reward(cand).to_bits(),
                        naive.peek_reward(cand).to_bits(),
                        "candidate {cand} in {:?}",
                        inst.catalog.name()
                    );
                }
                let fo = fast.step(a);
                let no = naive.step(a);
                assert_eq!(fo.reward.to_bits(), no.reward.to_bits());
                assert_eq!(fo.done, no.done);
                if fo.done {
                    break;
                }
            }
        }
    }

    #[test]
    fn gate_counts_attribute_rejections_to_constraints() {
        let inst = trip_instance();
        let params = PlannerParams::trip_defaults();
        let mut env = TppEnv::new(&inst, &params);
        env.reset(1); // Louvre
        let mut acts = Vec::new();
        env.valid_actions(&mut acts);
        let g = env.take_gate_counts();
        // Every unvisited item was examined exactly once.
        assert_eq!(g.checked, (inst.catalog.len() - 1) as u64);
        assert_eq!(g.checked, acts.len() as u64 + g.rejected());
        // The Louvre's neighbours share Museum/Art/Architecture themes →
        // the theme-gap rule fires (see trip_budget_limits_actions).
        assert!(g.theme_gap > 0, "{g:?}");
        // take drains the tallies.
        assert_eq!(env.gate_counts(), GateCounts::default());
        // A 1 km distance cap makes the distance gate fire too.
        let mut inst2 = trip_instance();
        inst2.trip = Some(TripConstraints {
            max_distance_km: Some(1.0),
            no_consecutive_same_theme: false,
        });
        let mut env2 = TppEnv::new(&inst2, &params);
        env2.reset(1);
        env2.valid_actions(&mut acts);
        assert!(env2.gate_counts().distance > 0);
        // Course instances gate nothing per-action.
        let course = course_instance();
        let cparams = course_params();
        let mut cenv = TppEnv::new(&course, &cparams);
        cenv.reset(0);
        cenv.valid_actions(&mut acts);
        let cg = cenv.gate_counts();
        assert_eq!(cg.rejected(), 0);
        assert_eq!(cg.checked, acts.len() as u64);
    }

    #[test]
    fn trip_restaurant_reward_respects_antecedent() {
        let inst = trip_instance();
        let mut params = PlannerParams::trip_defaults();
        params.epsilon = 1.0;
        let mut env = TppEnv::new(&inst, &params);
        // Start at Eiffel (no museum visited): Le Cinq gets reward 0.
        env.reset(0);
        assert_eq!(env.peek_reward(8), 0.0);
        // Start at the Louvre: Le Cinq's antecedent holds → positive.
        env.reset(1);
        assert!(env.peek_reward(8) > 0.0);
    }
}
