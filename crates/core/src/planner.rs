//! RL-Planner: Algorithm 1 — learn a policy with SARSA, recommend plans
//! by greedy Q-table traversal.

use crate::env::TppEnv;
use crate::params::{PlannerParams, QReprMode, StartPolicy};
use std::time::Instant;
use tpp_model::{ItemId, Plan, PlanningInstance};
use tpp_obs::{obs_event, Level};
use tpp_rl::{Budget, Environment, QTable, TrainCheckpoint, TrainRng, TrainStats, VisitTable};

/// A learned policy: the Q-table plus the universe it indexes.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedPolicy {
    /// The `|I| × |I|` action-value table.
    pub q: QTable,
    /// Name of the catalog the table indexes (sanity check on reuse).
    pub catalog_name: String,
}

/// The RL-Planner facade.
#[derive(Debug, Clone, Copy, Default)]
pub struct RlPlanner;

/// Algorithm 1's behaviour policy: with probability `explore` a uniform
/// random valid action; otherwise `argmax R(s, ·)` over the valid set
/// (lines 4 and 9 of the pseudo-code select by *immediate reward*, which
/// is what keeps training trajectories feasible — the Eq. 2 gate zeroes
/// every constraint-violating action). Reward ties break by higher Q,
/// then uniformly at random.
fn select_action(
    env: &TppEnv<'_>,
    q: &QTable,
    visits: &VisitTable,
    allowed: &[usize],
    explore: f64,
    rng: &mut TrainRng,
) -> usize {
    debug_assert!(!allowed.is_empty());
    if rng.next_f64() < explore {
        return allowed[rng.index(allowed.len())];
    }
    let s = env.state();
    let mut best: Vec<usize> = Vec::new();
    let mut best_key = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &a in allowed {
        let key = (env.peek_reward(a), q.get(s, a));
        if key.0 > best_key.0 + 1e-12
            || ((key.0 - best_key.0).abs() <= 1e-12 && key.1 > best_key.1 + 1e-12)
        {
            best_key = key;
            best.clear();
            best.push(a);
        } else if (key.0 - best_key.0).abs() <= 1e-12 && (key.1 - best_key.1).abs() <= 1e-12 {
            best.push(a);
        }
    }
    // Full (reward, Q) ties break toward the least-visited pair: the
    // systematic version of the paper's "one will be picked at random",
    // ensuring "extensive training" actually covers every tie member.
    let min_visits = best
        .iter()
        .map(|&a| visits.get(s, a))
        .min()
        .expect("non-empty");
    let least: Vec<usize> = best
        .iter()
        .copied()
        .filter(|&a| visits.get(s, a) == min_visits)
        .collect();
    least[rng.index(least.len())]
}

impl RlPlanner {
    /// Learns a policy on `instance` under `params` (Algorithm 1, lines
    /// 1–14): reward-greedy behaviour with scheduled ε exploration,
    /// on-policy SARSA updates (Eq. 9). Deterministic in `seed`.
    pub fn learn(
        instance: &PlanningInstance,
        params: &PlannerParams,
        seed: u64,
    ) -> (LearnedPolicy, TrainStats) {
        Self::learn_checkpointed(instance, params, seed, None, 0, |_| Ok(()))
            .expect("checkpointing disabled; the sink cannot fail")
    }

    /// [`learn`](Self::learn) with crash-safe checkpointing: every
    /// `checkpoint_every` completed episodes (0 disables) the full
    /// training state — Q-table, visit counts, RNG words, returns — is
    /// handed to `on_checkpoint` for persistence, and `resume` restores
    /// such a snapshot so the continued run is **bit-identical** to one
    /// that never stopped. A sink error aborts training (the caller
    /// asked for durability it is no longer getting).
    ///
    /// Errors on a `resume` snapshot whose shape does not match
    /// `instance`/`params` (wrong catalog size, more episodes than the
    /// target) rather than silently training on mismatched state.
    pub fn learn_checkpointed<C>(
        instance: &PlanningInstance,
        params: &PlannerParams,
        seed: u64,
        resume: Option<&TrainCheckpoint>,
        checkpoint_every: usize,
        on_checkpoint: C,
    ) -> Result<(LearnedPolicy, TrainStats), String>
    where
        C: FnMut(&TrainCheckpoint) -> Result<(), String>,
    {
        Self::learn_budgeted(
            instance,
            params,
            seed,
            resume,
            checkpoint_every,
            &Budget::unlimited(),
            on_checkpoint,
        )
    }

    /// [`learn_checkpointed`](Self::learn_checkpointed) under a
    /// cooperative [`Budget`]: the budget is evaluated at every episode
    /// boundary (with per-step work charged toward any step limit), and
    /// an exhausted budget stops training **cleanly between episodes** —
    /// the returned policy and stats reflect exactly the episodes that
    /// completed, so `stats.episodes() < params.episodes` is the
    /// early-stop signal. Episode/step limits stop deterministically;
    /// the wall-clock deadline is the serving layer's stall guard.
    #[allow(clippy::too_many_arguments)]
    pub fn learn_budgeted<C>(
        instance: &PlanningInstance,
        params: &PlannerParams,
        seed: u64,
        resume: Option<&TrainCheckpoint>,
        checkpoint_every: usize,
        budget: &Budget,
        mut on_checkpoint: C,
    ) -> Result<(LearnedPolicy, TrainStats), String>
    where
        C: FnMut(&TrainCheckpoint) -> Result<(), String>,
    {
        params.validate().expect("invalid planner parameters");
        let n = instance.catalog.len();
        let (mut q, mut rng, start_episode, mut visits, mut stats) = match resume {
            Some(ckpt) => {
                if ckpt.q.n_states() != n || ckpt.q.n_actions() != n {
                    return Err(format!(
                        "checkpoint Q-table is {}x{} but catalog {:?} has {n} items",
                        ckpt.q.n_states(),
                        ckpt.q.n_actions(),
                        instance.catalog.name(),
                    ));
                }
                if ckpt.episode as usize > params.episodes {
                    return Err(format!(
                        "checkpoint has {} completed episodes but the target is {}",
                        ckpt.episode, params.episodes,
                    ));
                }
                if !ckpt.visits.is_empty()
                    && (ckpt.visits.n_states() != n || ckpt.visits.n_actions() != n)
                {
                    return Err(format!(
                        "checkpoint visit table is {}x{}, expected {n}x{n}",
                        ckpt.visits.n_states(),
                        ckpt.visits.n_actions(),
                    ));
                }
                let visits = if ckpt.visits.is_empty() {
                    // Mirror the checkpoint Q-table's representation so
                    // a resumed sparse run stays allocation-free.
                    if ckpt.q.is_sparse() {
                        VisitTable::sparse(n, n)
                    } else {
                        VisitTable::dense(n, n)
                    }
                } else {
                    ckpt.visits.clone()
                };
                (
                    ckpt.q.clone(),
                    TrainRng::from_state(ckpt.rng_state),
                    ckpt.episode as usize,
                    visits,
                    ckpt.stats(),
                )
            }
            None => {
                // The representation knob: Auto keeps seed-sized
                // catalogs dense (bit-identical to the pre-sparse
                // engine) and goes sparse at city scale; an explicit
                // Dense request on an oversized catalog is a typed
                // error, not an `n²` allocation.
                let (q, visits) = match params.q_repr {
                    QReprMode::Auto => (QTable::for_catalog(n), VisitTable::for_catalog(n)),
                    QReprMode::Sparse => (QTable::sparse(n, n), VisitTable::sparse(n, n)),
                    QReprMode::Dense => {
                        let q = QTable::try_zeros(n, n).map_err(|e| e.to_string())?;
                        (q, VisitTable::dense(n, n))
                    }
                };
                (
                    q,
                    TrainRng::seed_from_u64(seed),
                    0,
                    visits,
                    TrainStats::with_capacity(params.episodes),
                )
            }
        };
        let mut span = tpp_obs::span(Level::Info, "train.session")
            .with("catalog", instance.catalog.name())
            .with("episodes", params.episodes)
            .with("seed", seed)
            .with("resumed_at", start_episode);
        let mut env = TppEnv::new(instance, params);
        let primaries: Vec<usize> = instance
            .catalog
            .items()
            .iter()
            .filter(|i| i.is_primary())
            .map(|i| i.id.index())
            .collect();
        let mut actions = Vec::with_capacity(n);
        // Valid-action-set sizes are tallied locally (sizes are bounded
        // by |I|) and flushed to the shared histogram once per session:
        // ten seeds train in parallel, and per-step updates of shared
        // atomics cost measurable cache-line contention.
        let mut va_sizes = vec![0u64; n + 1];
        // Emits a snapshot after `episode` finished, when due. Cloning
        // the training state is the price of handing the sink an
        // immutable snapshot while the loop keeps mutating its own.
        let mut maybe_checkpoint = |episode: usize,
                                    q: &QTable,
                                    rng: &TrainRng,
                                    visits: &VisitTable,
                                    stats: &TrainStats|
         -> Result<(), String> {
            let done = episode + 1;
            if checkpoint_every == 0 || done % checkpoint_every != 0 {
                return Ok(());
            }
            on_checkpoint(&TrainCheckpoint {
                q: q.clone(),
                episode: done as u64,
                sched_pos: done as u64,
                rng_state: rng.state(),
                visits: visits.clone(),
                returns: stats.returns().to_vec(),
            })
        };
        for episode in start_episode..params.episodes {
            if let Some(stop) = budget.check_episode() {
                obs_event!(
                    Level::Warn,
                    "train.budget_expired",
                    episode = episode,
                    target = params.episodes,
                    reason = stop.as_str(),
                );
                span.record("budget_stop", stop.as_str());
                break;
            }
            let ep_started = tpp_obs::enabled(Level::Debug).then(Instant::now);
            let explore = params.exploration.at(episode);
            let start = match params.start {
                StartPolicy::Fixed(id) => id.index(),
                StartPolicy::Random => rng.index(n),
                StartPolicy::RandomPrimary => {
                    if primaries.is_empty() {
                        rng.index(n)
                    } else {
                        primaries[rng.index(primaries.len())]
                    }
                }
            };
            env.reset(start);
            let mut ep_return = 0.0;
            let mut s = env.state();
            env.valid_actions(&mut actions);
            va_sizes[actions.len()] += 1;
            if actions.is_empty() {
                stats.push(0.0);
                obs_event!(
                    Level::Debug,
                    "train.episode",
                    episode = episode,
                    epsilon = explore,
                    ep_return = 0.0,
                    steps = 0usize,
                );
                maybe_checkpoint(episode, &q, &rng, &visits, &stats)?;
                continue;
            }
            let mut a = select_action(&env, &q, &visits, &actions, explore, &mut rng);
            // Eligibility traces (SARSA(λ)): a TPP episode never repeats
            // a state-action pair, so the trace is simply the visited
            // pairs with geometrically decaying weights. Traces are what
            // lets the reward a core course earns late in an episode
            // reach the early decision that scheduled its antecedent.
            let mut trace: Vec<(usize, usize, f64)> = Vec::with_capacity(env.horizon());
            let mut max_td: f64 = 0.0;
            loop {
                budget.note_step();
                let out = env.step(a);
                ep_return += out.reward;
                visits.bump(s, a);
                trace.push((s, a, 1.0));
                let (done, td_error) = if out.done {
                    (true, out.reward - q.get(s, a))
                } else {
                    env.valid_actions(&mut actions);
                    va_sizes[actions.len()] += 1;
                    if actions.is_empty() {
                        (true, out.reward - q.get(s, a))
                    } else {
                        let a_next = select_action(&env, &q, &visits, &actions, explore, &mut rng);
                        let delta =
                            out.reward + params.gamma * q.get(out.next_state, a_next) - q.get(s, a);
                        s = out.next_state;
                        a = a_next;
                        (false, delta)
                    }
                };
                max_td = max_td.max(td_error.abs());
                for (ts, ta, e) in &mut trace {
                    let v = q.get(*ts, *ta);
                    q.set(*ts, *ta, v + params.alpha * td_error * *e);
                    *e *= params.gamma * params.lambda;
                }
                if done {
                    break;
                }
            }
            stats.push(ep_return);
            if let Some(t0) = ep_started {
                obs_event!(
                    Level::Debug,
                    "train.episode",
                    episode = episode,
                    epsilon = explore,
                    ep_return = ep_return,
                    steps = trace.len(),
                    max_td_error = max_td,
                    max_q_delta = params.alpha * max_td,
                    duration_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
                );
            }
            maybe_checkpoint(episode, &q, &rng, &visits, &stats)?;
        }
        let gates = env.take_gate_counts();
        let m = tpp_obs::metrics();
        let va_hist = m.histogram("env.valid_actions");
        for (size, &count) in va_sizes.iter().enumerate() {
            va_hist.record_n(size as u64, count);
        }
        m.counter("gate.checked").add(gates.checked);
        m.counter("gate.reject.credits").add(gates.credits);
        m.counter("gate.reject.theme_gap").add(gates.theme_gap);
        m.counter("gate.reject.distance").add(gates.distance);
        let summary = stats.summary();
        span.record("mean_return", summary.mean);
        span.record("p50_return", summary.p50);
        span.record("p95_return", summary.p95);
        span.record("gate_checked", gates.checked);
        span.record("gate_rejected", gates.rejected());
        Ok((
            LearnedPolicy {
                q,
                catalog_name: instance.catalog.name().to_owned(),
            },
            stats,
        ))
    }

    /// Recommends a plan by greedy Q-table traversal from `start`
    /// (Algorithm 1, lines 15–24). The environment enforces action
    /// validity (unvisited items; trip budgets), so the walk is exactly
    /// "argmax Q over the remaining items" until `H` items are placed.
    /// Q ties (e.g. rows the training runs never reached) break by
    /// immediate reward, then by lower index for determinism.
    pub fn recommend(
        policy: &LearnedPolicy,
        instance: &PlanningInstance,
        params: &PlannerParams,
        start: ItemId,
    ) -> Plan {
        assert_eq!(
            policy.catalog_name,
            instance.catalog.name(),
            "policy was learned on a different catalog; transfer it first"
        );
        Self::recommend_with_q(&policy.q, instance, params, start)
    }

    /// Recommends with a bare Q-table (used after transfer, where the
    /// table was learned elsewhere and transported into this universe).
    pub fn recommend_with_q(
        q: &QTable,
        instance: &PlanningInstance,
        params: &PlannerParams,
        start: ItemId,
    ) -> Plan {
        Self::recommend_with_exclusions(q, instance, params, start, &[])
    }

    /// Recommends while excluding `banned` items entirely — the feedback
    /// loop's "not useful" items (§VI's future-work extension).
    pub fn recommend_with_exclusions(
        q: &QTable,
        instance: &PlanningInstance,
        params: &PlannerParams,
        start: ItemId,
        banned: &[ItemId],
    ) -> Plan {
        let mut span = tpp_obs::span(Level::Debug, "plan.recommend")
            .with("catalog", instance.catalog.name())
            .with("start", start.index())
            .with("banned", banned.len());
        let mut env = TppEnv::new(instance, params);
        env.reset(start.index());
        for &b in banned {
            env.exclude(b);
        }
        let mut actions = Vec::with_capacity(instance.catalog.len());
        loop {
            let s = env.state();
            env.valid_actions(&mut actions);
            if actions.is_empty() {
                break;
            }
            // SARSA is on-policy: the Q-table evaluates the reward-greedy
            // behaviour policy of Algorithm 1's training loop, so the
            // recommendation executes that same policy with exploration
            // off — immediate reward first (the Eq. 2 gate zeroes every
            // constraint-violating action, which is what makes Theorem 1
            // hold operationally), learned Q value as the tie-breaker.
            // Reward ties are exactly where learning shows: EDA resolves
            // them blindly, RL-Planner with the long-horizon signal
            // (keep prerequisite chains schedulable; don't strand the
            // itinerary away from high-value continuations). Lower index
            // breaks exact (reward, Q) ties for determinism.
            // total_cmp keeps the argmax panic-free when a corrupt or
            // adversarial checkpoint smuggles a NaN into Q: the pick
            // degrades deterministically instead of killing the worker.
            let best = actions
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    env.peek_reward(a)
                        .total_cmp(&env.peek_reward(b))
                        .then_with(|| q.get(s, a).total_cmp(&q.get(s, b)))
                        .then(b.cmp(&a))
                })
                .expect("actions is non-empty");
            if env.step(best).done {
                break;
            }
        }
        let plan = env.plan();
        span.record("plan_len", plan.len());
        plan
    }

    /// Learn-then-recommend convenience: returns the plan from the
    /// instance's default start (or item 0).
    pub fn plan(instance: &PlanningInstance, params: &PlannerParams, seed: u64) -> Plan {
        let (policy, _) = Self::learn(instance, params, seed);
        let start = instance.default_start.unwrap_or(ItemId(0));
        Self::recommend(&policy, instance, params, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SimAggregate;
    use tpp_model::toy;
    use tpp_model::validate_plan;

    fn toy_instance() -> PlanningInstance {
        PlanningInstance {
            catalog: toy::table2_catalog(),
            hard: toy::table2_hard(),
            soft: toy::table2_soft(),
            trip: None,
            default_start: Some(ItemId(0)),
        }
    }

    fn toy_params() -> PlannerParams {
        let mut p = PlannerParams::univ1_defaults();
        p.epsilon = 0.0; // the toy ideal vector is sparse; don't gate
        p.episodes = 300;
        p
    }

    #[test]
    fn learns_and_recommends_full_length_plan() {
        let inst = toy_instance();
        let params = toy_params();
        let (policy, stats) = RlPlanner::learn(&inst, &params, 7);
        assert_eq!(stats.episodes(), 300);
        assert_eq!(policy.q.n_states(), 6);
        let plan = RlPlanner::recommend(&policy, &inst, &params, ItemId(0));
        assert_eq!(plan.len(), 6);
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for &id in plan.items() {
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn learned_plan_satisfies_hard_constraints() {
        // With enough episodes the toy instance is solved exactly: the
        // recommended plan passes every hard constraint.
        let inst = toy_instance();
        let mut params = toy_params();
        params.episodes = 800;
        let (policy, _) = RlPlanner::learn(&inst, &params, 11);
        let plan = RlPlanner::recommend(&policy, &inst, &params, ItemId(0));
        let violations = validate_plan(&plan, &inst.catalog, &inst.hard);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn deterministic_in_seed() {
        let inst = toy_instance();
        let params = toy_params();
        let (p1, _) = RlPlanner::learn(&inst, &params, 5);
        let (p2, _) = RlPlanner::learn(&inst, &params, 5);
        assert_eq!(p1.q, p2.q);
    }

    #[test]
    fn min_similarity_variant_runs() {
        let inst = toy_instance();
        let params = toy_params().with_sim(SimAggregate::Minimum);
        let plan = RlPlanner::plan(&inst, &params, 3);
        assert_eq!(plan.len(), 6);
    }

    #[test]
    fn fixed_start_policy_used_in_training() {
        let inst = toy_instance();
        let params = toy_params().with_start(ItemId(2));
        let (policy, _) = RlPlanner::learn(&inst, &params, 9);
        let plan = RlPlanner::recommend(&policy, &inst, &params, ItemId(2));
        assert_eq!(plan.items()[0], ItemId(2));
    }

    #[test]
    fn checkpoints_fire_on_schedule_and_carry_progress() {
        let inst = toy_instance();
        let mut params = toy_params();
        params.episodes = 100;
        let mut seen: Vec<u64> = Vec::new();
        let (_, stats) = RlPlanner::learn_checkpointed(&inst, &params, 3, None, 25, |ckpt| {
            assert_eq!(ckpt.returns.len() as u64, ckpt.episode);
            assert_eq!((ckpt.visits.n_states(), ckpt.visits.n_actions()), (6, 6));
            seen.push(ckpt.episode);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![25, 50, 75, 100]);
        assert_eq!(stats.episodes(), 100);
    }

    #[test]
    fn interrupted_plus_resumed_is_bit_identical() {
        let inst = toy_instance();
        let params = toy_params();
        let (full, full_stats) = RlPlanner::learn(&inst, &params, 17);

        // Capture the state mid-run, then "crash": train a fresh run
        // that resumes from the snapshot.
        let mut snapshot = None;
        RlPlanner::learn_checkpointed(&inst, &params, 17, None, 150, |ckpt| {
            if snapshot.is_none() {
                snapshot = Some(ckpt.clone());
            }
            Ok(())
        })
        .unwrap();
        let snapshot = snapshot.expect("one checkpoint at episode 150");
        assert_eq!(snapshot.episode, 150);
        let (resumed, resumed_stats) =
            RlPlanner::learn_checkpointed(&inst, &params, 17, Some(&snapshot), 0, |_| Ok(()))
                .unwrap();

        assert_eq!(full.q.values(), resumed.q.values());
        assert_eq!(full_stats.returns(), resumed_stats.returns());
    }

    #[test]
    fn budget_stops_mid_training_deterministically() {
        let inst = toy_instance();
        let mut params = toy_params();
        params.episodes = 200;
        // An episode budget of 40 stops the loop after exactly 40
        // completed episodes, every time.
        for _ in 0..3 {
            let budget = Budget::unlimited().with_episode_limit(40);
            let (_, stats) =
                RlPlanner::learn_budgeted(&inst, &params, 5, None, 0, &budget, |_| Ok(())).unwrap();
            assert_eq!(stats.episodes(), 40);
            assert!(budget.expired());
        }
        // The 40 budgeted episodes are bit-identical to the first 40 of
        // an unbudgeted run (the budget only truncates, never perturbs).
        let budget = Budget::unlimited().with_episode_limit(40);
        let (_, budgeted) =
            RlPlanner::learn_budgeted(&inst, &params, 5, None, 0, &budget, |_| Ok(())).unwrap();
        let (_, full) = RlPlanner::learn(&inst, &params, 5);
        assert_eq!(budgeted.returns(), &full.returns()[..40]);
    }

    #[test]
    fn elapsed_deadline_trains_zero_episodes() {
        let inst = toy_instance();
        let params = toy_params();
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let (policy, stats) =
            RlPlanner::learn_budgeted(&inst, &params, 5, None, 0, &budget, |_| Ok(())).unwrap();
        assert_eq!(stats.episodes(), 0);
        assert!(budget.expired());
        // The zeroed policy still recommends a terminal (if naive) plan.
        let plan = RlPlanner::recommend(&policy, &inst, &params, ItemId(0));
        assert!(!plan.is_empty());
    }

    #[test]
    fn step_budget_counts_training_steps() {
        let inst = toy_instance();
        let mut params = toy_params();
        params.episodes = 50;
        // Each toy episode is 5 steps (horizon 6, start pre-seated). The
        // stop check runs at episode boundaries: at 20 steps a 23-step
        // limit still admits the 5th episode, and the loop stops before
        // the 6th with 25 steps charged.
        let budget = Budget::unlimited().with_step_limit(23);
        let (_, stats) =
            RlPlanner::learn_budgeted(&inst, &params, 5, None, 0, &budget, |_| Ok(())).unwrap();
        assert_eq!(stats.episodes(), 5);
        assert_eq!(budget.steps(), 25);
    }

    #[test]
    fn checkpoint_sink_error_aborts_training() {
        let inst = toy_instance();
        let params = toy_params();
        let err = RlPlanner::learn_checkpointed(&inst, &params, 1, None, 10, |_| {
            Err("disk full".to_owned())
        })
        .unwrap_err();
        assert!(err.contains("disk full"));
    }

    #[test]
    fn resume_rejects_mismatched_shapes() {
        let inst = toy_instance();
        let mut params = toy_params();
        let mut ckpt = tpp_rl::TrainCheckpoint {
            q: tpp_rl::QTable::square(4), // catalog has 6 items
            episode: 10,
            sched_pos: 10,
            rng_state: [1, 2, 3, 4],
            visits: tpp_rl::VisitTable::empty(),
            returns: vec![0.0; 10],
        };
        let err = RlPlanner::learn_checkpointed(&inst, &params, 1, Some(&ckpt), 0, |_| Ok(()))
            .unwrap_err();
        assert!(err.contains("6 items"), "{err}");

        ckpt.q = tpp_rl::QTable::square(6);
        params.episodes = 5; // fewer than the checkpoint's 10
        let err = RlPlanner::learn_checkpointed(&inst, &params, 1, Some(&ckpt), 0, |_| Ok(()))
            .unwrap_err();
        assert!(err.contains("target is 5"), "{err}");
    }

    #[test]
    #[should_panic(expected = "different catalog")]
    fn recommend_rejects_foreign_policy() {
        let inst = toy_instance();
        let params = toy_params();
        let (mut policy, _) = RlPlanner::learn(&inst, &params, 1);
        policy.catalog_name = "something/else".into();
        let _ = RlPlanner::recommend(&policy, &inst, &params, ItemId(0));
    }
}
