//! The reward design of §III-B (Eq. 2–7).
//!
//! ```text
//! R(s_i, e_i, s_{i+1}) = θ · [ δ · AvgSim(s_{i+1}, IT_{i+1}) + β · weight_type ]
//! θ = r1 · r2
//! r1 = 1  iff the action's novel ideal-topic coverage ≥ ε      (Eq. 3)
//! r2 = 1  iff Dist(pre^m, m) ≥ gap                             (Eq. 4)
//! Sim(s, I)^k = ζ · Σ c / k                                    (Eq. 6)
//! AvgSim(s, IT)^k = mean_I Sim(s, I)^k                         (Eq. 7)
//! ```
//!
//! where `c` is the positionwise match vector between the sequence's
//! primary/secondary pattern and the template prefix, and `ζ` is the
//! longest consecutive run of matches.

use crate::params::{PlannerParams, SimAggregate, TypeWeights};
use tpp_model::{
    InterleavingTemplate, Item, ItemId, ItemKind, PrereqExpr, TemplateSet, TopicVector,
};

/// The interleaving-similarity kernel (Eq. 6 / Eq. 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct InterleavingKernel;

impl InterleavingKernel {
    /// `Sim(s, I)^k` for a sequence prefix of kinds against one template.
    ///
    /// The paper's worked example (§III-B4): sequence
    /// `{primary, secondary, primary, primary}` against the course
    /// templates yields `[0.5, 1, 1.5]`.
    pub fn sim(seq: &[ItemKind], template: &InterleavingTemplate) -> f64 {
        let k = seq.len().min(template.len());
        if k == 0 {
            return 0.0;
        }
        let slots = template.slots();
        let mut matches = 0u32;
        let mut run = 0u32;
        let mut zeta = 0u32;
        for i in 0..k {
            if seq[i] == slots[i] {
                matches += 1;
                run += 1;
                zeta = zeta.max(run);
            } else {
                run = 0;
            }
        }
        f64::from(zeta) * f64::from(matches) / k as f64
    }

    /// Aggregated similarity over the template set: `AvgSim` or `MinSim`.
    pub fn aggregate(seq: &[ItemKind], templates: &TemplateSet, mode: SimAggregate) -> f64 {
        if templates.is_empty() {
            return 0.0;
        }
        let sims = templates.templates().iter().map(|t| Self::sim(seq, t));
        match mode {
            SimAggregate::Average => sims.sum::<f64>() / templates.len() as f64,
            SimAggregate::Minimum => sims.fold(f64::INFINITY, f64::min),
        }
    }

    /// The evaluation-side score of a complete sequence: the **best**
    /// per-template similarity (§IV-A "the highest value is selected as
    /// the final score"). A sequence that perfectly realizes some
    /// template of length `H` scores `H` (ζ = Σc = k = H), matching the
    /// paper's gold-standard scores of 10 (Univ-1) and 15 (Univ-2).
    pub fn best(seq: &[ItemKind], templates: &TemplateSet) -> f64 {
        templates
            .templates()
            .iter()
            .map(|t| Self::sim(seq, t))
            .fold(0.0, f64::max)
    }
}

/// Incremental Eq. 6/7 state: per-template prefix-match counters.
///
/// [`InterleavingKernel::sim`] is a left-to-right fold over the episode
/// prefix, so its loop state — matched slots, current run, best run ζ —
/// can be carried across steps instead of recomputed: `push` advances
/// the counters by one appended item in O(|IT|), and
/// [`SimTracker::peek_aggregate`] evaluates the Eq. 7 aggregate for a
/// *candidate* append in O(|IT|) without touching the prefix. This
/// replaces the O(L · |IT|) per-candidate rescan in the training inner
/// loop (O(L²) per episode) with O(1)-per-step bookkeeping; the golden
/// equivalence suite pins it bit-identical to the naive kernel.
#[derive(Debug, Clone)]
pub struct SimTracker {
    /// Template slot sequences, cloned from the owning set (templates
    /// are immutable per instance and small).
    slots: Vec<Vec<ItemKind>>,
    state: Vec<TplCounters>,
    prefix_len: usize,
}

/// The loop state of [`InterleavingKernel::sim`] for one template,
/// frozen at the current prefix.
#[derive(Debug, Clone, Copy, Default)]
struct TplCounters {
    matches: u32,
    run: u32,
    zeta: u32,
}

impl TplCounters {
    /// The counters after appending an item matching (`hit`) or missing
    /// the next template slot.
    #[inline]
    fn advanced(self, hit: bool) -> Self {
        if hit {
            let run = self.run + 1;
            TplCounters {
                matches: self.matches + 1,
                run,
                zeta: self.zeta.max(run),
            }
        } else {
            TplCounters { run: 0, ..self }
        }
    }

    /// `ζ · Σc / k` with the exact float expression of the naive kernel.
    #[inline]
    fn sim(self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        f64::from(self.zeta) * f64::from(self.matches) / k as f64
    }
}

impl SimTracker {
    /// A tracker over `templates` at the empty prefix.
    pub fn new(templates: &TemplateSet) -> Self {
        SimTracker {
            slots: templates
                .templates()
                .iter()
                .map(|t| t.slots().to_vec())
                .collect(),
            state: vec![TplCounters::default(); templates.len()],
            prefix_len: 0,
        }
    }

    /// Rewinds to the empty prefix (episode reset).
    pub fn reset(&mut self) {
        self.state.fill(TplCounters::default());
        self.prefix_len = 0;
    }

    /// Length of the prefix consumed so far.
    #[inline]
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Appends one item kind to the tracked prefix.
    pub fn push(&mut self, kind: ItemKind) {
        let at = self.prefix_len;
        for (slots, st) in self.slots.iter().zip(self.state.iter_mut()) {
            // Beyond the template's length the naive kernel truncates the
            // sequence, so the counters freeze.
            if at < slots.len() {
                *st = st.advanced(slots[at] == kind);
            }
        }
        self.prefix_len = at + 1;
    }

    /// `Sim(prefix + [kind], I_i)` without mutating the tracker.
    fn peek_template(&self, i: usize, kind: ItemKind) -> f64 {
        let tlen = self.slots[i].len();
        let at = self.prefix_len;
        if at < tlen {
            self.state[i]
                .advanced(self.slots[i][at] == kind)
                .sim(at + 1)
        } else {
            self.state[i].sim(tlen)
        }
    }

    /// The Eq. 7 aggregate for appending `kind` to the tracked prefix —
    /// the incremental equivalent of [`InterleavingKernel::aggregate`]
    /// over `prefix + [kind]`.
    pub fn peek_aggregate(&self, kind: ItemKind, mode: SimAggregate) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        let sims = (0..self.slots.len()).map(|i| self.peek_template(i, kind));
        match mode {
            SimAggregate::Average => sims.sum::<f64>() / self.slots.len() as f64,
            SimAggregate::Minimum => sims.fold(f64::INFINITY, f64::min),
        }
    }
}

/// Everything Eq. 2 needs, bound to one instance's soft constraints.
///
/// The model is a pure function of the episode state supplied per call,
/// so one instance can be shared by the environment, the EDA baseline and
/// the scorer.
#[derive(Debug, Clone)]
pub struct RewardModel {
    ideal: TopicVector,
    templates: TemplateSet,
    gap: usize,
    epsilon: f64,
    delta: f64,
    beta: f64,
    weights: TypeWeights,
    sim: SimAggregate,
    /// Scale the type weight by `popularity / 5` (trip instances): the
    /// paper's trip scores are popularity scores, so popularity must
    /// enter the actual value being maximized. Documented in DESIGN.md.
    popularity_shaping: bool,
    /// Trip instances: the paper instantiates the trip `gap` as "not
    /// visiting two POIs of the same theme consecutively" (§IV-A1), so
    /// the theme check is part of the r2 gate.
    theme_gap: bool,
}

impl RewardModel {
    /// Builds a reward model from an instance's soft constraints and the
    /// planner parameters.
    pub fn new(
        ideal: TopicVector,
        templates: TemplateSet,
        gap: usize,
        params: &PlannerParams,
        popularity_shaping: bool,
    ) -> Self {
        RewardModel {
            ideal,
            templates,
            gap,
            epsilon: params.epsilon,
            delta: params.delta,
            beta: params.beta,
            weights: params.weights.clone(),
            sim: params.sim,
            popularity_shaping,
            theme_gap: popularity_shaping,
        }
    }

    /// Enables/disables the trip theme-gap component of r2 (defaults to
    /// on for trip instances).
    pub fn with_theme_gap(mut self, on: bool) -> Self {
        self.theme_gap = on;
        self
    }

    /// The topic-coverage gate `r1` (Eq. 3): 1 iff adding the item
    /// increases ideal-topic coverage by at least ε. ε < 1 is a fraction
    /// of `|T_ideal|`, ε ≥ 1 an absolute count.
    pub fn coverage_gate(&self, item_topics: &TopicVector, current: &TopicVector) -> bool {
        let gain = item_topics.novel_ideal_coverage(&self.ideal, current);
        if self.epsilon < 1.0 {
            let ideal_size = self.ideal.count_ones().max(1);
            f64::from(gain) / f64::from(ideal_size) >= self.epsilon
        } else {
            f64::from(gain) >= self.epsilon
        }
    }

    /// The antecedent-gap gate `r2` (Eq. 4), evaluated with the semester
    /// (block) gap semantics of `tpp-model`.
    pub fn prereq_gate<F>(&self, prereq: &PrereqExpr, position_of: &F, at: usize) -> bool
    where
        F: Fn(ItemId) -> Option<usize>,
    {
        prereq.satisfied_with_gap(position_of, at, self.gap)
    }

    /// The full Eq. 2 reward for appending `item` to an episode whose
    /// current kind sequence is `seq_before`, ideal-topic coverage is
    /// `coverage`, and item positions are given by `position_of`.
    /// `prev_topics` carries the preceding item's themes so the trip
    /// theme-gap can gate (pass `None` for course instances or at the
    /// first position).
    pub fn reward<F>(
        &self,
        item: &Item,
        seq_before: &[ItemKind],
        coverage: &TopicVector,
        position_of: &F,
        prev_topics: Option<&TopicVector>,
    ) -> f64
    where
        F: Fn(ItemId) -> Option<usize>,
    {
        let at = seq_before.len();
        if !self.theta(item, at, coverage, position_of, prev_topics) {
            return 0.0; // θ = r1 · r2 = 0
        }
        // Interleaving similarity of the sequence *including* the new
        // item (`AvgSim(s_{i+1}, IT_{i+1})`).
        let mut seq_after = Vec::with_capacity(at + 1);
        seq_after.extend_from_slice(seq_before);
        seq_after.push(item.kind);
        let sim = InterleavingKernel::aggregate(&seq_after, &self.templates, self.sim);
        self.shaped(item, sim)
    }

    /// [`RewardModel::reward`] over an incrementally-maintained prefix:
    /// the [`SimTracker`] stands in for the kind sequence, turning the
    /// per-candidate O(L) prefix rescan into O(|IT|) counter reads. The
    /// two paths are bit-identical (same counters, same float
    /// expressions); the naive one is retained for the golden
    /// equivalence suite and as the benchmark baseline.
    pub fn reward_incremental<F>(
        &self,
        item: &Item,
        tracker: &SimTracker,
        coverage: &TopicVector,
        position_of: &F,
        prev_topics: Option<&TopicVector>,
    ) -> f64
    where
        F: Fn(ItemId) -> Option<usize>,
    {
        if !self.theta(
            item,
            tracker.prefix_len(),
            coverage,
            position_of,
            prev_topics,
        ) {
            return 0.0; // θ = r1 · r2 = 0
        }
        self.shaped(item, tracker.peek_aggregate(item.kind, self.sim))
    }

    /// A [`SimTracker`] over this model's template set, at the empty
    /// prefix.
    pub fn sim_tracker(&self) -> SimTracker {
        SimTracker::new(&self.templates)
    }

    /// The gate θ = r1 · r2 for appending `item` at position `at`.
    fn theta<F>(
        &self,
        item: &Item,
        at: usize,
        coverage: &TopicVector,
        position_of: &F,
        prev_topics: Option<&TopicVector>,
    ) -> bool
    where
        F: Fn(ItemId) -> Option<usize>,
    {
        if !self.coverage_gate(&item.topics, coverage) {
            return false;
        }
        let mut r2 = self.prereq_gate(&item.prereq, position_of, at);
        if self.theme_gap {
            if let Some(prev) = prev_topics {
                r2 = r2 && prev.intersection_count(&item.topics) == 0;
            }
        }
        r2
    }

    /// Eq. 2's shaped value for a gate-passing action. Eq. 2 uses the
    /// *raw* aggregated similarity (not normalized by prefix length): a
    /// matched consecutive run makes AvgSim grow superlinearly through
    /// ζ, which is what commits the policy to one template — exactly the
    /// behaviour that lets a recommendation realize a single ideal
    /// composition and score ≈ H.
    fn shaped(&self, item: &Item, sim: f64) -> f64 {
        let mut weight = self
            .weights
            .weight_of(item.is_primary(), item.category.map(|c| c.index()));
        if self.popularity_shaping {
            if let Some(attrs) = item.poi {
                weight *= attrs.popularity / 5.0;
            }
        }
        self.delta * sim + self.beta * weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_model::toy;
    use tpp_model::{ItemKind::Primary as P, ItemKind::Secondary as S};

    #[test]
    fn paper_sim_worked_example() {
        // §III-B4: sequence {P, S, P, P}, course templates
        // {PPSPSS, PSSSPP, PSSPPS} → Sim = [0.5, 1, 1.5], AvgSim = 1.
        let seq = [P, S, P, P];
        let it = TemplateSet::paper_course_example();
        let sims: Vec<f64> = it
            .templates()
            .iter()
            .map(|t| InterleavingKernel::sim(&seq, t))
            .collect();
        assert_eq!(sims, vec![0.5, 1.0, 1.5]);
        assert_eq!(
            InterleavingKernel::aggregate(&seq, &it, SimAggregate::Average),
            1.0
        );
        assert_eq!(
            InterleavingKernel::aggregate(&seq, &it, SimAggregate::Minimum),
            0.5
        );
        assert_eq!(InterleavingKernel::best(&seq, &it), 1.5);
    }

    #[test]
    fn perfect_prefix_scores_k() {
        let it = TemplateSet::paper_course_example();
        // I2 = PSSSPP; its own prefix of length 6 scores 6·6/6 = 6.
        let seq = [P, S, S, S, P, P];
        assert_eq!(InterleavingKernel::best(&seq, &it), 6.0);
    }

    #[test]
    fn sim_bounds() {
        let it = TemplateSet::paper_course_example();
        for seq in [vec![P], vec![S, S], vec![P, P, S, S, P, S]] {
            for t in it.templates() {
                let s = InterleavingKernel::sim(&seq, t);
                assert!((0.0..=seq.len() as f64).contains(&s), "{s}");
            }
        }
    }

    #[test]
    fn empty_sequence_sims_zero() {
        let it = TemplateSet::paper_course_example();
        assert_eq!(InterleavingKernel::best(&[], &it), 0.0);
        assert_eq!(
            InterleavingKernel::aggregate(&[], &it, SimAggregate::Average),
            0.0
        );
    }

    fn toy_model(epsilon: f64) -> RewardModel {
        let mut params = crate::PlannerParams::univ1_defaults();
        params.epsilon = epsilon;
        RewardModel::new(
            toy::table2_soft().ideal_topics,
            TemplateSet::paper_course_example(),
            toy::table2_hard().gap,
            &params,
            false,
        )
    }

    #[test]
    fn paper_r1_example() {
        // §III-B1 with ε = 1: after taking m2 (Data Mining), adding m4
        // (Linear Algebra) has r1 = 1, adding m5 (Big Data) has r1 = 0.
        let cat = toy::table2_catalog();
        let model = toy_model(1.0);
        let m2 = cat.by_code("m2").unwrap();
        let m4 = cat.by_code("m4").unwrap();
        let m5 = cat.by_code("m5").unwrap();
        let mut coverage = cat.vocabulary().zero_vector();
        coverage.union_with(&m2.topics);
        assert!(model.coverage_gate(&m4.topics, &coverage));
        assert!(!model.coverage_gate(&m5.topics, &coverage));
    }

    #[test]
    fn fractional_epsilon_is_fraction_of_ideal() {
        // ideal has 4 topics; ε = 0.3 needs gain ≥ 1.2 → 2 topics.
        let cat = toy::table2_catalog();
        let model = toy_model(0.3);
        let empty = cat.vocabulary().zero_vector();
        // m6 (ML) covers Classification, Clustering, Neural Network from
        // the ideal → gain 3 ≥ 1.2.
        let m6 = cat.by_code("m6").unwrap();
        assert!(model.coverage_gate(&m6.topics, &empty));
        // m4 (Linear Algebra) only gains Linear System → 1 < 1.2.
        let m4 = cat.by_code("m4").unwrap();
        assert!(!model.coverage_gate(&m4.topics, &empty));
    }

    #[test]
    fn reward_zero_when_prereq_violated_theorem1() {
        // Theorem 1: the gate forces R = 0 whenever the gap constraint is
        // unsatisfied. m6 requires m4 AND m2; with neither taken the
        // reward is exactly 0 regardless of everything else.
        let cat = toy::table2_catalog();
        let model = toy_model(1.0);
        let m6 = cat.by_code("m6").unwrap();
        let empty = cat.vocabulary().zero_vector();
        let none = |_: ItemId| None::<usize>;
        assert_eq!(model.reward(m6, &[], &empty, &none, None), 0.0);
    }

    #[test]
    fn reward_positive_for_valid_action_and_decomposes() {
        let cat = toy::table2_catalog();
        let model = toy_model(1.0);
        let m1 = cat.by_code("m1").unwrap();
        let empty = cat.vocabulary().zero_vector();
        let none = |_: ItemId| None::<usize>;
        // m1 covers Algorithms + Data Structure — neither is ideal, so r1
        // fails even though m1 has no prereq.
        assert_eq!(model.reward(m1, &[], &empty, &none, None), 0.0);
        // m2 covers Classification + Clustering (both ideal): reward > 0.
        let m2 = cat.by_code("m2").unwrap();
        let r = model.reward(m2, &[], &empty, &none, None);
        assert!(r > 0.0);
        // Decomposition: first slot, kind S matches no first template
        // slot (all start P) → sim 0; weight w2 = 0.4, β = 0.4.
        assert!((r - 0.4 * 0.4).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn primary_items_rewarded_higher_all_else_equal() {
        // Theorem 1 Case II's engine: β·w1 > β·w2.
        let cat = toy::table2_catalog();
        let model = toy_model(1.0);
        let empty = cat.vocabulary().zero_vector();
        // m6 (primary, ideal topics, no prereq issue if we fake positions)
        let m6 = cat.by_code("m6").unwrap();
        let m2 = cat.by_code("m2").unwrap();
        let pos = |id: ItemId| match id.0 {
            1 | 3 => Some(0usize), // pretend m2 and m4 were taken long ago
            _ => None,
        };
        let seq = [S, S, S]; // at position 3 → semester 1
        let r_primary = model.reward(m6, &seq, &empty, &pos, None);
        let r_secondary = model.reward(m2, &seq, &empty, &pos, None);
        assert!(r_primary > r_secondary, "{r_primary} !> {r_secondary}");
    }

    #[test]
    fn popularity_shaping_scales_weight() {
        let cat = toy::paris_toy_catalog();
        let mut params = crate::PlannerParams::trip_defaults();
        params.epsilon = 1.0;
        let model = RewardModel::new(
            toy::paris_toy_soft().ideal_topics,
            TemplateSet::paper_trip_example(),
            1,
            &params,
            true,
        );
        let empty = cat.vocabulary().zero_vector();
        let none = |_: ItemId| None::<usize>;
        // Louvre: primary, popularity 5 → full w1.
        let louvre = cat.by_code("louvre museum").unwrap();
        let r_louvre = model.reward(louvre, &[], &empty, &none, None);
        // Pantheon: secondary, popularity 4.2 → w2 · 4.2/5.
        let pantheon = cat.by_code("pantheon").unwrap();
        let r_pantheon = model.reward(pantheon, &[], &empty, &none, None);
        // Both match 'P...' first slots? Louvre is primary: all templates
        // start P → sim_norm = 1. Pantheon secondary → sim 0.
        let expect_louvre = 0.6 * 1.0 + 0.4 * (0.6 * 1.0);
        assert!((r_louvre - expect_louvre).abs() < 1e-12, "{r_louvre}");
        let expect_pantheon = 0.4 * (0.4 * 4.2 / 5.0);
        assert!((r_pantheon - expect_pantheon).abs() < 1e-12, "{r_pantheon}");
    }

    #[test]
    fn sim_tracker_peek_is_bit_identical_to_naive_kernel() {
        // Exhaustive over every P/S sequence up to length 8 against the
        // paper template set: the incremental peek must reproduce the
        // naive kernel's aggregate to the bit, for both aggregates.
        let it = TemplateSet::paper_course_example();
        for len in 0..8u32 {
            for bits in 0..(1u32 << len) {
                let seq: Vec<_> = (0..len)
                    .map(|i| if bits >> i & 1 == 1 { P } else { S })
                    .collect();
                let mut tracker = SimTracker::new(&it);
                for &k in &seq {
                    tracker.push(k);
                }
                assert_eq!(tracker.prefix_len(), seq.len());
                for cand in [P, S] {
                    let mut after = seq.clone();
                    after.push(cand);
                    for mode in [SimAggregate::Average, SimAggregate::Minimum] {
                        let naive = InterleavingKernel::aggregate(&after, &it, mode);
                        let fast = tracker.peek_aggregate(cand, mode);
                        assert_eq!(naive.to_bits(), fast.to_bits(), "{seq:?} + {cand:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn sim_tracker_reset_rewinds_to_empty_prefix() {
        let it = TemplateSet::paper_course_example();
        let mut tracker = SimTracker::new(&it);
        tracker.push(P);
        tracker.push(S);
        tracker.reset();
        assert_eq!(tracker.prefix_len(), 0);
        let fresh = SimTracker::new(&it);
        for mode in [SimAggregate::Average, SimAggregate::Minimum] {
            assert_eq!(
                tracker.peek_aggregate(P, mode).to_bits(),
                fresh.peek_aggregate(P, mode).to_bits()
            );
        }
    }

    #[test]
    fn sim_tracker_freezes_past_template_length() {
        // Prefixes longer than the template leave the similarity fixed,
        // exactly like the naive kernel's truncation.
        let it = TemplateSet::from_strs(&["PS"]).unwrap();
        let mut tracker = SimTracker::new(&it);
        for k in [P, S, P, P, S] {
            tracker.push(k);
        }
        let seq = [P, S, P, P, S, P];
        let naive = InterleavingKernel::aggregate(&seq, &it, SimAggregate::Average);
        assert_eq!(
            tracker.peek_aggregate(P, SimAggregate::Average).to_bits(),
            naive.to_bits()
        );
    }

    #[test]
    fn sim_tracker_empty_template_set_is_zero() {
        let it = TemplateSet::new(vec![]);
        let tracker = SimTracker::new(&it);
        assert_eq!(tracker.peek_aggregate(P, SimAggregate::Average), 0.0);
        assert_eq!(tracker.peek_aggregate(S, SimAggregate::Minimum), 0.0);
    }

    #[test]
    fn reward_incremental_matches_reward() {
        let cat = toy::table2_catalog();
        let model = toy_model(1.0);
        let m2 = cat.by_code("m2").unwrap();
        let m6 = cat.by_code("m6").unwrap();
        let mut coverage = cat.vocabulary().zero_vector();
        coverage.union_with(&m2.topics);
        let pos = |id: ItemId| match id.0 {
            1 | 3 => Some(0usize),
            _ => None,
        };
        let mut tracker = model.sim_tracker();
        let mut seq = Vec::new();
        for kind in [S, P, S] {
            for item in [m2, m6] {
                let naive = model.reward(item, &seq, &coverage, &pos, None);
                let fast = model.reward_incremental(item, &tracker, &coverage, &pos, None);
                assert_eq!(naive.to_bits(), fast.to_bits());
            }
            seq.push(kind);
            tracker.push(kind);
        }
    }

    #[test]
    fn min_aggregate_is_lower_bound_of_avg() {
        let it = TemplateSet::paper_course_example();
        for seq in [vec![P, S], vec![P, P, S], vec![S, P, S, P]] {
            let avg = InterleavingKernel::aggregate(&seq, &it, SimAggregate::Average);
            let min = InterleavingKernel::aggregate(&seq, &it, SimAggregate::Minimum);
            assert!(min <= avg + 1e-12);
        }
    }
}
