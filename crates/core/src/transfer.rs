//! Transfer learning across item universes (§IV-D).
//!
//! A tabular policy indexes items of the universe it was learned on; to
//! apply it elsewhere the Q mass must be transported through a state
//! mapping:
//!
//! * **Courses** — programs inside one university share course codes
//!   (M.S. DS-CT and M.S. CS both offer CS 675, CS 610, …), so the
//!   mapping is identity-on-shared-codes.
//! * **Trips** — NYC and Paris share no POIs, so each target POI maps to
//!   the source POI with the most similar *theme profile* (Jaccard over
//!   theme names, ties broken by popularity proximity). Theme
//!   vocabularies differ (21 vs 16 themes), hence matching by name.

use tpp_model::Catalog;
use tpp_rl::{transfer_q, QTable, StateMapping};

/// Builds a target→source mapping by exact item-code equality.
pub fn course_mapping_by_code(target: &Catalog, source: &Catalog) -> StateMapping {
    let map = target
        .items()
        .iter()
        .map(|item| source.by_code(&item.code).map(|s| s.id.index()))
        .collect();
    StateMapping::new(map)
}

/// Builds a target→source mapping by nearest theme profile.
///
/// Similarity is Jaccard over theme *names* (the vocabularies differ);
/// zero-similarity items stay unmapped; ties prefer the source POI whose
/// popularity is closest.
pub fn poi_mapping_by_theme(target: &Catalog, source: &Catalog) -> StateMapping {
    let theme_names = |catalog: &Catalog, idx: usize| -> Vec<String> {
        let item = &catalog.items()[idx];
        item.topics
            .iter_topics()
            .map(|t| catalog.vocabulary().name(t).to_owned())
            .collect()
    };
    let source_profiles: Vec<(Vec<String>, f64)> = (0..source.len())
        .map(|i| {
            let pop = source.items()[i].poi.map_or(0.0, |a| a.popularity);
            (theme_names(source, i), pop)
        })
        .collect();
    let map = (0..target.len())
        .map(|ti| {
            let t_themes = theme_names(target, ti);
            let t_pop = target.items()[ti].poi.map_or(0.0, |a| a.popularity);
            let mut best: Option<(f64, f64, usize)> = None; // (sim, -pop_diff, idx)
            for (si, (s_themes, s_pop)) in source_profiles.iter().enumerate() {
                let inter = t_themes.iter().filter(|t| s_themes.contains(t)).count();
                if inter == 0 {
                    continue;
                }
                let union = t_themes.len() + s_themes.len() - inter;
                let sim = inter as f64 / union as f64;
                let pop_closeness = -(t_pop - s_pop).abs();
                let cand = (sim, pop_closeness, si);
                if best.map_or(true, |b| (cand.0, cand.1) > (b.0, b.1)) {
                    best = Some(cand);
                }
            }
            best.map(|(_, _, si)| si)
        })
        .collect();
    StateMapping::new(map)
}

/// Transports a learned Q-table into a target universe through a mapping.
pub fn transfer_policy(source_q: &QTable, mapping: &StateMapping) -> QTable {
    transfer_q(source_q, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_datagen::defaults::{NYC_SEED, PARIS_SEED, UNIV1_SEED};
    use tpp_datagen::{nyc, paris, univ1_cs, univ1_ds_ct};

    #[test]
    fn course_mapping_hits_shared_codes() {
        let ds = univ1_ds_ct(UNIV1_SEED);
        let cs = univ1_cs(UNIV1_SEED);
        let m = course_mapping_by_code(&ds.catalog, &cs.catalog);
        assert_eq!(m.target_len(), ds.catalog.len());
        // CS 675 exists in both; its mapping must point at the CS
        // program's CS 675.
        let t675 = ds.catalog.by_code("CS 675").unwrap().id.index();
        let s675 = cs.catalog.by_code("CS 675").unwrap().id.index();
        assert_eq!(m.source_of(t675), Some(s675));
        // Coverage is substantial (the programs overlap heavily).
        assert!(m.coverage() > 0.4, "coverage {}", m.coverage());
    }

    #[test]
    fn course_mapping_leaves_exclusive_courses_unmapped() {
        let ds = univ1_ds_ct(UNIV1_SEED);
        let cs = univ1_cs(UNIV1_SEED);
        let m = course_mapping_by_code(&ds.catalog, &cs.catalog);
        // CS 677 (Deep Learning) is DS-CT-only.
        let t = ds.catalog.by_code("CS 677").unwrap().id.index();
        assert!(cs.catalog.by_code("CS 677").is_none());
        assert_eq!(m.source_of(t), None);
    }

    #[test]
    fn poi_mapping_prefers_same_theme() {
        let p = paris(PARIS_SEED);
        let n = nyc(NYC_SEED);
        let m = poi_mapping_by_theme(&p.instance.catalog, &n.instance.catalog);
        assert!(m.coverage() > 0.6, "coverage {}", m.coverage());
        // The Louvre (museum+gallery) should map to a museum-ish NYC POI.
        let louvre = p.instance.catalog.by_code("louvre museum").unwrap();
        let mapped = m.source_of(louvre.id.index()).expect("louvre maps");
        let nyc_item = &n.instance.catalog.items()[mapped];
        let nyc_voc = n.instance.catalog.vocabulary();
        let museum = nyc_voc.id_of("museum").unwrap();
        let gallery = nyc_voc.id_of("gallery").unwrap();
        assert!(
            nyc_item.topics.get(museum) || nyc_item.topics.get(gallery),
            "louvre mapped to {}",
            nyc_item.code
        );
    }

    #[test]
    fn transfer_moves_q_mass_through_shared_courses() {
        let ds = univ1_ds_ct(UNIV1_SEED);
        let cs = univ1_cs(UNIV1_SEED);
        let mut q = QTable::square(cs.catalog.len());
        let s610 = cs.catalog.by_code("CS 610").unwrap().id.index();
        let s675 = cs.catalog.by_code("CS 675").unwrap().id.index();
        q.set(s610, s675, 9.0);
        let m = course_mapping_by_code(&ds.catalog, &cs.catalog);
        let tq = transfer_policy(&q, &m);
        let t610 = ds.catalog.by_code("CS 610").unwrap().id.index();
        let t675 = ds.catalog.by_code("CS 675").unwrap().id.index();
        assert_eq!(tq.get(t610, t675), 9.0);
    }
}
