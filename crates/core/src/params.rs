//! RL-Planner hyper-parameters (Table III).

use serde::{Deserialize, Serialize};
use tpp_model::ItemId;
use tpp_rl::Schedule;

/// How per-template similarities are aggregated into the reward
/// (Eq. 7 uses the average; §IV-A4 also evaluates the minimum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimAggregate {
    /// `AvgSim`: mean similarity over the template set.
    Average,
    /// `MinSim`: worst-case similarity over the template set.
    Minimum,
}

/// The item-type weighting of Eq. 2's `weight_type` term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TypeWeights {
    /// Two-way primary/secondary weights `w1 + w2 = 1`, `w1 > w2`
    /// (Univ-1 and trips).
    PrimarySecondary {
        /// Weight of primary items.
        w1: f64,
        /// Weight of secondary items.
        w2: f64,
    },
    /// Per-category weights ω1..ωk summing to 1 (Univ-2's six
    /// sub-disciplines). Items without a category fall back to the last
    /// weight.
    Categories(Vec<f64>),
}

impl TypeWeights {
    /// The Table III Univ-1 default: `w1 = 0.6, w2 = 0.4`.
    pub fn univ1_default() -> Self {
        TypeWeights::PrimarySecondary { w1: 0.6, w2: 0.4 }
    }

    /// The Table III Univ-2 default: `(0.25, 0.01, 0.15, 0.42, 0.01, 0.16)`.
    pub fn univ2_default() -> Self {
        TypeWeights::Categories(vec![0.25, 0.01, 0.15, 0.42, 0.01, 0.16])
    }

    /// Weight of an item given its kind and category.
    pub fn weight_of(&self, is_primary: bool, category: Option<usize>) -> f64 {
        match self {
            TypeWeights::PrimarySecondary { w1, w2 } => {
                if is_primary {
                    *w1
                } else {
                    *w2
                }
            }
            TypeWeights::Categories(w) => {
                let idx = category.unwrap_or(w.len().saturating_sub(1));
                w.get(idx)
                    .copied()
                    .unwrap_or_else(|| w.last().copied().unwrap_or(0.0))
            }
        }
    }
}

/// Which Q-table representation training allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QReprMode {
    /// Dense up to `tpp_rl::DENSE_AUTO_MAX` items, sparse above — the
    /// default, mirroring `DistanceMatrix::DEFAULT_CAP`'s auto cutover.
    Auto,
    /// Always dense (fails on catalogs past the dense element ceiling
    /// instead of allocating `n²` doubles).
    Dense,
    /// Always sparse (useful for equivalence testing on small catalogs).
    Sparse,
}

/// Whether `TppEnv::valid_actions` scans the whole catalog or a
/// grid-pruned, top-k shortlist around the current item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShortlistMode {
    /// Shortlist on trip catalogs above `tpp_rl::DENSE_AUTO_MAX` items,
    /// full scan below — the default.
    Auto,
    /// Always the full O(n) scan (the measured baseline, mirroring
    /// `naive_hot_path`).
    Off,
    /// Always shortlist (requires POI geometry; course catalogs fall
    /// back to the full scan).
    On,
}

/// Where learning episodes (and recommendations) start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StartPolicy {
    /// Always the same item (Table III pins `s_1` per dataset).
    Fixed(ItemId),
    /// A uniformly random item each episode.
    Random,
    /// A uniformly random *primary* item each episode.
    RandomPrimary,
}

/// All RL-Planner hyper-parameters. Field names follow Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerParams {
    /// Number of training episodes `N`.
    pub episodes: usize,
    /// Learning rate α.
    pub alpha: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Topic-coverage threshold ε of Eq. 3. Values < 1 are interpreted as
    /// a *fraction* of `|T_ideal|` (the Table III defaults are 0.0025);
    /// values ≥ 1 as an absolute new-topic count (the §III-B1 examples
    /// use ε = 1).
    pub epsilon: f64,
    /// Interleaving weight δ (Eq. 2); `delta + beta = 1`.
    pub delta: f64,
    /// Type weight β (Eq. 2).
    pub beta: f64,
    /// `weight_type` definition.
    pub weights: TypeWeights,
    /// Similarity aggregation over the template set.
    pub sim: SimAggregate,
    /// Episode start policy.
    pub start: StartPolicy,
    /// Exploration-rate schedule for ε-greedy action selection during
    /// learning (distinct from the topic threshold ε; the paper does not
    /// publish its exploration schedule, so we default to a decaying one).
    pub exploration: Schedule,
    /// Eligibility-trace decay λ (SARSA(λ)); `0.0` recovers plain
    /// one-step SARSA. Traces propagate a late core-course reward back to
    /// the early decision that scheduled its antecedent.
    pub lambda: f64,
    /// Benchmark/equivalence switch (not a Table III parameter): run the
    /// environment's pre-incremental hot path — full prefix rescans for
    /// Eq. 6/7 and per-probe haversine legs — instead of the cached
    /// engine. Plans, rewards, and scores are bit-identical either way
    /// (the golden equivalence suite pins this); only the per-step work
    /// differs. Used by `rl-planner bench` as the speedup baseline.
    pub naive_hot_path: bool,
    /// Q-table representation policy (not a Table III parameter): see
    /// [`QReprMode`]. `Auto` keeps every seed dataset dense and
    /// bit-identical to the pre-sparse engine.
    pub q_repr: QReprMode,
    /// Action-shortlist policy for city-scale catalogs (not a Table III
    /// parameter): see [`ShortlistMode`]. Shortlisting is a documented
    /// approximation — it restricts exploration to the geographic
    /// neighbourhood of the current item — so `Auto` only engages it
    /// where the full scan is intractable.
    pub shortlist: ShortlistMode,
    /// Geo radius (km) of the shortlist candidate query around the
    /// current item.
    pub shortlist_radius_km: f64,
    /// Maximum number of gated candidates a shortlist returns
    /// (nearest-first before the cap, ascending item index after it).
    pub shortlist_top_k: usize,
}

impl PlannerParams {
    /// Table III defaults for Univ-1 programs:
    /// `N = 500, α = 0.75, γ = 0.95, ε = 0.0025, δ/β = 0.6/0.4,
    /// w = (0.6, 0.4)`.
    pub fn univ1_defaults() -> Self {
        PlannerParams {
            episodes: 500,
            alpha: 0.75,
            gamma: 0.95,
            epsilon: 0.0025,
            delta: 0.6,
            beta: 0.4,
            weights: TypeWeights::univ1_default(),
            sim: SimAggregate::Average,
            start: StartPolicy::RandomPrimary,
            exploration: Self::default_exploration(),
            lambda: 0.9,
            naive_hot_path: false,
            q_repr: QReprMode::Auto,
            shortlist: ShortlistMode::Auto,
            shortlist_radius_km: 3.0,
            shortlist_top_k: 64,
        }
    }

    /// Table III defaults for Univ-2:
    /// `N = 100, α = 0.75, γ = 0.95, ε = 0.0025, δ/β = 0.8/0.2,
    /// ω = (0.25, 0.01, 0.15, 0.42, 0.01, 0.16)`.
    pub fn univ2_defaults() -> Self {
        PlannerParams {
            episodes: 100,
            alpha: 0.75,
            gamma: 0.95,
            epsilon: 0.0025,
            delta: 0.8,
            beta: 0.2,
            weights: TypeWeights::univ2_default(),
            sim: SimAggregate::Average,
            start: StartPolicy::RandomPrimary,
            exploration: Self::default_exploration(),
            lambda: 0.9,
            naive_hot_path: false,
            q_repr: QReprMode::Auto,
            shortlist: ShortlistMode::Auto,
            shortlist_radius_km: 3.0,
            shortlist_top_k: 64,
        }
    }

    /// Table III defaults for trips:
    /// `N = 500, α = 0.95, γ = 0.75, δ/β = 0.6/0.4, w = (0.6, 0.4)`;
    /// topic threshold ε = 1 new theme (§III-B1's trip example).
    pub fn trip_defaults() -> Self {
        PlannerParams {
            episodes: 500,
            alpha: 0.95,
            gamma: 0.75,
            epsilon: 1.0,
            delta: 0.6,
            beta: 0.4,
            weights: TypeWeights::univ1_default(),
            sim: SimAggregate::Average,
            start: StartPolicy::RandomPrimary,
            exploration: Self::default_exploration(),
            lambda: 0.9,
            naive_hot_path: false,
            q_repr: QReprMode::Auto,
            shortlist: ShortlistMode::Auto,
            shortlist_radius_km: 3.0,
            shortlist_top_k: 64,
        }
    }

    /// The default exploration schedule: ε-greedy decaying from 1.0
    /// toward 0.05.
    pub fn default_exploration() -> Schedule {
        Schedule::Exponential {
            from: 1.0,
            rate: 0.99,
            min: 0.05,
        }
    }

    /// Sets the fixed start item (builder style).
    pub fn with_start(mut self, start: ItemId) -> Self {
        self.start = StartPolicy::Fixed(start);
        self
    }

    /// Sets the similarity aggregate (builder style).
    pub fn with_sim(mut self, sim: SimAggregate) -> Self {
        self.sim = sim;
        self
    }

    /// Sets δ and β (builder style); the pair should sum to 1.
    pub fn with_delta_beta(mut self, delta: f64, beta: f64) -> Self {
        self.delta = delta;
        self.beta = beta;
        self
    }

    /// Selects the pre-incremental (naive) environment hot path
    /// (builder style); see [`PlannerParams::naive_hot_path`].
    pub fn with_naive_hot_path(mut self, naive: bool) -> Self {
        self.naive_hot_path = naive;
        self
    }

    /// Sets the Q-table representation policy (builder style).
    pub fn with_q_repr(mut self, mode: QReprMode) -> Self {
        self.q_repr = mode;
        self
    }

    /// Sets the action-shortlist policy (builder style).
    pub fn with_shortlist(mut self, mode: ShortlistMode) -> Self {
        self.shortlist = mode;
        self
    }

    /// Sets the shortlist geometry (builder style): candidate radius in
    /// km and the top-k cap.
    pub fn with_shortlist_geometry(mut self, radius_km: f64, top_k: usize) -> Self {
        self.shortlist_radius_km = radius_km;
        self.shortlist_top_k = top_k;
        self
    }

    /// Checks parameter invariants (`δ + β = 1`, weights sum to 1, …).
    pub fn validate(&self) -> Result<(), String> {
        if (self.delta + self.beta - 1.0).abs() > 1e-9 {
            return Err(format!(
                "delta + beta must be 1, got {}",
                self.delta + self.beta
            ));
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err(format!("gamma must be in [0,1], got {}", self.gamma));
        }
        if self.alpha <= 0.0 || self.alpha > 1.0 {
            return Err(format!("alpha must be in (0,1], got {}", self.alpha));
        }
        match &self.weights {
            TypeWeights::PrimarySecondary { w1, w2 } => {
                if (w1 + w2 - 1.0).abs() > 1e-9 {
                    return Err(format!("w1 + w2 must be 1, got {}", w1 + w2));
                }
            }
            TypeWeights::Categories(w) => {
                if w.is_empty() {
                    return Err("category weights must be non-empty".into());
                }
                let s: f64 = w.iter().sum();
                if (s - 1.0).abs() > 1e-9 {
                    return Err(format!("category weights must sum to 1, got {s}"));
                }
            }
        }
        if self.epsilon < 0.0 {
            return Err(format!(
                "epsilon must be non-negative, got {}",
                self.epsilon
            ));
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err(format!("lambda must be in [0,1], got {}", self.lambda));
        }
        if !self.shortlist_radius_km.is_finite() || self.shortlist_radius_km <= 0.0 {
            return Err(format!(
                "shortlist radius must be positive and finite, got {}",
                self.shortlist_radius_km
            ));
        }
        if self.shortlist_top_k == 0 {
            return Err("shortlist top-k must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PlannerParams::univ1_defaults().validate().unwrap();
        PlannerParams::univ2_defaults().validate().unwrap();
        PlannerParams::trip_defaults().validate().unwrap();
    }

    #[test]
    fn univ1_defaults_match_table3() {
        let p = PlannerParams::univ1_defaults();
        assert_eq!(p.episodes, 500);
        assert_eq!(p.alpha, 0.75);
        assert_eq!(p.gamma, 0.95);
        assert_eq!(p.epsilon, 0.0025);
        assert_eq!((p.delta, p.beta), (0.6, 0.4));
    }

    #[test]
    fn trip_defaults_match_table3() {
        let p = PlannerParams::trip_defaults();
        assert_eq!(p.alpha, 0.95);
        assert_eq!(p.gamma, 0.75);
    }

    #[test]
    fn weight_of_primary_secondary() {
        let w = TypeWeights::univ1_default();
        assert_eq!(w.weight_of(true, None), 0.6);
        assert_eq!(w.weight_of(false, None), 0.4);
    }

    #[test]
    fn weight_of_categories() {
        let w = TypeWeights::univ2_default();
        assert_eq!(w.weight_of(true, Some(3)), 0.42);
        assert_eq!(w.weight_of(false, Some(1)), 0.01);
        // Missing category → last weight (the elective bucket).
        assert_eq!(w.weight_of(false, None), 0.16);
        // Out-of-range category → last weight.
        assert_eq!(w.weight_of(false, Some(99)), 0.16);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = PlannerParams::univ1_defaults();
        p.delta = 0.9; // beta still 0.4
        assert!(p.validate().is_err());
        let mut p2 = PlannerParams::univ1_defaults();
        p2.weights = TypeWeights::PrimarySecondary { w1: 0.9, w2: 0.4 };
        assert!(p2.validate().is_err());
        let mut p3 = PlannerParams::univ1_defaults();
        p3.gamma = 1.5;
        assert!(p3.validate().is_err());
        let mut p4 = PlannerParams::univ1_defaults();
        p4.alpha = 0.0;
        assert!(p4.validate().is_err());
        let mut p5 = PlannerParams::univ1_defaults();
        p5.epsilon = -0.1;
        assert!(p5.validate().is_err());
        let mut p6 = PlannerParams::univ2_defaults();
        p6.weights = TypeWeights::Categories(vec![]);
        assert!(p6.validate().is_err());
    }

    #[test]
    fn builders() {
        let p = PlannerParams::univ1_defaults()
            .with_start(ItemId(3))
            .with_sim(SimAggregate::Minimum)
            .with_delta_beta(0.5, 0.5);
        assert_eq!(p.start, StartPolicy::Fixed(ItemId(3)));
        assert_eq!(p.sim, SimAggregate::Minimum);
        assert_eq!(p.delta, 0.5);
        p.validate().unwrap();
    }
}
