//! Canonical constraint-signature hashing for policy reuse.
//!
//! A trained Q-policy is only reusable for requests planning over the
//! *same* constrained universe: identical hard constraints `P_hard`,
//! identical soft constraints `P_soft`, and (for trips) identical trip
//! overlays. The serving layer's policy cache therefore keys entries by
//! a **constraint signature**: a 64-bit FNV-1a hash over a canonical
//! byte encoding of every constraint field, computed here so the cache,
//! the CLI, and any future shard router all derive the same value.
//!
//! Canonical means the encoding is independent of incidental in-memory
//! details: floats hash by their IEEE-754 bit pattern, collections hash
//! with explicit length prefixes (so `["PS","P"]` and `["PSP"]` cannot
//! collide structurally), and every section carries a distinct tag
//! byte. Two instances hash equal **iff** their constraint bundles are
//! field-for-field identical — the same condition under which
//! `transfer.rs` would call the policies interchangeable without any
//! remapping.

use tpp_model::PlanningInstance;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A minimal FNV-1a hasher over explicit byte encodings.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Section/field separator so adjacent variable-length fields
    /// cannot slide into each other.
    fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Floats hash by bit pattern: bit-identical constraints (the only
    /// kind the planner treats as equal) hash identically, and NaN
    /// payloads are distinguished instead of collapsing.
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// The canonical 64-bit signature of an instance's hard + soft (+ trip)
/// constraint bundle. See the module docs for the guarantees.
pub fn constraint_signature(instance: &PlanningInstance) -> u64 {
    let mut h = Fnv::new();

    // P_hard = ⟨#cr, #primary, #secondary, gap⟩.
    h.tag(b'H');
    h.f64(instance.hard.credits);
    h.usize(instance.hard.n_primary);
    h.usize(instance.hard.n_secondary);
    h.usize(instance.hard.gap);

    // P_soft = ⟨T_ideal, IT⟩. The ideal-topic vector hashes with its
    // length (vocabulary size) so a prefix-equal vector over a larger
    // vocabulary is distinct.
    h.tag(b'S');
    h.usize(instance.soft.ideal_topics.len());
    let bits = instance.soft.ideal_topics.to_bits();
    h.usize(bits.len());
    h.bytes(&bits);
    h.tag(b'T');
    h.usize(instance.soft.templates.len());
    for template in instance.soft.templates.templates() {
        h.usize(template.len());
        for slot in template.slots() {
            // SlotKind is a two-variant enum; encode explicitly rather
            // than via discriminant so reordering variants later cannot
            // silently change every signature.
            h.tag(if template_slot_is_primary(*slot) {
                b'P'
            } else {
                b's'
            });
        }
    }

    // Trip overlay (absent for course instances — the absence itself is
    // part of the signature).
    match &instance.trip {
        None => h.tag(b'0'),
        Some(t) => {
            h.tag(b'1');
            match t.max_distance_km {
                None => h.tag(b'n'),
                Some(d) => {
                    h.tag(b'd');
                    h.f64(d);
                }
            }
            h.tag(u8::from(t.no_consecutive_same_theme));
        }
    }

    h.finish()
}

fn template_slot_is_primary(slot: tpp_model::SlotKind) -> bool {
    matches!(slot, tpp_model::SlotKind::Primary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_model::TripConstraints;

    fn course_instance() -> PlanningInstance {
        PlanningInstance {
            catalog: tpp_model::toy::table2_catalog(),
            hard: tpp_model::toy::table2_hard(),
            soft: tpp_model::toy::table2_soft(),
            trip: None,
            default_start: Some(tpp_model::ItemId(0)),
        }
    }

    #[test]
    fn signature_is_deterministic() {
        let a = course_instance();
        let b = course_instance();
        assert_eq!(constraint_signature(&a), constraint_signature(&b));
    }

    #[test]
    fn hard_constraint_changes_move_the_signature() {
        let base = course_instance();
        let mut gap = course_instance();
        gap.hard.gap += 1;
        let mut credits = course_instance();
        credits.hard.credits += 1.0;
        assert_ne!(constraint_signature(&base), constraint_signature(&gap));
        assert_ne!(constraint_signature(&base), constraint_signature(&credits));
    }

    #[test]
    fn soft_constraint_changes_move_the_signature() {
        let base = course_instance();
        let mut topics = course_instance();
        topics.soft.ideal_topics.set(tpp_model::TopicId(0));
        let flipped = constraint_signature(&topics);
        topics.soft.ideal_topics.unset(tpp_model::TopicId(0));
        let restored = constraint_signature(&topics);
        assert_ne!(constraint_signature(&base), flipped);
        // Unset may or may not restore the base vector depending on the
        // toy instance; the invariant is determinism after round-trip.
        let _ = restored;
    }

    #[test]
    fn trip_overlay_is_part_of_the_signature() {
        let course = course_instance();
        let mut trip = course_instance();
        trip.trip = Some(TripConstraints::default());
        assert_ne!(constraint_signature(&course), constraint_signature(&trip));
        let mut trip2 = course_instance();
        trip2.trip = Some(TripConstraints {
            max_distance_km: None,
            ..TripConstraints::default()
        });
        assert_ne!(constraint_signature(&trip), constraint_signature(&trip2));
    }

    #[test]
    fn datasets_have_distinct_signatures() {
        // The benchmark datasets differ in constraints, not just items;
        // their signatures must not collide.
        use std::collections::HashSet;
        let sigs: HashSet<u64> = [
            tpp_datagen::univ1_ds_ct(tpp_datagen::defaults::UNIV1_SEED),
            tpp_datagen::univ2_ds(tpp_datagen::defaults::UNIV2_SEED),
            tpp_datagen::nyc(tpp_datagen::defaults::NYC_SEED).instance,
            tpp_datagen::paris(tpp_datagen::defaults::PARIS_SEED).instance,
        ]
        .iter()
        .map(constraint_signature)
        .collect();
        assert_eq!(sigs.len(), 4, "signature collision across datasets");
    }
}
