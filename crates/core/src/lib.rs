//! # tpp-core
//!
//! The paper's primary contribution: **RL-Planner**, a computational
//! framework for the Task Planning Problem modeled as a constrained MDP
//! (§III).
//!
//! * [`reward`] — the weighted reward design of Eq. 2–7: the gated
//!   combination `R = θ · [δ · AvgSim + β · weight_type]` with
//!   `θ = r1 · r2` (topic-coverage gate × antecedent-gap gate) and the
//!   Levenshtein-inspired interleaving similarity kernel.
//! * [`mod@env`] — deterministic discrete CMDP environments over the complete
//!   item graph, instantiated for course planning (fixed horizon
//!   `H = #cr / cr`) and trip planning (visit-time budget, distance
//!   threshold, no-consecutive-theme gap).
//! * [`planner`] — Algorithm 1: SARSA policy learning and greedy
//!   Q-table plan recommendation.
//! * [`score`] — the evaluation score (Eq. 7 for courses; popularity for
//!   trips; 0 on any hard-constraint violation).
//! * [`transfer`] — cross-universe policy transport for the §IV-D
//!   transfer-learning case studies.
//! * [`feedback`] — the §VI future-work extension: an adaptive loop
//!   folding binary / categorical / distributional user feedback into
//!   the learned policy.

#![warn(missing_docs)]

pub mod env;
pub mod feedback;
pub mod params;
pub mod planner;
pub mod reward;
pub mod score;
pub mod signature;
pub mod transfer;

pub use env::{GateCounts, GateReject, TppEnv};
pub use feedback::{Feedback, FeedbackConfig, FeedbackLoop};
pub use params::{PlannerParams, QReprMode, ShortlistMode, SimAggregate, StartPolicy, TypeWeights};
pub use planner::{LearnedPolicy, RlPlanner};
pub use reward::{InterleavingKernel, RewardModel, SimTracker};
pub use score::{plan_violations, raw_score, score_plan};
pub use signature::constraint_signature;
pub use transfer::{course_mapping_by_code, poi_mapping_by_theme, transfer_policy};
// The cooperative compute budget threaded through the planner loop
// (serving deadlines, `train --max-seconds`) lives in `tpp-rl` so the
// RL substrate's rollouts can share it; re-exported here because the
// planner API is where most callers meet it.
pub use tpp_rl::{Budget, BudgetStop, DENSE_AUTO_MAX};
