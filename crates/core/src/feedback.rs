//! Feedback-adaptive planning — the paper's §VI future work, implemented.
//!
//! *"Feedback could come as binary values (useful item / not useful),
//! categorical rating (e.g., on a scale of 1 – 5), or as a probability
//! distribution. This will allow us to create a loop that accounts for
//! effectiveness and incorporate that in future design choices."*
//!
//! The loop is tabular, like the planner it adapts: each observation is
//! reduced to a **utility** in `[-1, 1]`; applying the feedback shifts
//! the learned Q mass toward (or away from) the rated item, and items
//! whose cumulative utility falls below a threshold are excluded from
//! subsequent recommendations outright.

use crate::params::PlannerParams;
use crate::planner::{LearnedPolicy, RlPlanner};
use tpp_model::{ItemId, Plan, PlanningInstance};

/// One piece of user feedback about a recommended item.
#[derive(Debug, Clone, PartialEq)]
pub enum Feedback {
    /// Useful / not useful.
    Binary(bool),
    /// A 1–5 rating.
    Rating(u8),
    /// A probability distribution over the 1–5 rating levels
    /// (re-normalized if it does not sum to 1).
    Distribution([f64; 5]),
}

impl Feedback {
    /// Reduces the feedback to a utility in `[-1, 1]`
    /// (3 stars ≙ neutral 0).
    pub fn utility(&self) -> f64 {
        match self {
            Feedback::Binary(true) => 1.0,
            Feedback::Binary(false) => -1.0,
            Feedback::Rating(r) => {
                let r = f64::from((*r).clamp(1, 5));
                (r - 3.0) / 2.0
            }
            Feedback::Distribution(p) => {
                let total: f64 = p.iter().sum();
                if total <= 0.0 {
                    return 0.0;
                }
                let mean: f64 = p
                    .iter()
                    .enumerate()
                    .map(|(i, &pi)| (i as f64 + 1.0) * pi / total)
                    .sum();
                (mean - 3.0) / 2.0
            }
        }
    }
}

/// Configuration of the feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackConfig {
    /// Q-shift per unit utility, as a fraction of the table's magnitude.
    pub learning_rate: f64,
    /// Cumulative utility at or below which an item is excluded from
    /// future recommendations.
    pub exclude_threshold: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            learning_rate: 0.25,
            exclude_threshold: -1.0,
        }
    }
}

/// The adaptive planning loop: wraps a learned policy and folds user
/// feedback into it between recommendations.
#[derive(Debug, Clone)]
pub struct FeedbackLoop {
    policy: LearnedPolicy,
    config: FeedbackConfig,
    /// Cumulative utility per item.
    utilities: Vec<f64>,
    /// Items currently excluded.
    banned: Vec<ItemId>,
}

impl FeedbackLoop {
    /// Starts a loop around a learned policy for a catalog of `n` items.
    pub fn new(policy: LearnedPolicy, n_items: usize, config: FeedbackConfig) -> Self {
        assert_eq!(
            policy.q.n_states(),
            n_items,
            "policy shape must match the catalog"
        );
        FeedbackLoop {
            policy,
            config,
            utilities: vec![0.0; n_items],
            banned: Vec::new(),
        }
    }

    /// Records feedback about `item` and folds it into the policy:
    /// every Q entry *toward* the item shifts by
    /// `learning_rate · utility · scale`, and the item is banned once its
    /// cumulative utility reaches the exclusion threshold.
    pub fn observe(&mut self, item: ItemId, feedback: &Feedback) {
        let idx = item.index();
        assert!(idx < self.utilities.len(), "item out of range");
        let u = feedback.utility();
        self.utilities[idx] += u;
        let scale = self.policy.q.max_abs().max(1.0);
        let shift = self.config.learning_rate * u * scale;
        for s in 0..self.policy.q.n_states() {
            if s != idx {
                let v = self.policy.q.get(s, idx);
                self.policy.q.set(s, idx, v + shift);
            }
        }
        if self.utilities[idx] <= self.config.exclude_threshold && !self.banned.contains(&item) {
            self.banned.push(item);
        }
    }

    /// Cumulative utility of an item.
    pub fn utility_of(&self, item: ItemId) -> f64 {
        self.utilities.get(item.index()).copied().unwrap_or(0.0)
    }

    /// Items currently excluded from recommendations.
    pub fn banned(&self) -> &[ItemId] {
        &self.banned
    }

    /// The adapted policy.
    pub fn policy(&self) -> &LearnedPolicy {
        &self.policy
    }

    /// Recommends a plan under the adapted policy, honouring exclusions.
    pub fn replan(
        &self,
        instance: &PlanningInstance,
        params: &PlannerParams,
        start: ItemId,
    ) -> Plan {
        RlPlanner::recommend_with_exclusions(&self.policy.q, instance, params, start, &self.banned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_datagen::defaults::UNIV1_SEED;

    fn setup() -> (PlanningInstance, PlannerParams, LearnedPolicy, ItemId) {
        let instance = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let start = instance.default_start.unwrap();
        let params = PlannerParams::univ1_defaults().with_start(start);
        let (policy, _) = RlPlanner::learn(&instance, &params, 0);
        (instance, params, policy, start)
    }

    #[test]
    fn utilities_map_to_expected_range() {
        assert_eq!(Feedback::Binary(true).utility(), 1.0);
        assert_eq!(Feedback::Binary(false).utility(), -1.0);
        assert_eq!(Feedback::Rating(3).utility(), 0.0);
        assert_eq!(Feedback::Rating(5).utility(), 1.0);
        assert_eq!(Feedback::Rating(1).utility(), -1.0);
        // Out-of-range ratings clamp.
        assert_eq!(Feedback::Rating(9).utility(), 1.0);
        assert_eq!(Feedback::Rating(0).utility(), -1.0);
    }

    #[test]
    fn distribution_utility_is_mean_based() {
        // All mass on 5 → +1; uniform → 0; all on 1 → −1.
        assert_eq!(
            Feedback::Distribution([0.0, 0.0, 0.0, 0.0, 1.0]).utility(),
            1.0
        );
        let u = Feedback::Distribution([0.2; 5]).utility();
        assert!(u.abs() < 1e-12, "{u}");
        assert_eq!(
            Feedback::Distribution([1.0, 0.0, 0.0, 0.0, 0.0]).utility(),
            -1.0
        );
        // Unnormalized distributions are re-normalized.
        let a = Feedback::Distribution([0.0, 0.0, 0.0, 0.0, 2.0]).utility();
        assert_eq!(a, 1.0);
        // Degenerate all-zero → neutral.
        assert_eq!(Feedback::Distribution([0.0; 5]).utility(), 0.0);
    }

    #[test]
    fn negative_feedback_excludes_item_from_replan() {
        let (instance, params, policy, start) = setup();
        let plan0 = RlPlanner::recommend(&policy, &instance, &params, start);
        // Dislike the second recommended item strongly.
        let disliked = plan0.items()[1];
        let mut lp = FeedbackLoop::new(policy, instance.catalog.len(), FeedbackConfig::default());
        lp.observe(disliked, &Feedback::Binary(false));
        assert_eq!(lp.banned(), &[disliked]);
        let plan1 = lp.replan(&instance, &params, start);
        assert!(!plan1.contains(disliked), "banned item recommended again");
        assert_eq!(plan1.len(), instance.horizon());
    }

    #[test]
    fn mild_negative_feedback_does_not_ban() {
        let (instance, params, policy, start) = setup();
        let plan0 = RlPlanner::recommend(&policy, &instance, &params, start);
        let item = plan0.items()[2];
        let mut lp = FeedbackLoop::new(policy, instance.catalog.len(), FeedbackConfig::default());
        lp.observe(item, &Feedback::Rating(2)); // utility −0.5 > −1.0
        assert!(lp.banned().is_empty());
        assert_eq!(lp.utility_of(item), -0.5);
        // Repeated mild negatives accumulate to a ban.
        lp.observe(item, &Feedback::Rating(2));
        assert_eq!(lp.banned(), &[item]);
    }

    #[test]
    fn positive_feedback_raises_q_toward_item() {
        let (instance, _params, policy, _start) = setup();
        let liked = instance.catalog.by_code("CS 634").unwrap().id;
        let before: f64 = (0..policy.q.n_states())
            .map(|s| policy.q.get(s, liked.index()))
            .sum();
        let mut lp = FeedbackLoop::new(policy, instance.catalog.len(), FeedbackConfig::default());
        lp.observe(liked, &Feedback::Rating(5));
        let after: f64 = (0..lp.policy().q.n_states())
            .map(|s| lp.policy().q.get(s, liked.index()))
            .sum();
        assert!(after > before, "positive feedback must raise Q mass");
    }

    #[test]
    fn replan_stays_valid_after_feedback() {
        let (instance, params, policy, start) = setup();
        let plan0 = RlPlanner::recommend(&policy, &instance, &params, start);
        let mut lp = FeedbackLoop::new(policy, instance.catalog.len(), FeedbackConfig::default());
        // Dislike two electives (never ban cores: a core ban can make the
        // split infeasible, which is the advisor's call, not the loop's).
        let electives: Vec<ItemId> = plan0
            .items()
            .iter()
            .copied()
            .filter(|&id| !instance.catalog.item(id).is_primary())
            .take(2)
            .collect();
        for &e in &electives {
            lp.observe(e, &Feedback::Binary(false));
        }
        let plan1 = lp.replan(&instance, &params, start);
        for &e in &electives {
            assert!(!plan1.contains(e));
        }
        // The replan still fills the horizon with distinct items.
        assert_eq!(plan1.len(), instance.horizon());
        let mut seen = std::collections::HashSet::new();
        for &id in plan1.items() {
            assert!(seen.insert(id));
        }
    }

    #[test]
    #[should_panic(expected = "policy shape")]
    fn shape_mismatch_panics() {
        let (_, _, policy, _) = setup();
        let _ = FeedbackLoop::new(policy, 3, FeedbackConfig::default());
    }
}
