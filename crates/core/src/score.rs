//! Plan scoring (§IV-A "Measures").
//!
//! * Any hard-constraint violation ⇒ score 0 ("If the hard constraints
//!   are not satisfied, those are marked with values 0", §IV-E).
//! * Course plans: Eq. 7 similarity per ideal composition, best template
//!   wins; a perfect length-`H` plan scores `H` (the gold standards of
//!   10 / 15).
//! * Trip plans: the mean POI popularity score, whose ceiling is "the
//!   highest popularity score of any POI" = 5.

use crate::reward::InterleavingKernel;
use tpp_geo::haversine_km;
use tpp_model::{validate_plan, validate_trip_plan, Plan, PlanningInstance, Violation};

/// All hard-constraint violations of `plan` under `instance`.
pub fn plan_violations(instance: &PlanningInstance, plan: &Plan) -> Vec<Violation> {
    match &instance.trip {
        None => validate_plan(plan, &instance.catalog, &instance.hard),
        Some(trip) => {
            let catalog = &instance.catalog;
            validate_trip_plan(plan, catalog, &instance.hard, trip, |a, b| {
                let pa = catalog.item(a).poi.expect("trip items carry attrs");
                let pb = catalog.item(b).poi.expect("trip items carry attrs");
                haversine_km(pa.lat, pa.lon, pb.lat, pb.lon)
            })
        }
    }
}

/// The paper's evaluation score for a plan: 0 when any hard constraint is
/// violated; otherwise the Eq. 7 best-template similarity (courses) or
/// the mean popularity (trips).
pub fn score_plan(instance: &PlanningInstance, plan: &Plan) -> f64 {
    if plan.is_empty() || !plan_violations(instance, plan).is_empty() {
        return 0.0;
    }
    raw_score(instance, plan)
}

/// The score ignoring validity — useful for diagnosing *how far* an
/// invalid plan is from good.
pub fn raw_score(instance: &PlanningInstance, plan: &Plan) -> f64 {
    if instance.is_trip() {
        let total: f64 = plan
            .items()
            .iter()
            .map(|&id| {
                instance
                    .catalog
                    .item(id)
                    .poi
                    .expect("trip items carry attrs")
                    .popularity
            })
            .sum();
        if plan.is_empty() {
            0.0
        } else {
            total / plan.len() as f64
        }
    } else {
        let kinds = plan.kind_sequence(&instance.catalog);
        InterleavingKernel::best(&kinds, &instance.soft.templates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_model::toy;
    use tpp_model::{ItemId, PlanningInstance, TripConstraints};

    fn course_instance() -> PlanningInstance {
        PlanningInstance {
            catalog: toy::table2_catalog(),
            hard: toy::table2_hard(),
            soft: toy::table2_soft(),
            trip: None,
            default_start: Some(ItemId(0)),
        }
    }

    #[test]
    fn paper_exemplar_scores_perfect() {
        // m1 → m2 → m4 → m5 → m6 → m3 fully realizes I2 = PSSSPP and
        // satisfies all hard constraints ⇒ score = H = 6.
        let inst = course_instance();
        let plan = Plan::from_codes(&inst.catalog, &["m1", "m2", "m4", "m5", "m6", "m3"]).unwrap();
        assert!(plan_violations(&inst, &plan).is_empty());
        assert_eq!(score_plan(&inst, &plan), 6.0);
    }

    #[test]
    fn violated_plan_scores_zero_but_raw_score_positive() {
        let inst = course_instance();
        // m5 right after m2: gap violation.
        let plan = Plan::from_codes(&inst.catalog, &["m1", "m2", "m5", "m4", "m6", "m3"]).unwrap();
        assert!(!plan_violations(&inst, &plan).is_empty());
        assert_eq!(score_plan(&inst, &plan), 0.0);
        assert!(raw_score(&inst, &plan) > 0.0);
    }

    #[test]
    fn empty_plan_scores_zero() {
        let inst = course_instance();
        assert_eq!(score_plan(&inst, &Plan::new()), 0.0);
    }

    fn trip_instance() -> PlanningInstance {
        let mut hard = toy::paris_toy_hard();
        hard.credits = 7.0; // the exemplar totals 6.5h
        PlanningInstance {
            catalog: toy::paris_toy_catalog(),
            hard,
            soft: toy::paris_toy_soft(),
            trip: Some(TripConstraints {
                max_distance_km: None,
                no_consecutive_same_theme: true,
            }),
            default_start: Some(ItemId(1)),
        }
    }

    #[test]
    fn trip_score_is_mean_popularity() {
        let inst = trip_instance();
        // Louvre(5.0) → Le Cinq(4.1) → Eiffel(5.0) → Rue des Martyrs(3.6)
        // → Seine(4.5): the §II-B2 exemplar, valid under the relaxed
        // budget. Mean popularity = 22.2 / 5 = 4.44.
        let plan = Plan::from_codes(
            &inst.catalog,
            &[
                "louvre museum",
                "le cinq",
                "eiffel tower",
                "rue des martyrs",
                "river seine",
            ],
        )
        .unwrap();
        assert!(plan_violations(&inst, &plan).is_empty());
        let s = score_plan(&inst, &plan);
        assert!((s - 4.44).abs() < 1e-9, "score {s}");
    }

    #[test]
    fn trip_violation_zeroes_score() {
        let mut inst = trip_instance();
        inst.hard.credits = 5.0; // exemplar needs 6.5h
        let plan = Plan::from_codes(
            &inst.catalog,
            &[
                "louvre museum",
                "le cinq",
                "eiffel tower",
                "rue des martyrs",
                "river seine",
            ],
        )
        .unwrap();
        assert_eq!(score_plan(&inst, &plan), 0.0);
    }

    #[test]
    fn course_score_upper_bounded_by_h() {
        let inst = course_instance();
        let plan = Plan::from_codes(&inst.catalog, &["m1", "m2", "m4", "m5", "m6", "m3"]).unwrap();
        assert!(score_plan(&inst, &plan) <= inst.horizon() as f64);
    }
}
