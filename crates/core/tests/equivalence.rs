//! Golden equivalence suite: the incremental hot-path engine (distance
//! matrix, `SimTracker` prefix counters, cached gate state) must be
//! **bit-identical** to the naive engine (full Eq. 6/7 prefix rescans,
//! per-probe haversine) on every benchmark dataset.
//!
//! Two layers of pinning:
//!
//! 1. A lockstep environment walk: at every step the two engines must
//!    agree on the valid-action set and on `peek_reward` for **every**
//!    candidate (compared via `f64::to_bits`, not a tolerance).
//! 2. Full `learn()` + `recommend()`: same seed → identical Q tables,
//!    identical recommended plans, identical scores.
//!
//! If these ever diverge, the incremental engine has drifted from the
//! paper's reward semantics — the naive path is the specification.

use tpp_core::{
    score_plan, PlannerParams, QReprMode, RlPlanner, ShortlistMode, StartPolicy, TppEnv,
};
use tpp_datagen::defaults::{CITY_SEED, NYC_SEED, PARIS_SEED, UNIV1_SEED, UNIV2_SEED};
use tpp_model::PlanningInstance;
use tpp_rl::Environment;

/// The four benchmark datasets, with training budgets trimmed so the
/// suite stays in CI-smoke territory (equivalence holds per step, so
/// episode count only affects coverage, not the property).
fn datasets() -> Vec<(&'static str, PlanningInstance, PlannerParams)> {
    let mut univ1 = PlannerParams::univ1_defaults();
    univ1.episodes = 40;
    let mut univ2 = PlannerParams::univ2_defaults();
    univ2.episodes = 20;
    let mut trip = PlannerParams::trip_defaults();
    trip.episodes = 15;
    vec![
        ("ds-ct", tpp_datagen::univ1_ds_ct(UNIV1_SEED), univ1),
        ("univ2", tpp_datagen::univ2_ds(UNIV2_SEED), univ2),
        ("nyc", tpp_datagen::nyc(NYC_SEED).instance, trip.clone()),
        ("paris", tpp_datagen::paris(PARIS_SEED).instance, trip),
    ]
}

fn start_of(instance: &PlanningInstance) -> usize {
    instance.default_start.map(|id| id.0 as usize).unwrap_or(0)
}

/// Walks both engines in lockstep along the reward-greedy trajectory,
/// asserting bit-identical gates and rewards at every step.
#[test]
fn lockstep_walk_is_bit_identical_on_all_datasets() {
    for (name, instance, params) in datasets() {
        let naive_params = params.clone().with_naive_hot_path(true);
        let mut fast = TppEnv::new(&instance, &params);
        let mut naive = TppEnv::new(&instance, &naive_params);
        let start = start_of(&instance);
        fast.reset(start);
        naive.reset(start);
        let (mut fa, mut na) = (Vec::new(), Vec::new());
        let mut steps = 0usize;
        loop {
            fast.valid_actions(&mut fa);
            naive.valid_actions(&mut na);
            assert_eq!(fa, na, "{name}: valid sets diverge at step {steps}");
            if fa.is_empty() {
                break;
            }
            // Every candidate's peeked reward must match bit-for-bit,
            // and the greedy argmax drives the walk.
            let mut best = (fa[0], f64::NEG_INFINITY);
            for &cand in &fa {
                let rf = fast.peek_reward(cand);
                let rn = naive.peek_reward(cand);
                assert_eq!(
                    rf.to_bits(),
                    rn.to_bits(),
                    "{name}: peek_reward({cand}) diverges at step {steps}: {rf} vs {rn}"
                );
                if rf > best.1 {
                    best = (cand, rf);
                }
            }
            let of = fast.step(best.0);
            let on = naive.step(best.0);
            assert_eq!(
                of.reward.to_bits(),
                on.reward.to_bits(),
                "{name}: step reward diverges at step {steps}"
            );
            assert_eq!(of.done, on.done, "{name}: termination diverges");
            steps += 1;
            if of.done {
                break;
            }
        }
        assert!(steps > 0, "{name}: walk never advanced");
        assert_eq!(
            fast.plan().items(),
            naive.plan().items(),
            "{name}: plans diverge"
        );
    }
}

/// The dense-vs-sparse battery: the four benchmark datasets plus a
/// seeded 1k-POI city catalog. The city instance is the one the sparse
/// representation exists for; at 1 000 items it still fits a dense
/// table, which is exactly what makes the bit-identity provable.
fn repr_datasets() -> Vec<(&'static str, PlanningInstance, PlannerParams)> {
    let mut out = datasets();
    let city = tpp_datagen::city_1k(CITY_SEED);
    // The generator promises a known-feasible gold plan; pin that here
    // so a scoring regression can't hide behind representation noise.
    assert!(
        score_plan(&city.instance, &city.gold) > 0.0,
        "city-1k gold plan must score positive"
    );
    let mut trip = PlannerParams::trip_defaults();
    trip.episodes = 8;
    out.push(("city-1k", city.instance, trip));
    out
}

/// Walks a dense-Q-configured environment and a sparse-Q-configured one
/// in lockstep. The representation knob must be invisible to the
/// environment: valid sets and peeked rewards bit-identical at every
/// step. Shortlisting is pinned off on both sides — it is a documented
/// approximation, not an equivalence.
#[test]
fn lockstep_walk_is_repr_independent() {
    for (name, instance, params) in repr_datasets() {
        let dense_params = params
            .clone()
            .with_q_repr(QReprMode::Dense)
            .with_shortlist(ShortlistMode::Off);
        let sparse_params = params
            .with_q_repr(QReprMode::Sparse)
            .with_shortlist(ShortlistMode::Off);
        let mut dense = TppEnv::new(&instance, &dense_params);
        let mut sparse = TppEnv::new(&instance, &sparse_params);
        let start = start_of(&instance);
        dense.reset(start);
        sparse.reset(start);
        let (mut da, mut sa) = (Vec::new(), Vec::new());
        let mut steps = 0usize;
        loop {
            dense.valid_actions(&mut da);
            sparse.valid_actions(&mut sa);
            assert_eq!(da, sa, "{name}: valid sets diverge at step {steps}");
            if da.is_empty() {
                break;
            }
            let mut best = (da[0], f64::NEG_INFINITY);
            for &cand in &da {
                let rd = dense.peek_reward(cand);
                let rs = sparse.peek_reward(cand);
                assert_eq!(
                    rd.to_bits(),
                    rs.to_bits(),
                    "{name}: peek_reward({cand}) diverges at step {steps}"
                );
                if rd > best.1 {
                    best = (cand, rd);
                }
            }
            let od = dense.step(best.0);
            let os = sparse.step(best.0);
            assert_eq!(
                od.reward.to_bits(),
                os.reward.to_bits(),
                "{name}: step reward diverges at step {steps}"
            );
            assert_eq!(od.done, os.done, "{name}: termination diverges");
            steps += 1;
            if od.done {
                break;
            }
        }
        assert!(steps > 0, "{name}: walk never advanced");
        assert_eq!(
            dense.plan().items(),
            sparse.plan().items(),
            "{name}: plans diverge"
        );
    }
}

/// Full training runs under `QReprMode::Dense` vs `QReprMode::Sparse`:
/// every Q lookup, the recommended plan, and its score must be
/// bit-identical — the sparse table is a storage change, not a policy
/// change.
#[test]
fn training_is_bit_identical_dense_vs_sparse() {
    for (name, instance, params) in repr_datasets() {
        let start = instance.default_start.unwrap_or(tpp_model::ItemId(0));
        let base = params.with_start(start).with_shortlist(ShortlistMode::Off);
        let dense_params = base.clone().with_q_repr(QReprMode::Dense);
        let sparse_params = base.with_q_repr(QReprMode::Sparse);
        for seed in [0u64, 7] {
            let (dense_policy, _) = RlPlanner::learn(&instance, &dense_params, seed);
            let (sparse_policy, _) = RlPlanner::learn(&instance, &sparse_params, seed);
            assert!(!dense_policy.q.is_sparse(), "{name}: Dense mode not dense");
            assert!(
                sparse_policy.q.is_sparse(),
                "{name}: Sparse mode not sparse"
            );
            // Every materialized sparse entry matches the dense cell
            // bit-for-bit...
            for (s, a, v) in sparse_policy.q.iter_set() {
                assert_eq!(
                    v.to_bits(),
                    dense_policy.q.get(s, a).to_bits(),
                    "{name} seed {seed}: Q({s},{a}) diverges"
                );
            }
            // ...and every dense non-zero cell is materialized, so the
            // two tables agree on *all* n² lookups, not just the
            // sparse support.
            for (s, a, v) in dense_policy.q.iter_set() {
                if v != 0.0 {
                    assert_eq!(
                        v.to_bits(),
                        sparse_policy.q.get(s, a).to_bits(),
                        "{name} seed {seed}: dense Q({s},{a}) missing from sparse"
                    );
                }
            }
            let dense_plan = RlPlanner::recommend(&dense_policy, &instance, &dense_params, start);
            let sparse_plan =
                RlPlanner::recommend(&sparse_policy, &instance, &sparse_params, start);
            assert_eq!(
                dense_plan.items(),
                sparse_plan.items(),
                "{name} seed {seed}: recommended plans diverge"
            );
            assert_eq!(
                score_plan(&instance, &dense_plan).to_bits(),
                score_plan(&instance, &sparse_plan).to_bits(),
                "{name} seed {seed}: scores diverge"
            );
        }
    }
}

/// Full training runs: the learned Q table, recommended plan, and score
/// must be identical for the naive and incremental engines under the
/// same seed.
#[test]
fn training_is_bit_identical_on_all_datasets() {
    for (name, instance, params) in datasets() {
        let start = instance.default_start.unwrap_or(tpp_model::ItemId(0));
        let params = params.with_start(start);
        let naive_params = params.clone().with_naive_hot_path(true);
        assert_eq!(params.start, StartPolicy::Fixed(start));
        for seed in [0u64, 7] {
            let (fast_policy, _) = RlPlanner::learn(&instance, &params, seed);
            let (naive_policy, _) = RlPlanner::learn(&instance, &naive_params, seed);
            let fast_q = fast_policy.q.values();
            let naive_q = naive_policy.q.values();
            assert_eq!(fast_q.len(), naive_q.len());
            let diverged = fast_q
                .iter()
                .zip(naive_q)
                .position(|(a, b)| a.to_bits() != b.to_bits());
            assert_eq!(
                diverged, None,
                "{name} seed {seed}: Q tables diverge at flat index {diverged:?}"
            );
            let fast_plan = RlPlanner::recommend(&fast_policy, &instance, &params, start);
            let naive_plan = RlPlanner::recommend(&naive_policy, &instance, &naive_params, start);
            assert_eq!(
                fast_plan.items(),
                naive_plan.items(),
                "{name} seed {seed}: recommended plans diverge"
            );
            let fast_score = score_plan(&instance, &fast_plan);
            let naive_score = score_plan(&instance, &naive_plan);
            assert_eq!(
                fast_score.to_bits(),
                naive_score.to_bits(),
                "{name} seed {seed}: scores diverge"
            );
        }
    }
}
