//! Generational checkpoint directories with corruption fallback.
//!
//! A [`CheckpointSet`] manages a directory of training checkpoints
//! (`ckpt-00001.qpol`, `ckpt-00002.qpol`, …) plus a human-readable
//! `LATEST` pointer file. Writes are atomic (see [`crate::atomic`]) and
//! only the newest `keep` generations are retained. The loader walks
//! generations newest-first and returns the first one that passes
//! magic/version/checksum validation, emitting a `tpp_obs` warning per
//! corrupt generation it skips — so a torn or bit-rotted newest
//! checkpoint degrades to the last good one instead of killing the run.
//!
//! The `LATEST` file is advisory (for humans and external tooling); the
//! loader always re-derives the newest generation from the directory
//! listing, so a stale or missing pointer can never mislead recovery.

use crate::atomic::atomic_write;
use crate::error::StoreError;
use crate::policy::{decode_checkpoint, encode_checkpoint};
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};
use tpp_obs::{obs_event, Level};
use tpp_rl::TrainCheckpoint;

/// Prefix of generation file names.
const PREFIX: &str = "ckpt-";
/// Extension of generation file names.
const EXT: &str = "qpol";
/// Name of the advisory newest-generation pointer file.
const LATEST: &str = "LATEST";

/// A keep-last-K generational checkpoint directory.
pub struct CheckpointSet<'f> {
    fs: &'f dyn Vfs,
    dir: PathBuf,
    keep: usize,
}

impl<'f> CheckpointSet<'f> {
    /// Opens (or designates) `dir` as a checkpoint set retaining the
    /// newest `keep` generations (clamped to at least 1). The directory
    /// is created lazily on first save.
    pub fn new(fs: &'f dyn Vfs, dir: impl Into<PathBuf>, keep: usize) -> Self {
        CheckpointSet {
            fs,
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of generation `generation`.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("{PREFIX}{generation:05}.{EXT}"))
    }

    /// Parses a generation number out of a directory entry, ignoring
    /// anything that is not a `ckpt-NNNNN.qpol` file (stranded `.tmp`
    /// staging files, `LATEST`, stray user files).
    fn parse_generation(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let stem = name.strip_prefix(PREFIX)?;
        let digits = stem.strip_suffix(&format!(".{EXT}"))?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    /// All generation numbers present, ascending. A missing directory
    /// is an empty set, not an error.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        if !self.fs.exists(&self.dir) {
            return Ok(Vec::new());
        }
        let entries = self
            .fs
            .read_dir(&self.dir)
            .map_err(|e| StoreError::at(&self.dir, e.into()))?;
        let mut gens: Vec<u64> = entries
            .iter()
            .filter_map(|p| Self::parse_generation(p))
            .collect();
        gens.sort_unstable();
        gens.dedup();
        Ok(gens)
    }

    /// Writes `ckpt` as the next generation, updates `LATEST`, and
    /// prunes generations older than the newest `keep`. Returns the new
    /// generation number.
    pub fn save(&self, ckpt: &TrainCheckpoint) -> Result<u64, StoreError> {
        let gens = self.generations()?;
        let generation = gens.last().map_or(1, |g| g + 1);
        let path = self.generation_path(generation);
        atomic_write(self.fs, &path, &encode_checkpoint(ckpt))?;
        let pointer = format!(
            "{}\n",
            path.file_name()
                .expect("generation file name")
                .to_string_lossy()
        );
        atomic_write(self.fs, self.dir.join(LATEST), pointer.as_bytes())?;
        obs_event!(
            Level::Debug,
            "store.ckpt.saved",
            generation = generation,
            episode = ckpt.episode,
        );
        // Prune beyond keep-last-K. The new generation is durable at
        // this point, so a crash mid-prune only leaves extra history.
        for &old in gens.iter().rev().skip(self.keep.saturating_sub(1)) {
            let old_path = self.generation_path(old);
            self.fs
                .remove_file(&old_path)
                .map_err(|e| StoreError::at(&old_path, e.into()))?;
        }
        Ok(generation)
    }

    /// Loads the newest generation that decodes cleanly, newest-first,
    /// emitting a warn event per corrupt generation skipped.
    ///
    /// Returns `Ok(None)` for an empty (or absent) set, and
    /// [`StoreError::NoValidCheckpoint`] when generations exist but
    /// every one of them is corrupt.
    pub fn load_latest(&self) -> Result<Option<(u64, TrainCheckpoint)>, StoreError> {
        let gens = self.generations()?;
        let mut tried = 0usize;
        for &generation in gens.iter().rev() {
            let path = self.generation_path(generation);
            let result = self
                .fs
                .read(&path)
                .map_err(StoreError::from)
                .and_then(|data| decode_checkpoint(&data));
            match result {
                Ok(ckpt) => {
                    if tried > 0 {
                        obs_event!(
                            Level::Warn,
                            "store.ckpt.fallback",
                            generation = generation,
                            skipped = tried,
                        );
                    }
                    return Ok(Some((generation, ckpt)));
                }
                Err(e) => {
                    tried += 1;
                    obs_event!(
                        Level::Warn,
                        "store.ckpt.corrupt_generation",
                        path = path.display().to_string(),
                        error = e.to_string(),
                    );
                }
            }
        }
        if tried > 0 {
            return Err(StoreError::NoValidCheckpoint {
                dir: self.dir.clone(),
                tried,
            });
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealFs;
    use tpp_rl::QTable;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpp-ckpt-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn ckpt(episode: u64) -> TrainCheckpoint {
        let mut q = QTable::square(3);
        q.set(0, 1, episode as f64);
        TrainCheckpoint {
            q,
            episode,
            sched_pos: episode,
            rng_state: [episode, 2, 3, 4],
            visits: vec![1, 2, 3],
            returns: (0..episode).map(|e| e as f64).collect(),
        }
    }

    #[test]
    fn empty_set_loads_none() {
        let dir = tmp_dir("empty");
        let set = CheckpointSet::new(&RealFs, &dir, 3);
        assert!(set.load_latest().unwrap().is_none());
        assert!(set.generations().unwrap().is_empty());
    }

    #[test]
    fn save_load_roundtrip_with_generations() {
        let dir = tmp_dir("gen");
        let set = CheckpointSet::new(&RealFs, &dir, 5);
        assert_eq!(set.save(&ckpt(10)).unwrap(), 1);
        assert_eq!(set.save(&ckpt(20)).unwrap(), 2);
        let (generation, back) = set.load_latest().unwrap().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(back, ckpt(20));
        assert_eq!(set.generations().unwrap(), vec![1, 2]);
        let latest = std::fs::read_to_string(dir.join("LATEST")).unwrap();
        assert_eq!(latest.trim(), "ckpt-00002.qpol");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prunes_to_keep_last_k() {
        let dir = tmp_dir("prune");
        let set = CheckpointSet::new(&RealFs, &dir, 2);
        for e in 1..=5 {
            set.save(&ckpt(e * 10)).unwrap();
        }
        assert_eq!(set.generations().unwrap(), vec![4, 5]);
        let (generation, back) = set.load_latest().unwrap().unwrap();
        assert_eq!(generation, 5);
        assert_eq!(back.episode, 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        let set = CheckpointSet::new(&RealFs, &dir, 3);
        set.save(&ckpt(10)).unwrap();
        set.save(&ckpt(20)).unwrap();
        // Corrupt generation 2 in place.
        let path = set.generation_path(2);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (generation, back) = set.load_latest().unwrap().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(back.episode, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_corrupt_is_a_typed_error() {
        let dir = tmp_dir("allbad");
        let set = CheckpointSet::new(&RealFs, &dir, 3);
        set.save(&ckpt(10)).unwrap();
        std::fs::write(set.generation_path(1), b"garbage").unwrap();
        let err = set.load_latest().unwrap_err();
        assert!(matches!(
            err,
            StoreError::NoValidCheckpoint { tried: 1, .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ignores_foreign_files_and_stranded_tmp() {
        let dir = tmp_dir("foreign");
        let set = CheckpointSet::new(&RealFs, &dir, 3);
        set.save(&ckpt(10)).unwrap();
        std::fs::write(dir.join("ckpt-00009.qpol.tmp"), b"stranded").unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        std::fs::write(dir.join("ckpt-abc.qpol"), b"nope").unwrap();
        assert_eq!(set.generations().unwrap(), vec![1]);
        let (generation, _) = set.load_latest().unwrap().unwrap();
        assert_eq!(generation, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_generation_rules() {
        let p = |s: &str| CheckpointSet::parse_generation(Path::new(s));
        assert_eq!(p("/d/ckpt-00042.qpol"), Some(42));
        assert_eq!(p("/d/ckpt-7.qpol"), Some(7));
        assert_eq!(p("/d/ckpt-.qpol"), None);
        assert_eq!(p("/d/ckpt-12.qpol.tmp"), None);
        assert_eq!(p("/d/LATEST"), None);
        assert_eq!(p("/d/ckpt-12.bin"), None);
    }
}
