//! Generational checkpoint directories with corruption fallback.
//!
//! A [`CheckpointSet`] manages a directory of training checkpoints
//! (`ckpt-00001.qpol`, `ckpt-00002.qpol`, …) plus a human-readable
//! `LATEST` pointer file. Writes are atomic (see [`crate::atomic`]) and
//! only the newest `keep` generations are retained. The loader walks
//! generations newest-first and returns the first one that passes
//! magic/version/checksum validation, emitting a `tpp_obs` warning per
//! corrupt generation it skips — so a torn or bit-rotted newest
//! checkpoint degrades to the last good one instead of killing the run.
//!
//! The `LATEST` file is advisory (for humans and external tooling); the
//! loader always re-derives the newest generation from the directory
//! listing, so a stale or missing pointer can never mislead recovery.

use crate::atomic::atomic_write;
use crate::error::StoreError;
use crate::policy::{decode_checkpoint, encode_checkpoint};
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};
use tpp_obs::{obs_event, Level};
use tpp_rl::TrainCheckpoint;

/// Prefix of generation file names.
const PREFIX: &str = "ckpt-";
/// Extension of generation file names.
const EXT: &str = "qpol";
/// Name of the advisory newest-generation pointer file.
const LATEST: &str = "LATEST";

/// A cheap observation of the newest on-disk generation: its number
/// plus the file's length and mtime. The serving layer's policy cache
/// folds these into a token ([`GenerationStamp::token`]) and treats any
/// token change — a new generation landing, or the newest file being
/// modified in place (bit-rot, chaos corruption) — as an invalidation
/// event, without ever reading the payload on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationStamp {
    /// The newest generation number present.
    pub generation: u64,
    /// Length of that generation's file in bytes.
    pub len: u64,
    /// Its mtime in nanoseconds since the Unix epoch.
    pub mtime_nanos: u128,
}

impl GenerationStamp {
    /// A 64-bit fingerprint of the observation (FNV-1a over the three
    /// fields). Equal stamps yield equal tokens; any field change moves
    /// the token with overwhelming probability.
    pub fn token(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.generation.to_le_bytes());
        eat(&self.len.to_le_bytes());
        eat(&self.mtime_nanos.to_le_bytes());
        h
    }
}

/// A keep-last-K generational checkpoint directory.
pub struct CheckpointSet<'f> {
    fs: &'f dyn Vfs,
    dir: PathBuf,
    keep: usize,
}

impl<'f> CheckpointSet<'f> {
    /// Opens (or designates) `dir` as a checkpoint set retaining the
    /// newest `keep` generations (clamped to at least 1). The directory
    /// is created lazily on first save.
    pub fn new(fs: &'f dyn Vfs, dir: impl Into<PathBuf>, keep: usize) -> Self {
        CheckpointSet {
            fs,
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of generation `generation`.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("{PREFIX}{generation:05}.{EXT}"))
    }

    /// Parses a generation number out of a directory entry, ignoring
    /// anything that is not a `ckpt-NNNNN.qpol` file (stranded `.tmp`
    /// staging files, `LATEST`, stray user files).
    fn parse_generation(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let stem = name.strip_prefix(PREFIX)?;
        let digits = stem.strip_suffix(&format!(".{EXT}"))?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    /// All generation numbers present, ascending. A missing directory
    /// is an empty set, not an error.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        if !self.fs.exists(&self.dir) {
            return Ok(Vec::new());
        }
        let entries = self
            .fs
            .read_dir(&self.dir)
            .map_err(|e| StoreError::at(&self.dir, e.into()))?;
        let mut gens: Vec<u64> = entries
            .iter()
            .filter_map(|p| Self::parse_generation(p))
            .collect();
        gens.sort_unstable();
        gens.dedup();
        Ok(gens)
    }

    /// Observes the newest generation without reading it: number, file
    /// length, mtime. `Ok(None)` for an empty or absent set. This is
    /// the cache-invalidation probe — one `read_dir` plus one `stat`,
    /// no payload I/O, no checksum work.
    pub fn observe_newest(&self) -> Result<Option<GenerationStamp>, StoreError> {
        let gens = self.generations()?;
        let Some(&generation) = gens.last() else {
            return Ok(None);
        };
        let path = self.generation_path(generation);
        let (len, mtime_nanos) = self
            .fs
            .stat(&path)
            .map_err(|e| StoreError::at(&path, e.into()))?;
        Ok(Some(GenerationStamp {
            generation,
            len,
            mtime_nanos,
        }))
    }

    /// Writes `ckpt` as the next generation, updates `LATEST`, and
    /// prunes generations older than the newest `keep`. Returns the new
    /// generation number.
    pub fn save(&self, ckpt: &TrainCheckpoint) -> Result<u64, StoreError> {
        let gens = self.generations()?;
        let generation = gens.last().map_or(1, |g| g + 1);
        let path = self.generation_path(generation);
        atomic_write(self.fs, &path, &encode_checkpoint(ckpt))?;
        let pointer = format!(
            "{}\n",
            path.file_name()
                .expect("generation file name")
                .to_string_lossy()
        );
        atomic_write(self.fs, self.dir.join(LATEST), pointer.as_bytes())?;
        obs_event!(
            Level::Debug,
            "store.ckpt.saved",
            generation = generation,
            episode = ckpt.episode,
        );
        // Prune beyond keep-last-K. The new generation is durable at
        // this point, so a crash mid-prune only leaves extra history.
        for &old in gens.iter().rev().skip(self.keep.saturating_sub(1)) {
            let old_path = self.generation_path(old);
            self.fs
                .remove_file(&old_path)
                .map_err(|e| StoreError::at(&old_path, e.into()))?;
        }
        Ok(generation)
    }

    /// Loads the newest generation that decodes cleanly, newest-first,
    /// emitting a warn event per corrupt generation skipped.
    ///
    /// Returns `Ok(None)` for an empty (or absent) set, and
    /// [`StoreError::NoValidCheckpoint`] when generations exist but
    /// every one of them is corrupt.
    pub fn load_latest(&self) -> Result<Option<(u64, TrainCheckpoint)>, StoreError> {
        let gens = self.generations()?;
        let mut tried = 0usize;
        for &generation in gens.iter().rev() {
            let path = self.generation_path(generation);
            let result = self
                .fs
                .read(&path)
                .map_err(StoreError::from)
                .and_then(|data| decode_checkpoint(&data));
            match result {
                Ok(ckpt) => {
                    if tried > 0 {
                        obs_event!(
                            Level::Warn,
                            "store.ckpt.fallback",
                            generation = generation,
                            skipped = tried,
                        );
                    }
                    return Ok(Some((generation, ckpt)));
                }
                Err(e) => {
                    tried += 1;
                    obs_event!(
                        Level::Warn,
                        "store.ckpt.corrupt_generation",
                        path = path.display().to_string(),
                        error = e.to_string(),
                    );
                }
            }
        }
        if tried > 0 {
            return Err(StoreError::NoValidCheckpoint {
                dir: self.dir.clone(),
                tried,
            });
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealFs;
    use tpp_rl::{QTable, VisitTable};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpp-ckpt-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn ckpt(episode: u64) -> TrainCheckpoint {
        let mut q = QTable::square(3);
        q.set(0, 1, episode as f64);
        TrainCheckpoint {
            q,
            episode,
            sched_pos: episode,
            rng_state: [episode, 2, 3, 4],
            visits: VisitTable::from_raw_dense(1, 3, vec![1, 2, 3]),
            returns: (0..episode).map(|e| e as f64).collect(),
        }
    }

    #[test]
    fn empty_set_loads_none() {
        let dir = tmp_dir("empty");
        let set = CheckpointSet::new(&RealFs, &dir, 3);
        assert!(set.load_latest().unwrap().is_none());
        assert!(set.generations().unwrap().is_empty());
    }

    #[test]
    fn save_load_roundtrip_with_generations() {
        let dir = tmp_dir("gen");
        let set = CheckpointSet::new(&RealFs, &dir, 5);
        assert_eq!(set.save(&ckpt(10)).unwrap(), 1);
        assert_eq!(set.save(&ckpt(20)).unwrap(), 2);
        let (generation, back) = set.load_latest().unwrap().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(back, ckpt(20));
        assert_eq!(set.generations().unwrap(), vec![1, 2]);
        let latest = std::fs::read_to_string(dir.join("LATEST")).unwrap();
        assert_eq!(latest.trim(), "ckpt-00002.qpol");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prunes_to_keep_last_k() {
        let dir = tmp_dir("prune");
        let set = CheckpointSet::new(&RealFs, &dir, 2);
        for e in 1..=5 {
            set.save(&ckpt(e * 10)).unwrap();
        }
        assert_eq!(set.generations().unwrap(), vec![4, 5]);
        let (generation, back) = set.load_latest().unwrap().unwrap();
        assert_eq!(generation, 5);
        assert_eq!(back.episode, 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        let set = CheckpointSet::new(&RealFs, &dir, 3);
        set.save(&ckpt(10)).unwrap();
        set.save(&ckpt(20)).unwrap();
        // Corrupt generation 2 in place.
        let path = set.generation_path(2);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (generation, back) = set.load_latest().unwrap().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(back.episode, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_corrupt_is_a_typed_error() {
        let dir = tmp_dir("allbad");
        let set = CheckpointSet::new(&RealFs, &dir, 3);
        set.save(&ckpt(10)).unwrap();
        std::fs::write(set.generation_path(1), b"garbage").unwrap();
        let err = set.load_latest().unwrap_err();
        assert!(matches!(
            err,
            StoreError::NoValidCheckpoint { tried: 1, .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ignores_foreign_files_and_stranded_tmp() {
        let dir = tmp_dir("foreign");
        let set = CheckpointSet::new(&RealFs, &dir, 3);
        set.save(&ckpt(10)).unwrap();
        std::fs::write(dir.join("ckpt-00009.qpol.tmp"), b"stranded").unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        std::fs::write(dir.join("ckpt-abc.qpol"), b"nope").unwrap();
        assert_eq!(set.generations().unwrap(), vec![1]);
        let (generation, _) = set.load_latest().unwrap().unwrap();
        assert_eq!(generation, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observe_newest_tracks_rotation_and_in_place_rewrite() {
        let dir = tmp_dir("observe");
        let set = CheckpointSet::new(&RealFs, &dir, 3);
        assert_eq!(set.observe_newest().unwrap(), None);

        set.save(&ckpt(10)).unwrap();
        let first = set.observe_newest().unwrap().unwrap();
        assert_eq!(first.generation, 1);
        // Stable while nothing changes.
        assert_eq!(
            set.observe_newest().unwrap().unwrap().token(),
            first.token()
        );

        // A new generation moves the stamp (and the token).
        set.save(&ckpt(20)).unwrap();
        let second = set.observe_newest().unwrap().unwrap();
        assert_eq!(second.generation, 2);
        assert_ne!(second.token(), first.token());

        // An in-place rewrite of the newest file keeps the generation
        // number but still moves the token (len and/or mtime change).
        std::thread::sleep(std::time::Duration::from_millis(5));
        let path = set.generation_path(2);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        let rewritten = set.observe_newest().unwrap().unwrap();
        assert_eq!(rewritten.generation, 2);
        assert_ne!(rewritten.token(), second.token());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_generation_rules() {
        let p = |s: &str| CheckpointSet::parse_generation(Path::new(s));
        assert_eq!(p("/d/ckpt-00042.qpol"), Some(42));
        assert_eq!(p("/d/ckpt-7.qpol"), Some(7));
        assert_eq!(p("/d/ckpt-.qpol"), None);
        assert_eq!(p("/d/ckpt-12.qpol.tmp"), None);
        assert_eq!(p("/d/LATEST"), None);
        assert_eq!(p("/d/ckpt-12.bin"), None);
    }
}
