//! Crash-safe file replacement.
//!
//! The classic atomic-rename protocol: write the payload to a
//! temporary file *in the same directory* as the destination, fsync the
//! temporary, rename it over the destination, then fsync the directory
//! so the rename itself is durable. At every abort point the
//! destination holds either its previous contents or the complete new
//! payload — never a torn mixture. The fault-injection suite in
//! `tests/atomicity.rs` proves this by sweeping a simulated crash
//! across every operation of the protocol.

use crate::error::StoreError;
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};

/// Extension appended to the destination name for the staging file.
/// A crash can strand one; it is harmless (the next write truncates
/// it) and checkpoint loaders ignore non-matching names.
const TMP_SUFFIX: &str = "tmp";

/// An atomic writer for one destination path.
#[derive(Debug, Clone)]
pub struct AtomicFile {
    dest: PathBuf,
}

impl AtomicFile {
    /// An atomic writer targeting `dest`.
    pub fn new(dest: impl Into<PathBuf>) -> Self {
        AtomicFile { dest: dest.into() }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.dest
    }

    /// The staging path the payload is written to before the rename.
    pub fn tmp_path(&self) -> PathBuf {
        let mut name = self.dest.file_name().unwrap_or_default().to_os_string();
        name.push(".");
        name.push(TMP_SUFFIX);
        self.dest.with_file_name(name)
    }

    /// Writes `data` to the destination atomically: tmp → fsync →
    /// rename → fsync dir. Creates parent directories as needed. Every
    /// error carries the offending path.
    pub fn commit(&self, fs: &dyn Vfs, data: &[u8]) -> Result<(), StoreError> {
        let parent = self.dest.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(parent) = parent {
            if !fs.exists(parent) {
                fs.create_dir_all(parent)
                    .map_err(|e| StoreError::at(parent, e.into()))?;
            }
        }
        let tmp = self.tmp_path();
        fs.write(&tmp, data)
            .map_err(|e| StoreError::at(&tmp, e.into()))?;
        fs.sync_file(&tmp)
            .map_err(|e| StoreError::at(&tmp, e.into()))?;
        fs.rename(&tmp, &self.dest)
            .map_err(|e| StoreError::at(&self.dest, e.into()))?;
        if let Some(parent) = parent {
            fs.sync_dir(parent)
                .map_err(|e| StoreError::at(parent, e.into()))?;
        }
        Ok(())
    }
}

/// One-shot convenience: atomically replaces `path` with `data`.
pub fn atomic_write(fs: &dyn Vfs, path: impl AsRef<Path>, data: &[u8]) -> Result<(), StoreError> {
    AtomicFile::new(path.as_ref()).commit(fs, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultFs, FaultKind, RealFs};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpp-atomic-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("basic");
        let dest = dir.join("f.bin");
        atomic_write(&RealFs, &dest, b"one").unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"one");
        atomic_write(&RealFs, &dest, b"two").unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"two");
        assert!(
            !AtomicFile::new(&dest).tmp_path().exists(),
            "staging file must be consumed by the rename"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn creates_missing_parents() {
        let dir = tmp_dir("parents");
        let dest = dir.join("a/b/f.bin");
        atomic_write(&RealFs, &dest, b"deep").unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"deep");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_path_is_sibling() {
        let af = AtomicFile::new("/x/y/policy.qpol");
        assert_eq!(af.tmp_path(), PathBuf::from("/x/y/policy.qpol.tmp"));
    }

    #[test]
    fn crash_before_rename_preserves_old_contents() {
        let dir = tmp_dir("crash");
        let dest = dir.join("f.bin");
        atomic_write(&RealFs, &dest, b"old").unwrap();
        // Ops on an existing dest: write(tmp)=0, sync_file=1, rename=2,
        // sync_dir=3. Crash the sync, i.e. before the rename.
        let fs = FaultFs::new(RealFs, 1, FaultKind::Crash);
        let err = atomic_write(&fs, &dest, b"new-payload").unwrap_err();
        assert!(err.path().is_some(), "{err}");
        assert_eq!(std::fs::read(&dest).unwrap(), b"old");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_never_reaches_destination() {
        let dir = tmp_dir("torn");
        let dest = dir.join("f.bin");
        atomic_write(&RealFs, &dest, b"old").unwrap();
        let fs = FaultFs::new(RealFs, 0, FaultKind::ShortWrite);
        assert!(atomic_write(&fs, &dest, b"new-payload").is_err());
        // The tear landed in the staging file, not the destination.
        assert_eq!(std::fs::read(&dest).unwrap(), b"old");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_surfaces_with_path() {
        let dir = tmp_dir("enospc");
        let dest = dir.join("f.bin");
        std::fs::write(&dest, b"old").unwrap();
        let fs = FaultFs::new(RealFs, 0, FaultKind::Enospc);
        let err = atomic_write(&fs, &dest, b"new-payload").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("f.bin.tmp"), "{msg}");
        assert!(msg.contains("no space left"), "{msg}");
        assert_eq!(std::fs::read(&dest).unwrap(), b"old");
        std::fs::remove_dir_all(&dir).ok();
    }
}
