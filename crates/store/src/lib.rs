//! # tpp-store
//!
//! Persistence for datasets and learned policies:
//!
//! * human-readable **JSON snapshots** (via serde) for catalogs and any
//!   serializable experiment artifact;
//! * a compact, hand-rolled, checksummed **binary format** (`QPOL`) for
//!   Q-tables, so a policy trained once can be reloaded and reused for
//!   interactive recommendation or transfer without retraining.
//!
//! The binary format is deliberately simple: magic, version, shape,
//! little-endian `f64` payload, FNV-1a checksum. Corruption and
//! truncation are detected, version skew is rejected.

#![warn(missing_docs)]

pub mod error;
pub mod json;
pub mod policy;

pub use error::StoreError;
pub use json::{load_json, save_json};
pub use policy::{decode_qtable, encode_qtable, load_qtable, save_qtable};
