//! # tpp-store
//!
//! Crash-safe persistence for datasets and learned policies:
//!
//! * human-readable **JSON snapshots** (via serde) for catalogs and any
//!   serializable experiment artifact;
//! * a compact, hand-rolled, checksummed **binary format** (`QPOL`) for
//!   Q-tables (v1) and full training checkpoints with resume state
//!   (v2), so a policy trained once can be reloaded and reused — or an
//!   interrupted run resumed bit-for-bit;
//! * an **atomic-rename write protocol** ([`AtomicFile`]) used by every
//!   save path, so a crash mid-write can never tear an artifact;
//! * a [`Vfs`] filesystem abstraction with a fault-injecting test
//!   implementation ([`FaultFs`]) that simulates crashes, short writes,
//!   and ENOSPC at exact operation counts;
//! * a generational [`CheckpointSet`] (`ckpt-00001.qpol` …, keep-last-K,
//!   advisory `LATEST` pointer) whose loader falls back past corrupt
//!   generations to the newest valid one.
//!
//! The binary format is deliberately simple: magic, version, shape,
//! little-endian `f64` payload, optional resume section, FNV-1a
//! checksum. Corruption and truncation are detected, version skew is
//! rejected, and v1 files remain loadable forever.

#![warn(missing_docs)]

pub mod atomic;
pub mod checkpoint;
pub mod error;
pub mod json;
pub mod policy;
pub mod vfs;

pub use atomic::{atomic_write, AtomicFile};
pub use checkpoint::{CheckpointSet, GenerationStamp};
pub use error::StoreError;
pub use json::{load_json, load_json_with, save_json, save_json_with};
pub use policy::{
    decode_checkpoint, decode_qtable, encode_checkpoint, encode_qtable, load_qtable,
    load_qtable_with, save_qtable, save_qtable_with,
};
pub use vfs::{FaultFs, FaultKind, RealFs, Vfs};
