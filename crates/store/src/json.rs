//! JSON snapshots for any serde-serializable artifact.
//!
//! Writes go through the atomic-rename protocol ([`crate::atomic`]) so
//! a crash mid-save can never leave a torn snapshot, and every error is
//! wrapped with the offending path.

use crate::error::StoreError;
use crate::vfs::{RealFs, Vfs};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::Path;

/// Serializes `value` as pretty JSON at `path`, atomically, creating
/// parent directories as needed.
pub fn save_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> Result<(), StoreError> {
    save_json_with(&RealFs, path, value)
}

/// [`save_json`] over an explicit filesystem.
pub fn save_json_with<T: Serialize>(
    fs: &dyn Vfs,
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), StoreError> {
    let path = path.as_ref();
    let data = serde_json::to_vec_pretty(value).map_err(|e| StoreError::at(path, e.into()))?;
    crate::atomic::atomic_write(fs, path, &data)
}

/// Loads a JSON snapshot from `path`. Errors carry the offending path.
pub fn load_json<T: DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, StoreError> {
    load_json_with(&RealFs, path)
}

/// [`load_json`] over an explicit filesystem.
pub fn load_json_with<T: DeserializeOwned>(
    fs: &dyn Vfs,
    path: impl AsRef<Path>,
) -> Result<T, StoreError> {
    let path = path.as_ref();
    let data = fs.read(path).map_err(|e| StoreError::at(path, e.into()))?;
    serde_json::from_slice(&data).map_err(|e| StoreError::at(path, e.into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_model::Plan;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tpp-store-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_plan() {
        let path = tmp("plan.json");
        let plan = Plan::from_items(vec![3u32.into(), 1u32.into()]);
        save_json(&path, &plan).unwrap();
        let back: Plan = load_json(&path).unwrap();
        assert_eq!(plan, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_catalog_with_index_rebuild() {
        let path = tmp("catalog.json");
        let cat = tpp_model::toy::table2_catalog();
        save_json(&path, &cat).unwrap();
        let mut back: tpp_model::Catalog = load_json(&path).unwrap();
        back.rebuild_index();
        assert_eq!(back.len(), cat.len());
        assert_eq!(back.by_code("m6").unwrap().name, "Machine Learning");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn creates_parent_dirs() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("tpp-store-nested-{}", std::process::id()));
        let path = dir.join("a/b/c.json");
        save_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> = load_json(&path).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error_naming_the_path() {
        let r: Result<Plan, _> = load_json("/nonexistent/nope.json");
        let err = r.unwrap_err();
        assert!(matches!(err.root_cause(), StoreError::Io(_)));
        assert!(err.to_string().contains("/nonexistent/nope.json"));
    }

    #[test]
    fn malformed_json_is_json_error_naming_the_path() {
        let path = tmp("bad.json");
        std::fs::write(&path, b"{not json").unwrap();
        let r: Result<Plan, _> = load_json(&path);
        let err = r.unwrap_err();
        assert!(matches!(err.root_cause(), StoreError::Json(_)));
        assert!(err.to_string().contains("bad.json"));
        std::fs::remove_file(&path).ok();
    }
}
