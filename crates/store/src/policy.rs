//! The `QPOL` binary format for learned policies and training
//! checkpoints.
//!
//! Version 1 (plain dense policy — the stable interchange format):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"QPOL"
//! 4       2     version (1)
//! 6       2     reserved (0)
//! 8       4     n_states  (u32)
//! 12      4     n_actions (u32)
//! 16      8*n   Q values, row-major f64 LE, n = n_states * n_actions
//! 16+8n   8     FNV-1a 64 checksum over bytes [0, 16+8n)
//! ```
//!
//! Version 2 appends an optional resume-state section between the Q
//! values and the checksum, so a checkpoint can restart training
//! exactly where it stopped:
//!
//! ```text
//! ...     1     has_resume (0 or 1)
//! then, when has_resume = 1:
//!         8     episode   (u64: episodes completed)
//!         8     sched_pos (u64: exploration-schedule position)
//!         32    rng state (4 × u64: xoshiro256** words)
//!         4     visits_len (u32), then visits_len × u32 visit counts
//!         4     returns_len (u32), then returns_len × f64 returns
//! last    8     FNV-1a 64 checksum over everything before it
//! ```
//!
//! Version 3 carries city-scale sparse tables. The header is identical;
//! the Q section gains a representation flag, and the resume section's
//! visit counts gain an explicit shape so sparse visit tables survive a
//! roundtrip:
//!
//! ```text
//! 16      1     q_repr: 0 = dense, 1 = sparse
//! dense:  8*n   Q values, row-major f64 LE (as v1/v2)
//! sparse: 4     q_entries (u32), then q_entries ×
//!                 (state u32, action u32, value f64 LE)
//!               in ascending (state, action) order
//! ...     1     has_resume (0 or 1)
//! then, when has_resume = 1:
//!         8+8+32  episode, sched_pos, rng state (as v2)
//!         1     visit_repr: 0 = dense, 1 = sparse
//!         4+4   visit n_states, n_actions (u32 each)
//! dense:        n_states*n_actions × u32 counts
//! sparse: 4     visit_entries (u32), then visit_entries ×
//!                 (state u32, action u32, count u32)
//! then:   4     returns_len (u32), then returns_len × f64 returns
//! last    8     FNV-1a 64 checksum over everything before it
//! ```
//!
//! [`encode_qtable`] keeps emitting v1 for dense tables so previously
//! written policies and external readers stay byte-compatible, and only
//! upgrades to v3 when the table is sparse. [`encode_checkpoint`]
//! likewise emits v2 byte-identically whenever both the Q-table and the
//! visit counts are dense (or the visits are absent), reserving v3 for
//! sparse payloads. The decoders accept all three versions. Legacy v2
//! visit counts carry no shape; they are reconstructed as
//! `n_states × n_actions` when the count matches the Q dimensions,
//! empty when zero, and a single row otherwise.
//!
//! Decoding rejects non-finite Q values with
//! [`StoreError::NonFiniteValues`]: a NaN in a checkpoint would
//! otherwise poison every downstream argmax, and the serving layer
//! treats the typed (permanent, non-retryable) error as "fall back",
//! not "crash". Corruption and truncation are detected, version skew is
//! rejected, and no input — however malformed — may panic the decoder
//! (a property the fuzz suite asserts for every version).

use crate::error::StoreError;
use crate::vfs::{RealFs, Vfs};
use bytes::{BufMut, Bytes, BytesMut};
use std::path::Path;
use tpp_rl::{QTable, TrainCheckpoint, VisitTable};

const MAGIC: &[u8; 4] = b"QPOL";
const VERSION_V1: u16 = 1;
const VERSION_V2: u16 = 2;
const VERSION_V3: u16 = 3;
const HEADER_LEN: usize = 16;
const CHECKSUM_LEN: usize = 8;
/// Representation flag values shared by the v3 Q and visits sections.
const REPR_DENSE: u8 = 0;
const REPR_SPARSE: u8 = 1;

fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A bounds-checked little-endian reader: every over-read maps to
/// [`StoreError::Truncated`] instead of a panic.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    total: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8], total: usize) -> Self {
        Reader {
            data,
            pos: 0,
            total,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.data.len() - self.pos < n {
            return Err(StoreError::Truncated {
                expected: self.pos + n + CHECKSUM_LEN,
                got: self.total,
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Rejects trailing garbage: a valid payload is consumed exactly.
    fn finish(&self) -> Result<(), StoreError> {
        if self.pos != self.data.len() {
            return Err(StoreError::Truncated {
                expected: self.pos + CHECKSUM_LEN,
                got: self.total,
            });
        }
        Ok(())
    }
}

/// Verifies the trailing checksum and returns the covered body.
fn checked_body(data: &[u8]) -> Result<&[u8], StoreError> {
    if data.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN + CHECKSUM_LEN,
            got: data.len(),
        });
    }
    let (body, tail) = data.split_at(data.len() - CHECKSUM_LEN);
    let stored = u64::from_le_bytes(tail.try_into().expect("slice is 8 bytes"));
    if fnv1a64(body) != stored {
        return Err(StoreError::ChecksumMismatch);
    }
    Ok(body)
}

/// Parses the common header, returning `(version, n_states, n_actions)`.
fn read_header(r: &mut Reader<'_>) -> Result<(u16, usize, usize), StoreError> {
    if r.take(4)? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u16()?;
    if !(VERSION_V1..=VERSION_V3).contains(&version) {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let _reserved = r.u16()?;
    let n_states = r.u32()? as usize;
    let n_actions = r.u32()? as usize;
    // Overflow in the shape product means a nonsense header.
    n_states
        .checked_mul(n_actions)
        .ok_or(StoreError::BadMagic)?;
    Ok((version, n_states, n_actions))
}

fn read_values(r: &mut Reader<'_>, n: usize) -> Result<Vec<f64>, StoreError> {
    // Reserve against the bytes actually present, not the header's
    // claim, so a hostile length cannot force a huge allocation.
    let mut values = Vec::with_capacity(n.min(r.data.len() / 8 + 1));
    for _ in 0..n {
        values.push(r.f64()?);
    }
    Ok(values)
}

/// Reads the Q section: plain dense values for v1/v2, flag-dispatched
/// dense or sparse for v3.
fn read_qtable_body(
    r: &mut Reader<'_>,
    version: u16,
    n_states: usize,
    n_actions: usize,
) -> Result<QTable, StoreError> {
    let dense_len = n_states * n_actions; // header pre-checked the product
    if version != VERSION_V3 {
        let values = read_values(r, dense_len)?;
        return Ok(QTable::from_raw(n_states, n_actions, values));
    }
    match r.u8()? {
        REPR_DENSE => {
            let values = read_values(r, dense_len)?;
            Ok(QTable::from_raw(n_states, n_actions, values))
        }
        REPR_SPARSE => {
            let n_entries = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n_entries.min(r.data.len() / 16 + 1));
            for _ in 0..n_entries {
                let s = r.u32()? as usize;
                let a = r.u32()? as usize;
                let v = r.f64()?;
                entries.push((s, a, v));
            }
            // Out-of-range entries are bad framing (a checksum only
            // protects against corruption, not a broken writer).
            QTable::from_sparse_entries(n_states, n_actions, entries)
                .map_err(|_| StoreError::BadMagic)
        }
        _ => Err(StoreError::BadMagic),
    }
}

fn put_header(buf: &mut BytesMut, version: u16, q: &QTable) {
    buf.put_slice(MAGIC);
    buf.put_u16_le(version);
    buf.put_u16_le(0);
    buf.put_u32_le(u32::try_from(q.n_states()).expect("state count fits u32"));
    buf.put_u32_le(u32::try_from(q.n_actions()).expect("action count fits u32"));
}

/// Writes the v3 Q section (repr flag + payload).
fn put_qtable_body_v3(buf: &mut BytesMut, q: &QTable) {
    match q.dense_values() {
        Some(values) => {
            buf.put_u8(REPR_DENSE);
            for &v in values {
                buf.put_f64_le(v);
            }
        }
        None => {
            buf.put_u8(REPR_SPARSE);
            buf.put_u32_le(u32::try_from(q.entry_count()).expect("entry count fits u32"));
            for (s, a, v) in q.iter_set() {
                buf.put_u32_le(u32::try_from(s).expect("state fits u32"));
                buf.put_u32_le(u32::try_from(a).expect("action fits u32"));
                buf.put_f64_le(v);
            }
        }
    }
}

/// Writes the v3 visits section (repr flag + shape + payload).
fn put_visits_v3(buf: &mut BytesMut, visits: &VisitTable) {
    let n_states = u32::try_from(visits.n_states()).expect("visit states fit u32");
    let n_actions = u32::try_from(visits.n_actions()).expect("visit actions fit u32");
    match visits.dense_counts() {
        Some(counts) => {
            buf.put_u8(REPR_DENSE);
            buf.put_u32_le(n_states);
            buf.put_u32_le(n_actions);
            for &c in counts {
                buf.put_u32_le(c);
            }
        }
        None => {
            buf.put_u8(REPR_SPARSE);
            buf.put_u32_le(n_states);
            buf.put_u32_le(n_actions);
            buf.put_u32_le(u32::try_from(visits.entry_count()).expect("visit entries fit u32"));
            for (s, a, c) in visits.iter_set() {
                buf.put_u32_le(u32::try_from(s).expect("state fits u32"));
                buf.put_u32_le(u32::try_from(a).expect("action fits u32"));
                buf.put_u32_le(c);
            }
        }
    }
}

/// Appends the trailing checksum and freezes the buffer.
fn seal(mut buf: BytesMut) -> Bytes {
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Whether a checkpoint fits the legacy v2 wire format without loss:
/// dense Q, and visit counts that are either absent or a dense table of
/// exactly the Q-table's shape (the only shape v2's bare flat array can
/// reconstruct).
fn fits_v2(ckpt: &TrainCheckpoint) -> bool {
    if ckpt.q.dense_values().is_none() {
        return false;
    }
    if ckpt.visits.is_empty() {
        return true;
    }
    ckpt.visits.dense_counts().is_some()
        && ckpt.visits.n_states() == ckpt.q.n_states()
        && ckpt.visits.n_actions() == ckpt.q.n_actions()
        && ckpt.visits.entry_count() > 0
}

/// Encodes a Q-table into the `QPOL` wire format. Dense tables keep the
/// stable v1 interchange encoding byte-for-byte; sparse tables use v3.
/// Neither carries resume state.
pub fn encode_qtable(q: &QTable) -> Bytes {
    match q.dense_values() {
        Some(values) => {
            let mut buf = BytesMut::with_capacity(HEADER_LEN + 8 * values.len() + CHECKSUM_LEN);
            put_header(&mut buf, VERSION_V1, q);
            for &v in values {
                buf.put_f64_le(v);
            }
            seal(buf)
        }
        None => {
            let mut buf =
                BytesMut::with_capacity(HEADER_LEN + 5 + 16 * q.entry_count() + 1 + CHECKSUM_LEN);
            put_header(&mut buf, VERSION_V3, q);
            put_qtable_body_v3(&mut buf, q);
            buf.put_u8(0); // no resume state
            seal(buf)
        }
    }
}

/// Encodes a training checkpoint into the `QPOL` wire format: v2
/// byte-identically when everything is dense, v3 when the Q-table or
/// the visit counts are sparse.
pub fn encode_checkpoint(ckpt: &TrainCheckpoint) -> Bytes {
    if fits_v2(ckpt) {
        let values = ckpt.q.dense_values().expect("fits_v2 implies dense q");
        let counts = ckpt.visits.dense_counts().unwrap_or(&[]);
        let resume_len = 1 + 8 + 8 + 32 + 4 + 4 * counts.len() + 4 + 8 * ckpt.returns.len();
        let mut buf =
            BytesMut::with_capacity(HEADER_LEN + 8 * values.len() + resume_len + CHECKSUM_LEN);
        put_header(&mut buf, VERSION_V2, &ckpt.q);
        for &v in values {
            buf.put_f64_le(v);
        }
        buf.put_u8(1);
        buf.put_u64_le(ckpt.episode);
        buf.put_u64_le(ckpt.sched_pos);
        for w in ckpt.rng_state {
            buf.put_u64_le(w);
        }
        buf.put_u32_le(u32::try_from(counts.len()).expect("visit count fits u32"));
        for &c in counts {
            buf.put_u32_le(c);
        }
        buf.put_u32_le(u32::try_from(ckpt.returns.len()).expect("return count fits u32"));
        for &r in &ckpt.returns {
            buf.put_f64_le(r);
        }
        seal(buf)
    } else {
        let approx = HEADER_LEN
            + 5
            + 16 * ckpt.q.entry_count()
            + 62
            + 12 * ckpt.visits.entry_count()
            + 8 * ckpt.returns.len()
            + CHECKSUM_LEN;
        let mut buf = BytesMut::with_capacity(approx);
        put_header(&mut buf, VERSION_V3, &ckpt.q);
        put_qtable_body_v3(&mut buf, &ckpt.q);
        buf.put_u8(1);
        buf.put_u64_le(ckpt.episode);
        buf.put_u64_le(ckpt.sched_pos);
        for w in ckpt.rng_state {
            buf.put_u64_le(w);
        }
        put_visits_v3(&mut buf, &ckpt.visits);
        buf.put_u32_le(u32::try_from(ckpt.returns.len()).expect("return count fits u32"));
        for &r in &ckpt.returns {
            buf.put_f64_le(r);
        }
        seal(buf)
    }
}

/// Decodes a `QPOL` payload (v1, v2 or v3) into a Q-table, verifying
/// magic, version, shape and checksum, and rejecting non-finite values.
/// Any resume state is validated and discarded; use
/// [`decode_checkpoint`] to keep it.
pub fn decode_qtable(data: &[u8]) -> Result<QTable, StoreError> {
    let body = checked_body(data)?;
    let mut r = Reader::new(body, data.len());
    let (version, n_states, n_actions) = read_header(&mut r)?;
    let q = read_qtable_body(&mut r, version, n_states, n_actions)?;
    if version != VERSION_V1 {
        read_resume(&mut r, version, n_states, n_actions)?;
    }
    r.finish()?;
    if q.has_non_finite() {
        return Err(StoreError::NonFiniteValues);
    }
    Ok(q)
}

/// Decodes a v2 or v3 `QPOL` checkpoint, verifying magic, version,
/// shape, resume section and checksum, and rejecting non-finite Q
/// values.
pub fn decode_checkpoint(data: &[u8]) -> Result<TrainCheckpoint, StoreError> {
    let body = checked_body(data)?;
    let mut r = Reader::new(body, data.len());
    let (version, n_states, n_actions) = read_header(&mut r)?;
    if version == VERSION_V1 {
        return Err(StoreError::MissingResumeState);
    }
    let q = read_qtable_body(&mut r, version, n_states, n_actions)?;
    let resume =
        read_resume(&mut r, version, n_states, n_actions)?.ok_or(StoreError::MissingResumeState)?;
    r.finish()?;
    if q.has_non_finite() {
        return Err(StoreError::NonFiniteValues);
    }
    let (episode, sched_pos, rng_state, visits, returns) = resume;
    Ok(TrainCheckpoint {
        q,
        episode,
        sched_pos,
        rng_state,
        visits,
        returns,
    })
}

type ResumeFields = (u64, u64, [u64; 4], VisitTable, Vec<f64>);

fn read_resume(
    r: &mut Reader<'_>,
    version: u16,
    n_states: usize,
    n_actions: usize,
) -> Result<Option<ResumeFields>, StoreError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let episode = r.u64()?;
            let sched_pos = r.u64()?;
            let mut rng_state = [0u64; 4];
            for w in &mut rng_state {
                *w = r.u64()?;
            }
            let visits = if version == VERSION_V3 {
                read_visits_v3(r)?
            } else {
                let n_visits = r.u32()? as usize;
                let mut flat = Vec::with_capacity(n_visits.min(r.data.len() / 4 + 1));
                for _ in 0..n_visits {
                    flat.push(r.u32()?);
                }
                reconstruct_v2_visits(n_states, n_actions, flat)
            };
            let n_returns = r.u32()? as usize;
            let mut returns = Vec::with_capacity(n_returns.min(r.data.len() / 8 + 1));
            for _ in 0..n_returns {
                returns.push(r.f64()?);
            }
            Ok(Some((episode, sched_pos, rng_state, visits, returns)))
        }
        // Any other flag byte is corruption the checksum failed to
        // catch only in adversarial settings; reject it as bad framing.
        _ => Err(StoreError::BadMagic),
    }
}

/// Legacy v2 visit counts are a bare flat array. Give them back their
/// shape: the Q-table's when the count matches, empty when zero, a
/// single row otherwise (pre-shape writers stored arbitrary lengths).
fn reconstruct_v2_visits(n_states: usize, n_actions: usize, flat: Vec<u32>) -> VisitTable {
    if flat.is_empty() {
        VisitTable::empty()
    } else if flat.len() == n_states * n_actions {
        VisitTable::from_raw_dense(n_states, n_actions, flat)
    } else {
        let len = flat.len();
        VisitTable::from_raw_dense(1, len, flat)
    }
}

fn read_visits_v3(r: &mut Reader<'_>) -> Result<VisitTable, StoreError> {
    let repr = r.u8()?;
    let n_states = r.u32()? as usize;
    let n_actions = r.u32()? as usize;
    let dense_len = n_states
        .checked_mul(n_actions)
        .ok_or(StoreError::BadMagic)?;
    match repr {
        REPR_DENSE => {
            let mut counts = Vec::with_capacity(dense_len.min(r.data.len() / 4 + 1));
            for _ in 0..dense_len {
                counts.push(r.u32()?);
            }
            Ok(VisitTable::from_raw_dense(n_states, n_actions, counts))
        }
        REPR_SPARSE => {
            let n_entries = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n_entries.min(r.data.len() / 12 + 1));
            for _ in 0..n_entries {
                let s = r.u32()? as usize;
                let a = r.u32()? as usize;
                let c = r.u32()?;
                entries.push((s, a, c));
            }
            VisitTable::from_sparse_entries(n_states, n_actions, entries)
                .map_err(|_| StoreError::BadMagic)
        }
        _ => Err(StoreError::BadMagic),
    }
}

/// Writes a Q-table to `path` in `QPOL` format (v1 for dense, v3 for
/// sparse), atomically (tmp → fsync → rename → fsync dir).
pub fn save_qtable(path: impl AsRef<Path>, q: &QTable) -> Result<(), StoreError> {
    save_qtable_with(&RealFs, path, q)
}

/// [`save_qtable`] over an explicit filesystem.
pub fn save_qtable_with(
    fs: &dyn Vfs,
    path: impl AsRef<Path>,
    q: &QTable,
) -> Result<(), StoreError> {
    crate::atomic::atomic_write(fs, path, &encode_qtable(q))
}

/// Reads a Q-table from a `QPOL` file (v1, v2 or v3). Errors carry the
/// offending path.
pub fn load_qtable(path: impl AsRef<Path>) -> Result<QTable, StoreError> {
    load_qtable_with(&RealFs, path)
}

/// [`load_qtable`] over an explicit filesystem.
pub fn load_qtable_with(fs: &dyn Vfs, path: impl AsRef<Path>) -> Result<QTable, StoreError> {
    let path = path.as_ref();
    let data = fs.read(path).map_err(|e| StoreError::at(path, e.into()))?;
    decode_qtable(&data).map_err(|e| StoreError::at(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_q() -> QTable {
        let mut q = QTable::square(4);
        q.set(0, 1, 1.25);
        q.set(3, 2, -7.5);
        q.set(2, 2, f64::MIN_POSITIVE);
        q
    }

    fn sample_sparse_q() -> QTable {
        let mut q = QTable::sparse(5000, 5000);
        q.set(0, 1, 1.25);
        q.set(4999, 2, -7.5);
        q.set(1234, 4321, f64::MIN_POSITIVE);
        q
    }

    fn sample_ckpt() -> TrainCheckpoint {
        let mut visits = VisitTable::dense(4, 4);
        for (s, a) in [(0, 1), (0, 1), (3, 2), (2, 2), (1, 0)] {
            visits.bump(s, a);
        }
        TrainCheckpoint {
            q: sample_q(),
            episode: 120,
            sched_pos: 120,
            rng_state: [1, u64::MAX, 0xdead_beef, 42],
            visits,
            returns: vec![0.5, -1.25, 9.75],
        }
    }

    fn sample_sparse_ckpt() -> TrainCheckpoint {
        let mut visits = VisitTable::sparse(5000, 5000);
        visits.bump(0, 1);
        visits.bump(0, 1);
        visits.bump(4999, 2);
        TrainCheckpoint {
            q: sample_sparse_q(),
            episode: 77,
            sched_pos: 77,
            rng_state: [9, 8, 7, 6],
            visits,
            returns: vec![0.25, -3.5],
        }
    }

    fn refresh_checksum(bytes: &mut [u8]) {
        let len = bytes.len();
        let c = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&c.to_le_bytes());
    }

    fn version_of(bytes: &[u8]) -> u16 {
        u16::from_le_bytes([bytes[4], bytes[5]])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = sample_q();
        let bytes = encode_qtable(&q);
        let back = decode_qtable(&bytes).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ckpt = sample_ckpt();
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(version_of(&bytes), VERSION_V2, "dense checkpoints stay v2");
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn sparse_qtable_roundtrips_as_v3() {
        let q = sample_sparse_q();
        let bytes = encode_qtable(&q);
        assert_eq!(version_of(&bytes), VERSION_V3);
        // 3 entries, not 25 M cells: the payload stays tiny.
        assert!(
            bytes.len() < 256,
            "sparse payload ballooned: {}",
            bytes.len()
        );
        let back = decode_qtable(&bytes).unwrap();
        assert!(back.is_sparse());
        assert_eq!(q, back);
    }

    #[test]
    fn sparse_checkpoint_roundtrips_as_v3() {
        let ckpt = sample_sparse_ckpt();
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(version_of(&bytes), VERSION_V3);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(ckpt, back);
        // Policy-only readers still get the Q-table out of it.
        assert_eq!(decode_qtable(&bytes).unwrap(), ckpt.q);
    }

    #[test]
    fn dense_q_with_sparse_visits_uses_v3() {
        let mut visits = VisitTable::sparse(4, 4);
        visits.bump(1, 2);
        let ckpt = TrainCheckpoint {
            visits,
            ..sample_ckpt()
        };
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(version_of(&bytes), VERSION_V3);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn odd_shaped_visits_survive_roundtrip() {
        // A dense visit table whose shape differs from the Q-table's
        // cannot ride v2's bare flat array without losing its shape.
        let ckpt = TrainCheckpoint {
            visits: VisitTable::from_raw_dense(1, 3, vec![4, 5, 6]),
            ..sample_ckpt()
        };
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(version_of(&bytes), VERSION_V3);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ckpt);
    }

    #[test]
    fn legacy_v2_flat_visits_reconstruct_a_shape() {
        // Hand-build a v2 payload whose flat visit count matches neither
        // zero nor the Q dimensions — the pre-shape format allowed it.
        let q = QTable::square(2);
        let mut buf = BytesMut::new();
        put_header(&mut buf, VERSION_V2, &q);
        for &v in q.values() {
            buf.put_f64_le(v);
        }
        buf.put_u8(1);
        buf.put_u64_le(5); // episode
        buf.put_u64_le(5); // sched_pos
        for w in [1u64, 2, 3, 4] {
            buf.put_u64_le(w);
        }
        buf.put_u32_le(3); // three visit counts for a 2×2 table
        for c in [9u32, 8, 7] {
            buf.put_u32_le(c);
        }
        buf.put_u32_le(0); // no returns
        let bytes = seal(buf);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back.visits, VisitTable::from_raw_dense(1, 3, vec![9, 8, 7]));
    }

    #[test]
    fn non_finite_values_rejected_at_decode() {
        let mut dense = sample_q();
        dense.set(1, 1, f64::NAN);
        let err = decode_qtable(&encode_qtable(&dense)).unwrap_err();
        assert!(matches!(err, StoreError::NonFiniteValues));
        assert!(!err.is_retryable(), "poison must not be retried");

        let mut sparse = sample_sparse_q();
        sparse.set(7, 7, f64::INFINITY);
        assert!(matches!(
            decode_qtable(&encode_qtable(&sparse)),
            Err(StoreError::NonFiniteValues)
        ));

        let ckpt = TrainCheckpoint {
            q: dense,
            ..sample_ckpt()
        };
        assert!(matches!(
            decode_checkpoint(&encode_checkpoint(&ckpt)),
            Err(StoreError::NonFiniteValues)
        ));
    }

    #[test]
    fn every_truncation_of_v3_errors_cleanly() {
        let bytes = encode_checkpoint(&sample_sparse_ckpt());
        for cut in 0..bytes.len() {
            assert!(
                decode_checkpoint(&bytes[..cut]).is_err(),
                "v3 checkpoint decode accepted a {cut}-byte truncation"
            );
            assert!(
                decode_qtable(&bytes[..cut]).is_err(),
                "v3 qtable decode accepted a {cut}-byte truncation"
            );
        }
    }

    #[test]
    fn v3_out_of_range_sparse_entry_rejected() {
        let mut bytes = encode_qtable(&sample_sparse_q()).to_vec();
        // First sparse entry's state u32 sits right after the header,
        // repr flag and entry count. Point it past n_states.
        let at = HEADER_LEN + 1 + 4;
        bytes[at..at + 4].copy_from_slice(&10_000u32.to_le_bytes());
        refresh_checksum(&mut bytes);
        assert!(matches!(decode_qtable(&bytes), Err(StoreError::BadMagic)));
    }

    #[test]
    fn v2_payload_decodes_as_plain_qtable() {
        let ckpt = sample_ckpt();
        let q = decode_qtable(&encode_checkpoint(&ckpt)).unwrap();
        assert_eq!(q, ckpt.q);
    }

    #[test]
    fn v1_payload_is_not_a_checkpoint() {
        let bytes = encode_qtable(&sample_q());
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(StoreError::MissingResumeState)
        ));
    }

    #[test]
    fn v1_files_still_decode() {
        // Backward compatibility: the v1 layout is frozen. This byte
        // string was produced by the original v1 encoder.
        let mut q = QTable::square(2);
        q.set(0, 0, 1.0);
        q.set(1, 1, -2.0);
        let bytes = encode_qtable(&q);
        assert_eq!(&bytes[..4], b"QPOL");
        assert_eq!(version_of(&bytes), 1);
        assert_eq!(decode_qtable(&bytes).unwrap(), q);
    }

    #[test]
    fn file_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("tpp-qpol-{}.bin", std::process::id()));
        let q = sample_q();
        save_qtable(&path, &q).unwrap();
        let back = load_qtable(&path).unwrap();
        assert_eq!(q, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sparse_file_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("tpp-qpol-sparse-{}.bin", std::process::id()));
        let q = sample_sparse_q();
        save_qtable(&path, &q).unwrap();
        let back = load_qtable(&path).unwrap();
        assert_eq!(q, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_errors_carry_the_path() {
        let err = load_qtable("/nonexistent/nope.qpol").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/nope.qpol"));
        assert!(matches!(err.root_cause(), StoreError::Io(_)));
    }

    #[test]
    fn detects_bad_magic() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        bytes[0] = b'X';
        // Fix the checksum so the magic check (not the checksum) fires.
        refresh_checksum(&mut bytes);
        assert!(matches!(decode_qtable(&bytes), Err(StoreError::BadMagic)));
    }

    #[test]
    fn detects_version_skew() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        bytes[4] = 99;
        refresh_checksum(&mut bytes);
        assert!(matches!(
            decode_qtable(&bytes),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn detects_corruption() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode_qtable(&bytes),
            Err(StoreError::ChecksumMismatch)
        ));
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode_qtable(&sample_q());
        assert!(matches!(
            decode_qtable(&bytes[..10]),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            decode_qtable(&[]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn detects_shape_length_mismatch() {
        // Claim a bigger table than the payload carries.
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        bytes[8] = 200; // n_states = 200
        refresh_checksum(&mut bytes);
        assert!(matches!(
            decode_qtable(&bytes),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn detects_trailing_garbage() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        let split = bytes.len() - 8;
        bytes.splice(split..split, [0u8; 4]);
        refresh_checksum(&mut bytes);
        assert!(decode_qtable(&bytes).is_err());
    }

    #[test]
    fn detects_checkpoint_truncation_in_resume_section() {
        let bytes = encode_checkpoint(&sample_ckpt());
        // Cut inside the resume section (between Q values and checksum).
        let cut = bytes.len() - 12;
        assert!(decode_checkpoint(&bytes[..cut]).is_err());
    }

    #[test]
    fn rejects_bad_resume_flag() {
        let mut bytes = encode_checkpoint(&sample_ckpt()).to_vec();
        let flag_at = HEADER_LEN + 8 * sample_ckpt().q.values().len();
        bytes[flag_at] = 7;
        refresh_checksum(&mut bytes);
        assert!(decode_checkpoint(&bytes).is_err());
        assert!(decode_qtable(&bytes).is_err());
    }

    #[test]
    fn empty_table_roundtrips() {
        let q = QTable::square(0);
        let back = decode_qtable(&encode_qtable(&q)).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let ckpt = TrainCheckpoint {
            q: QTable::square(0),
            episode: 0,
            sched_pos: 0,
            rng_state: [0; 4],
            visits: VisitTable::empty(),
            returns: vec![],
        };
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(version_of(&bytes), VERSION_V2);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ckpt);
    }

    #[test]
    fn fnv_reference_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        // Known vector: fnv1a64("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
