//! The `QPOL` binary format for learned policies and training
//! checkpoints.
//!
//! Version 1 (plain policy — the stable interchange format):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"QPOL"
//! 4       2     version (1)
//! 6       2     reserved (0)
//! 8       4     n_states  (u32)
//! 12      4     n_actions (u32)
//! 16      8*n   Q values, row-major f64 LE, n = n_states * n_actions
//! 16+8n   8     FNV-1a 64 checksum over bytes [0, 16+8n)
//! ```
//!
//! Version 2 appends an optional resume-state section between the Q
//! values and the checksum, so a checkpoint can restart training
//! exactly where it stopped:
//!
//! ```text
//! ...     1     has_resume (0 or 1)
//! then, when has_resume = 1:
//!         8     episode   (u64: episodes completed)
//!         8     sched_pos (u64: exploration-schedule position)
//!         32    rng state (4 × u64: xoshiro256** words)
//!         4     visits_len (u32), then visits_len × u32 visit counts
//!         4     returns_len (u32), then returns_len × f64 returns
//! last    8     FNV-1a 64 checksum over everything before it
//! ```
//!
//! [`encode_qtable`] keeps emitting v1 so previously written policies
//! and external readers stay compatible; [`decode_qtable`] accepts both
//! versions (ignoring v2 resume state). Checkpoints are written by
//! [`encode_checkpoint`] and read back by [`decode_checkpoint`].
//! Corruption and truncation are detected, version skew is rejected,
//! and no input — however malformed — may panic the decoder (a property
//! the fuzz suite asserts for both versions).

use crate::error::StoreError;
use crate::vfs::{RealFs, Vfs};
use bytes::{BufMut, Bytes, BytesMut};
use std::path::Path;
use tpp_rl::{QTable, TrainCheckpoint};

const MAGIC: &[u8; 4] = b"QPOL";
const VERSION_V1: u16 = 1;
const VERSION_V2: u16 = 2;
const HEADER_LEN: usize = 16;
const CHECKSUM_LEN: usize = 8;

fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A bounds-checked little-endian reader: every over-read maps to
/// [`StoreError::Truncated`] instead of a panic.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    total: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8], total: usize) -> Self {
        Reader {
            data,
            pos: 0,
            total,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.data.len() - self.pos < n {
            return Err(StoreError::Truncated {
                expected: self.pos + n + CHECKSUM_LEN,
                got: self.total,
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Rejects trailing garbage: a valid payload is consumed exactly.
    fn finish(&self) -> Result<(), StoreError> {
        if self.pos != self.data.len() {
            return Err(StoreError::Truncated {
                expected: self.pos + CHECKSUM_LEN,
                got: self.total,
            });
        }
        Ok(())
    }
}

/// Verifies the trailing checksum and returns the covered body.
fn checked_body(data: &[u8]) -> Result<&[u8], StoreError> {
    if data.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN + CHECKSUM_LEN,
            got: data.len(),
        });
    }
    let (body, tail) = data.split_at(data.len() - CHECKSUM_LEN);
    let stored = u64::from_le_bytes(tail.try_into().expect("slice is 8 bytes"));
    if fnv1a64(body) != stored {
        return Err(StoreError::ChecksumMismatch);
    }
    Ok(body)
}

/// Parses the common header, returning `(version, n_states, n_actions)`.
fn read_header(r: &mut Reader<'_>) -> Result<(u16, usize, usize), StoreError> {
    if r.take(4)? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let _reserved = r.u16()?;
    let n_states = r.u32()? as usize;
    let n_actions = r.u32()? as usize;
    // Overflow in the shape product means a nonsense header.
    n_states
        .checked_mul(n_actions)
        .ok_or(StoreError::BadMagic)?;
    Ok((version, n_states, n_actions))
}

fn read_values(r: &mut Reader<'_>, n: usize) -> Result<Vec<f64>, StoreError> {
    // Reserve against the bytes actually present, not the header's
    // claim, so a hostile length cannot force a huge allocation.
    let mut values = Vec::with_capacity(n.min(r.data.len() / 8 + 1));
    for _ in 0..n {
        values.push(r.f64()?);
    }
    Ok(values)
}

fn put_header(buf: &mut BytesMut, version: u16, q: &QTable) {
    buf.put_slice(MAGIC);
    buf.put_u16_le(version);
    buf.put_u16_le(0);
    buf.put_u32_le(u32::try_from(q.n_states()).expect("state count fits u32"));
    buf.put_u32_le(u32::try_from(q.n_actions()).expect("action count fits u32"));
    for &v in q.values() {
        buf.put_f64_le(v);
    }
}

/// Encodes a Q-table into the v1 `QPOL` wire format (the stable
/// interchange encoding; carries no resume state).
pub fn encode_qtable(q: &QTable) -> Bytes {
    let n = q.values().len();
    let mut buf = BytesMut::with_capacity(HEADER_LEN + 8 * n + CHECKSUM_LEN);
    put_header(&mut buf, VERSION_V1, q);
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Encodes a training checkpoint into the v2 `QPOL` wire format.
pub fn encode_checkpoint(ckpt: &TrainCheckpoint) -> Bytes {
    let n = ckpt.q.values().len();
    let resume_len = 1 + 8 + 8 + 32 + 4 + 4 * ckpt.visits.len() + 4 + 8 * ckpt.returns.len();
    let mut buf = BytesMut::with_capacity(HEADER_LEN + 8 * n + resume_len + CHECKSUM_LEN);
    put_header(&mut buf, VERSION_V2, &ckpt.q);
    buf.put_u8(1);
    buf.put_u64_le(ckpt.episode);
    buf.put_u64_le(ckpt.sched_pos);
    for w in ckpt.rng_state {
        buf.put_u64_le(w);
    }
    buf.put_u32_le(u32::try_from(ckpt.visits.len()).expect("visit count fits u32"));
    for &v in &ckpt.visits {
        buf.put_u32_le(v);
    }
    buf.put_u32_le(u32::try_from(ckpt.returns.len()).expect("return count fits u32"));
    for &r in &ckpt.returns {
        buf.put_f64_le(r);
    }
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Decodes a `QPOL` payload (v1 or v2) into a Q-table, verifying magic,
/// version, shape and checksum. Any v2 resume state is validated and
/// discarded; use [`decode_checkpoint`] to keep it.
pub fn decode_qtable(data: &[u8]) -> Result<QTable, StoreError> {
    let body = checked_body(data)?;
    let mut r = Reader::new(body, data.len());
    let (version, n_states, n_actions) = read_header(&mut r)?;
    let values = read_values(&mut r, n_states * n_actions)?;
    if version == VERSION_V2 {
        read_resume(&mut r)?;
    }
    r.finish()?;
    Ok(QTable::from_raw(n_states, n_actions, values))
}

/// Decodes a v2 `QPOL` checkpoint, verifying magic, version, shape,
/// resume section and checksum.
pub fn decode_checkpoint(data: &[u8]) -> Result<TrainCheckpoint, StoreError> {
    let body = checked_body(data)?;
    let mut r = Reader::new(body, data.len());
    let (version, n_states, n_actions) = read_header(&mut r)?;
    if version == VERSION_V1 {
        return Err(StoreError::MissingResumeState);
    }
    let values = read_values(&mut r, n_states * n_actions)?;
    let resume = read_resume(&mut r)?.ok_or(StoreError::MissingResumeState)?;
    r.finish()?;
    let (episode, sched_pos, rng_state, visits, returns) = resume;
    Ok(TrainCheckpoint {
        q: QTable::from_raw(n_states, n_actions, values),
        episode,
        sched_pos,
        rng_state,
        visits,
        returns,
    })
}

type ResumeFields = (u64, u64, [u64; 4], Vec<u32>, Vec<f64>);

fn read_resume(r: &mut Reader<'_>) -> Result<Option<ResumeFields>, StoreError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let episode = r.u64()?;
            let sched_pos = r.u64()?;
            let mut rng_state = [0u64; 4];
            for w in &mut rng_state {
                *w = r.u64()?;
            }
            let n_visits = r.u32()? as usize;
            let mut visits = Vec::with_capacity(n_visits.min(r.data.len() / 4 + 1));
            for _ in 0..n_visits {
                visits.push(r.u32()?);
            }
            let n_returns = r.u32()? as usize;
            let mut returns = Vec::with_capacity(n_returns.min(r.data.len() / 8 + 1));
            for _ in 0..n_returns {
                returns.push(r.f64()?);
            }
            Ok(Some((episode, sched_pos, rng_state, visits, returns)))
        }
        // Any other flag byte is corruption the checksum failed to
        // catch only in adversarial settings; reject it as bad framing.
        _ => Err(StoreError::BadMagic),
    }
}

/// Writes a Q-table to `path` in v1 `QPOL` format, atomically
/// (tmp → fsync → rename → fsync dir).
pub fn save_qtable(path: impl AsRef<Path>, q: &QTable) -> Result<(), StoreError> {
    save_qtable_with(&RealFs, path, q)
}

/// [`save_qtable`] over an explicit filesystem.
pub fn save_qtable_with(
    fs: &dyn Vfs,
    path: impl AsRef<Path>,
    q: &QTable,
) -> Result<(), StoreError> {
    crate::atomic::atomic_write(fs, path, &encode_qtable(q))
}

/// Reads a Q-table from a `QPOL` file (v1 or v2). Errors carry the
/// offending path.
pub fn load_qtable(path: impl AsRef<Path>) -> Result<QTable, StoreError> {
    load_qtable_with(&RealFs, path)
}

/// [`load_qtable`] over an explicit filesystem.
pub fn load_qtable_with(fs: &dyn Vfs, path: impl AsRef<Path>) -> Result<QTable, StoreError> {
    let path = path.as_ref();
    let data = fs.read(path).map_err(|e| StoreError::at(path, e.into()))?;
    decode_qtable(&data).map_err(|e| StoreError::at(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_q() -> QTable {
        let mut q = QTable::square(4);
        q.set(0, 1, 1.25);
        q.set(3, 2, -7.5);
        q.set(2, 2, f64::MIN_POSITIVE);
        q
    }

    fn sample_ckpt() -> TrainCheckpoint {
        TrainCheckpoint {
            q: sample_q(),
            episode: 120,
            sched_pos: 120,
            rng_state: [1, u64::MAX, 0xdead_beef, 42],
            visits: vec![0, 3, 7, 1],
            returns: vec![0.5, -1.25, 9.75],
        }
    }

    fn refresh_checksum(bytes: &mut [u8]) {
        let len = bytes.len();
        let c = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&c.to_le_bytes());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = sample_q();
        let bytes = encode_qtable(&q);
        let back = decode_qtable(&bytes).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ckpt = sample_ckpt();
        let bytes = encode_checkpoint(&ckpt);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn v2_payload_decodes_as_plain_qtable() {
        let ckpt = sample_ckpt();
        let q = decode_qtable(&encode_checkpoint(&ckpt)).unwrap();
        assert_eq!(q, ckpt.q);
    }

    #[test]
    fn v1_payload_is_not_a_checkpoint() {
        let bytes = encode_qtable(&sample_q());
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(StoreError::MissingResumeState)
        ));
    }

    #[test]
    fn v1_files_still_decode() {
        // Backward compatibility: the v1 layout is frozen. This byte
        // string was produced by the original v1 encoder.
        let mut q = QTable::square(2);
        q.set(0, 0, 1.0);
        q.set(1, 1, -2.0);
        let bytes = encode_qtable(&q);
        assert_eq!(&bytes[..4], b"QPOL");
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 1);
        assert_eq!(decode_qtable(&bytes).unwrap(), q);
    }

    #[test]
    fn file_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("tpp-qpol-{}.bin", std::process::id()));
        let q = sample_q();
        save_qtable(&path, &q).unwrap();
        let back = load_qtable(&path).unwrap();
        assert_eq!(q, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_errors_carry_the_path() {
        let err = load_qtable("/nonexistent/nope.qpol").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/nope.qpol"));
        assert!(matches!(err.root_cause(), StoreError::Io(_)));
    }

    #[test]
    fn detects_bad_magic() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        bytes[0] = b'X';
        // Fix the checksum so the magic check (not the checksum) fires.
        refresh_checksum(&mut bytes);
        assert!(matches!(decode_qtable(&bytes), Err(StoreError::BadMagic)));
    }

    #[test]
    fn detects_version_skew() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        bytes[4] = 99;
        refresh_checksum(&mut bytes);
        assert!(matches!(
            decode_qtable(&bytes),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn detects_corruption() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode_qtable(&bytes),
            Err(StoreError::ChecksumMismatch)
        ));
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode_qtable(&sample_q());
        assert!(matches!(
            decode_qtable(&bytes[..10]),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            decode_qtable(&[]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn detects_shape_length_mismatch() {
        // Claim a bigger table than the payload carries.
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        bytes[8] = 200; // n_states = 200
        refresh_checksum(&mut bytes);
        assert!(matches!(
            decode_qtable(&bytes),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn detects_trailing_garbage() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        let split = bytes.len() - 8;
        bytes.splice(split..split, [0u8; 4]);
        refresh_checksum(&mut bytes);
        assert!(decode_qtable(&bytes).is_err());
    }

    #[test]
    fn detects_checkpoint_truncation_in_resume_section() {
        let bytes = encode_checkpoint(&sample_ckpt());
        // Cut inside the resume section (between Q values and checksum).
        let cut = bytes.len() - 12;
        assert!(decode_checkpoint(&bytes[..cut]).is_err());
    }

    #[test]
    fn rejects_bad_resume_flag() {
        let mut bytes = encode_checkpoint(&sample_ckpt()).to_vec();
        let flag_at = HEADER_LEN + 8 * sample_ckpt().q.values().len();
        bytes[flag_at] = 7;
        refresh_checksum(&mut bytes);
        assert!(decode_checkpoint(&bytes).is_err());
        assert!(decode_qtable(&bytes).is_err());
    }

    #[test]
    fn empty_table_roundtrips() {
        let q = QTable::square(0);
        let back = decode_qtable(&encode_qtable(&q)).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let ckpt = TrainCheckpoint {
            q: QTable::square(0),
            episode: 0,
            sched_pos: 0,
            rng_state: [0; 4],
            visits: vec![],
            returns: vec![],
        };
        assert_eq!(decode_checkpoint(&encode_checkpoint(&ckpt)).unwrap(), ckpt);
    }

    #[test]
    fn fnv_reference_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        // Known vector: fnv1a64("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
