//! The `QPOL` binary format for learned policies.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"QPOL"
//! 4       2     version (currently 1)
//! 6       2     reserved (0)
//! 8       4     n_states  (u32)
//! 12      4     n_actions (u32)
//! 16      8*n   Q values, row-major f64 LE, n = n_states * n_actions
//! 16+8n   8     FNV-1a 64 checksum over bytes [0, 16+8n)
//! ```

use crate::error::StoreError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs;
use std::path::Path;
use tpp_rl::QTable;

const MAGIC: &[u8; 4] = b"QPOL";
const VERSION: u16 = 1;
const HEADER_LEN: usize = 16;

fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes a Q-table into the `QPOL` wire format.
pub fn encode_qtable(q: &QTable) -> Bytes {
    let n = q.values().len();
    let mut buf = BytesMut::with_capacity(HEADER_LEN + 8 * n + 8);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0);
    buf.put_u32_le(u32::try_from(q.n_states()).expect("state count fits u32"));
    buf.put_u32_le(u32::try_from(q.n_actions()).expect("action count fits u32"));
    for &v in q.values() {
        buf.put_f64_le(v);
    }
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Decodes a `QPOL` payload, verifying magic, version, shape and
/// checksum.
pub fn decode_qtable(mut data: &[u8]) -> Result<QTable, StoreError> {
    if data.len() < HEADER_LEN + 8 {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN + 8,
            got: data.len(),
        });
    }
    let total = data.len();
    let body = &data[..total - 8];
    let stored_checksum =
        u64::from_le_bytes(data[total - 8..].try_into().expect("slice is 8 bytes"));
    if fnv1a64(body) != stored_checksum {
        return Err(StoreError::ChecksumMismatch);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let _reserved = data.get_u16_le();
    let n_states = data.get_u32_le() as usize;
    let n_actions = data.get_u32_le() as usize;
    let n = n_states
        .checked_mul(n_actions)
        .ok_or(StoreError::BadMagic)?;
    let expected = HEADER_LEN + 8 * n + 8;
    if total != expected {
        return Err(StoreError::Truncated {
            expected,
            got: total,
        });
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(data.get_f64_le());
    }
    Ok(QTable::from_raw(n_states, n_actions, values))
}

/// Writes a Q-table to `path` in `QPOL` format.
pub fn save_qtable(path: impl AsRef<Path>, q: &QTable) -> Result<(), StoreError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, encode_qtable(q))?;
    Ok(())
}

/// Reads a Q-table from a `QPOL` file.
pub fn load_qtable(path: impl AsRef<Path>) -> Result<QTable, StoreError> {
    let data = fs::read(path)?;
    decode_qtable(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_q() -> QTable {
        let mut q = QTable::square(4);
        q.set(0, 1, 1.25);
        q.set(3, 2, -7.5);
        q.set(2, 2, f64::MIN_POSITIVE);
        q
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = sample_q();
        let bytes = encode_qtable(&q);
        let back = decode_qtable(&bytes).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn file_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("tpp-qpol-{}.bin", std::process::id()));
        let q = sample_q();
        save_qtable(&path, &q).unwrap();
        let back = load_qtable(&path).unwrap();
        assert_eq!(q, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_bad_magic() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        bytes[0] = b'X';
        // Fix the checksum so the magic check (not the checksum) fires.
        let len = bytes.len();
        let c = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&c.to_le_bytes());
        assert!(matches!(decode_qtable(&bytes), Err(StoreError::BadMagic)));
    }

    #[test]
    fn detects_version_skew() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        bytes[4] = 99;
        let len = bytes.len();
        let c = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&c.to_le_bytes());
        assert!(matches!(
            decode_qtable(&bytes),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn detects_corruption() {
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode_qtable(&bytes),
            Err(StoreError::ChecksumMismatch)
        ));
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode_qtable(&sample_q());
        assert!(matches!(
            decode_qtable(&bytes[..10]),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            decode_qtable(&[]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn detects_shape_length_mismatch() {
        // Claim a bigger table than the payload carries.
        let mut bytes = encode_qtable(&sample_q()).to_vec();
        bytes[8] = 200; // n_states = 200
        let len = bytes.len();
        let c = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&c.to_le_bytes());
        assert!(matches!(
            decode_qtable(&bytes),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_table_roundtrips() {
        let q = QTable::square(0);
        let back = decode_qtable(&encode_qtable(&q)).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn fnv_reference_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        // Known vector: fnv1a64("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
