//! Store error type.

use std::fmt;

/// Errors from persistence operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Binary payload did not start with the expected magic bytes.
    BadMagic,
    /// Binary payload has an unsupported format version.
    UnsupportedVersion(u16),
    /// Binary payload is shorter than its header claims.
    Truncated {
        /// Bytes required.
        expected: usize,
        /// Bytes present.
        got: usize,
    },
    /// Checksum mismatch: the payload is corrupt.
    ChecksumMismatch,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Json(e) => write!(f, "json error: {e}"),
            StoreError::BadMagic => f.write_str("not a QPOL policy file (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported QPOL version {v}"),
            StoreError::Truncated { expected, got } => {
                write!(f, "truncated payload: need {expected} bytes, have {got}")
            }
            StoreError::ChecksumMismatch => f.write_str("checksum mismatch (corrupt payload)"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::BadMagic.to_string().contains("QPOL"));
        assert!(StoreError::UnsupportedVersion(9).to_string().contains('9'));
        let t = StoreError::Truncated {
            expected: 10,
            got: 3,
        };
        assert!(t.to_string().contains("10") && t.to_string().contains('3'));
    }
}
