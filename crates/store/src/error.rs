//! Store error type.

use std::fmt;
use std::path::{Path, PathBuf};

/// Errors from persistence operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Binary payload did not start with the expected magic bytes.
    BadMagic,
    /// Binary payload has an unsupported format version.
    UnsupportedVersion(u16),
    /// Binary payload is shorter than its header claims.
    Truncated {
        /// Bytes required.
        expected: usize,
        /// Bytes present.
        got: usize,
    },
    /// Checksum mismatch: the payload is corrupt.
    ChecksumMismatch,
    /// The payload is a plain policy with no resume state, but a
    /// checkpoint (Q-table + resume state) was required.
    MissingResumeState,
    /// The payload decoded cleanly but carries NaN or infinite Q
    /// values. A poisoned table would silently corrupt every downstream
    /// argmax, so the decoder rejects it outright; permanent, since
    /// re-reading yields the same poison.
    NonFiniteValues,
    /// A failure with the offending path attached, so CLI errors can
    /// name the file instead of a bare "No such file or directory".
    At {
        /// The file or directory the operation was acting on.
        path: PathBuf,
        /// The underlying failure.
        source: Box<StoreError>,
    },
    /// A checkpoint directory held generations, but none decoded
    /// cleanly.
    NoValidCheckpoint {
        /// The checkpoint directory.
        dir: PathBuf,
        /// How many candidate generations were tried and rejected.
        tried: usize,
    },
}

impl StoreError {
    /// Wraps `source` with the path it was operating on (idempotent
    /// convenience used by every file-level entry point).
    pub fn at(path: impl Into<PathBuf>, source: StoreError) -> StoreError {
        StoreError::At {
            path: path.into(),
            source: Box::new(source),
        }
    }

    /// The error with any [`StoreError::At`] context stripped — what
    /// actually went wrong, regardless of where.
    pub fn root_cause(&self) -> &StoreError {
        match self {
            StoreError::At { source, .. } => source.root_cause(),
            other => other,
        }
    }

    /// The innermost path attached via [`StoreError::At`], if any.
    pub fn path(&self) -> Option<&Path> {
        match self {
            StoreError::At { path, source } => Some(source.path().unwrap_or(path)),
            _ => None,
        }
    }

    /// Whether retrying the failed operation can plausibly succeed.
    ///
    /// **Transient** (retryable): resource-pressure and interruption
    /// failures — `ENOSPC`, interrupted/timed-out I/O — and a truncated
    /// payload, which is what a reader observes mid-rotation while a
    /// writer is still streaming the file (the atomic-rename protocol
    /// makes this a read-side race, not damage). **Permanent**: anything
    /// that says the bytes themselves are wrong — bad magic, checksum
    /// mismatch, version skew, JSON syntax, missing resume state, or a
    /// checkpoint directory whose every generation is corrupt. Retrying
    /// those re-reads the same poison; callers should fall back instead
    /// (the serving layer's backoff loop is the canonical consumer).
    pub fn is_retryable(&self) -> bool {
        match self.root_cause() {
            StoreError::Io(e) => {
                matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::StorageFull
                ) || e.to_string().contains("no space left")
            }
            StoreError::Truncated { .. } => true,
            StoreError::Json(_)
            | StoreError::BadMagic
            | StoreError::UnsupportedVersion(_)
            | StoreError::ChecksumMismatch
            | StoreError::MissingResumeState
            | StoreError::NonFiniteValues
            | StoreError::NoValidCheckpoint { .. } => false,
            // `root_cause` never returns `At`; treat it as its source.
            StoreError::At { source, .. } => source.is_retryable(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Json(e) => write!(f, "json error: {e}"),
            StoreError::BadMagic => f.write_str("not a QPOL policy file (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported QPOL version {v}"),
            StoreError::Truncated { expected, got } => {
                write!(f, "truncated payload: need {expected} bytes, have {got}")
            }
            StoreError::ChecksumMismatch => f.write_str("checksum mismatch (corrupt payload)"),
            StoreError::MissingResumeState => {
                f.write_str("policy file carries no resume state (not a checkpoint)")
            }
            StoreError::NonFiniteValues => {
                f.write_str("policy carries non-finite Q values (poisoned table rejected)")
            }
            StoreError::At { path, source } => write!(f, "{}: {source}", path.display()),
            StoreError::NoValidCheckpoint { dir, tried } => write!(
                f,
                "no valid checkpoint in {} ({tried} corrupt generation(s) skipped)",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Json(e) => Some(e),
            StoreError::At { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::BadMagic.to_string().contains("QPOL"));
        assert!(StoreError::UnsupportedVersion(9).to_string().contains('9'));
        let t = StoreError::Truncated {
            expected: 10,
            got: 3,
        };
        assert!(t.to_string().contains("10") && t.to_string().contains('3'));
    }

    #[test]
    fn at_context_names_the_path() {
        let e = StoreError::at("/some/policy.qpol", StoreError::ChecksumMismatch);
        let msg = e.to_string();
        assert!(msg.contains("/some/policy.qpol"), "{msg}");
        assert!(msg.contains("checksum"), "{msg}");
        assert!(matches!(e.root_cause(), StoreError::ChecksumMismatch));
        assert_eq!(e.path().unwrap(), Path::new("/some/policy.qpol"));
    }

    #[test]
    fn nested_at_reports_innermost_path() {
        let e = StoreError::at(
            "/ckpt/dir",
            StoreError::at("/ckpt/dir/gen-3.qpol", StoreError::BadMagic),
        );
        assert_eq!(e.path().unwrap(), Path::new("/ckpt/dir/gen-3.qpol"));
        assert!(matches!(e.root_cause(), StoreError::BadMagic));
    }

    #[test]
    fn transient_errors_are_retryable() {
        use std::io::{Error, ErrorKind};
        let enospc_kind = StoreError::Io(Error::new(ErrorKind::StorageFull, "disk full"));
        assert!(enospc_kind.is_retryable());
        // The fault injector reports ENOSPC as `Other` with a message.
        let enospc_msg = StoreError::Io(Error::other("no space left on device (fault injection)"));
        assert!(enospc_msg.is_retryable());
        let interrupted = StoreError::Io(Error::new(ErrorKind::Interrupted, "EINTR"));
        assert!(interrupted.is_retryable());
        // Short write observed from the read side.
        let torn = StoreError::Truncated {
            expected: 100,
            got: 50,
        };
        assert!(torn.is_retryable());
        // `At` context does not change the classification.
        assert!(StoreError::at(
            "/ckpt/gen-1.qpol",
            StoreError::Truncated {
                expected: 8,
                got: 4
            }
        )
        .is_retryable());
    }

    #[test]
    fn permanent_errors_are_not_retryable() {
        assert!(!StoreError::BadMagic.is_retryable());
        assert!(!StoreError::ChecksumMismatch.is_retryable());
        assert!(!StoreError::UnsupportedVersion(7).is_retryable());
        assert!(!StoreError::MissingResumeState.is_retryable());
        assert!(!StoreError::NonFiniteValues.is_retryable());
        assert!(!StoreError::NoValidCheckpoint {
            dir: PathBuf::from("/c"),
            tried: 3
        }
        .is_retryable());
        let missing = StoreError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "no such file",
        ));
        assert!(!missing.is_retryable());
        assert!(!StoreError::at("/p", StoreError::ChecksumMismatch).is_retryable());
    }

    #[test]
    fn no_valid_checkpoint_display() {
        let e = StoreError::NoValidCheckpoint {
            dir: PathBuf::from("/c"),
            tried: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("/c") && msg.contains('2'), "{msg}");
    }
}
