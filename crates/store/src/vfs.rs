//! A minimal virtual filesystem, so durability is *tested*, not
//! asserted.
//!
//! Every write path in this crate goes through the [`Vfs`] trait. In
//! production that is [`RealFs`] (plain `std::fs` plus explicit
//! fsyncs). In tests it is [`FaultFs`], which wraps any inner `Vfs` and
//! injects a fault — a short write, `ENOSPC`, or a simulated process
//! crash — at a configurable mutating-operation count. The atomicity
//! suite sweeps that count across the whole checkpoint write path and
//! proves that no abort point can leave the store unreadable.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Filesystem operations the store needs, in mockable form.
///
/// Mutating operations (`write`, `rename`, `sync_*`, `remove_file`,
/// `create_dir_all`) are the fault-injection points; reads are assumed
/// to either succeed or fail atomically.
pub trait Vfs {
    /// Reads an entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes an entire file (create or truncate).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Creates a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flushes a file's data and metadata to stable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Flushes a directory entry table to stable storage (makes a
    /// preceding rename durable).
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Lists the entries of a directory (file paths, unsorted).
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Cheap file observation: `(length, mtime in nanos since the Unix
    /// epoch)`. Used by the serving layer's checkpoint watch to notice
    /// rotation or in-place modification without reading the payload.
    /// Like reads, this is not a fault-injection point, so the default
    /// goes straight to `std::fs` for every implementation.
    fn stat(&self, path: &Path) -> io::Result<(u64, u128)> {
        let meta = fs::metadata(path)?;
        let mtime = meta
            .modified()?
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        Ok((meta.len(), mtime))
    }
}

/// The production filesystem: `std::fs` with explicit fsyncs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl Vfs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Windows cannot open a directory handle this way; directory
        // sync is a no-op there (rename durability is best-effort).
        #[cfg(unix)]
        {
            fs::File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// What [`FaultFs`] injects when the operation budget runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The process dies at the fault point: the faulting operation does
    /// not happen, and every later operation fails too. Models
    /// `kill -9` / power loss.
    Crash,
    /// The faulting write persists only the first half of its payload,
    /// then the process dies (all later operations fail). Models a torn
    /// write interrupted by a crash. When the faulting operation is not
    /// a write it degrades to [`FaultKind::Crash`].
    ShortWrite,
    /// The faulting write persists a partial payload and returns
    /// `ENOSPC`; later operations proceed normally. Models a full disk
    /// the caller can observe and handle. A non-write faulting
    /// operation fails with `ENOSPC` without side effects.
    Enospc,
}

/// A fault-injecting [`Vfs`] wrapper.
///
/// Counts mutating operations; the `fail_at`-th one (0-based) triggers
/// the configured [`FaultKind`]. With `fail_at` = `u64::MAX` it is a
/// pure pass-through counter, which is how the atomicity sweep measures
/// the length of the write path it is about to perturb.
pub struct FaultFs<F> {
    inner: F,
    fail_at: u64,
    kind: FaultKind,
    ops: AtomicU64,
    crashed: AtomicBool,
}

impl<F: Vfs> FaultFs<F> {
    /// Wraps `inner`, arming `kind` at mutating operation `fail_at`.
    pub fn new(inner: F, fail_at: u64, kind: FaultKind) -> Self {
        FaultFs {
            inner,
            fail_at,
            kind,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// A pass-through counter: never faults, just counts mutating
    /// operations.
    pub fn counting(inner: F) -> Self {
        Self::new(inner, u64::MAX, FaultKind::Crash)
    }

    /// Mutating operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Whether the simulated crash has happened.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    fn crash_error() -> io::Error {
        io::Error::other("simulated crash (fault injection)")
    }

    fn enospc_error() -> io::Error {
        io::Error::other("no space left on device (fault injection)")
    }

    /// Charges one mutating operation. `Ok(true)` means "this is the
    /// faulting operation" (only ever returned for `ShortWrite` /
    /// `Enospc`, which need to run partially).
    fn charge(&self) -> io::Result<bool> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(Self::crash_error());
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if op != self.fail_at {
            return Ok(false);
        }
        match self.kind {
            FaultKind::Crash => {
                self.crashed.store(true, Ordering::Relaxed);
                Err(Self::crash_error())
            }
            FaultKind::ShortWrite | FaultKind::Enospc => Ok(true),
        }
    }

    /// [`charge`](Self::charge) for operations that have no partial
    /// form: the fault point always errors. `ShortWrite` degrades to a
    /// crash, `Enospc` to a transient failure.
    fn charge_strict(&self) -> io::Result<()> {
        if self.charge()? {
            if self.kind == FaultKind::Enospc {
                return Err(Self::enospc_error());
            }
            self.crashed.store(true, Ordering::Relaxed);
            return Err(Self::crash_error());
        }
        Ok(())
    }
}

impl<F: Vfs> Vfs for FaultFs<F> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(Self::crash_error());
        }
        self.inner.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if self.charge()? {
            // Torn write: only the first half of the payload lands.
            self.inner.write(path, &data[..data.len() / 2])?;
            return match self.kind {
                FaultKind::ShortWrite => {
                    self.crashed.store(true, Ordering::Relaxed);
                    Err(Self::crash_error())
                }
                _ => Err(Self::enospc_error()),
            };
        }
        self.inner.write(path, data)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.charge_strict()?;
        self.inner.create_dir_all(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.charge_strict()?;
        self.inner.rename(from, to)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.charge_strict()?;
        self.inner.sync_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.charge_strict()?;
        self.inner.sync_dir(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.charge_strict()?;
        self.inner.remove_file(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(Self::crash_error());
        }
        self.inner.read_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.crashed.load(Ordering::Relaxed) && self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpp-vfs-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn realfs_roundtrip() {
        let dir = tmp("real");
        let file = dir.join("x.bin");
        RealFs.write(&file, b"hello").unwrap();
        RealFs.sync_file(&file).unwrap();
        RealFs.sync_dir(&dir).unwrap();
        assert_eq!(RealFs.read(&file).unwrap(), b"hello");
        assert!(RealFs.exists(&file));
        let listed = RealFs.read_dir(&dir).unwrap();
        assert!(listed.contains(&file));
        RealFs.remove_file(&file).unwrap();
        assert!(!RealFs.exists(&file));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counting_passes_through_and_counts() {
        let dir = tmp("count");
        let fs = FaultFs::counting(RealFs);
        let file = dir.join("y.bin");
        fs.write(&file, b"abc").unwrap();
        fs.sync_file(&file).unwrap();
        fs.rename(&file, &dir.join("z.bin")).unwrap();
        assert_eq!(fs.ops(), 3);
        assert!(!fs.crashed());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_fails_operation_and_everything_after() {
        let dir = tmp("crash");
        let fs = FaultFs::new(RealFs, 1, FaultKind::Crash);
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        fs.write(&a, b"first").unwrap(); // op 0: fine
        assert!(fs.write(&b, b"second").is_err()); // op 1: crash
        assert!(fs.crashed());
        assert!(fs.read(&a).is_err(), "a dead process reads nothing");
        assert!(fs.sync_file(&a).is_err());
        // The pre-crash write actually landed (visible after "reboot").
        assert_eq!(RealFs.read(&a).unwrap(), b"first");
        assert!(!RealFs.exists(&b), "the crashed write must not land");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_tears_the_payload() {
        let dir = tmp("torn");
        let fs = FaultFs::new(RealFs, 0, FaultKind::ShortWrite);
        let f = dir.join("t.bin");
        assert!(fs.write(&f, b"0123456789").is_err());
        assert!(fs.crashed());
        assert_eq!(RealFs.read(&f).unwrap(), b"01234", "half the payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_is_transient() {
        let dir = tmp("enospc");
        let fs = FaultFs::new(RealFs, 0, FaultKind::Enospc);
        let f = dir.join("e.bin");
        let err = fs.write(&f, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("no space left"), "{err}");
        assert!(!fs.crashed());
        // The disk "recovers": the next write succeeds.
        fs.write(&f, b"0123456789").unwrap();
        assert_eq!(RealFs.read(&f).unwrap(), b"0123456789");
        std::fs::remove_dir_all(&dir).ok();
    }
}
