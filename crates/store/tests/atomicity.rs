//! Fault-injection proof of the durability protocol.
//!
//! The claim: no matter where a crash lands inside a checkpoint save —
//! any mutating filesystem operation, a torn write, an out-of-space
//! failure — a subsequent loader always recovers a complete, valid
//! checkpoint (the one being written or the previous generation), never
//! a torn or half-written one. The tests prove it by *sweeping* the
//! failure point across every operation of the protocol rather than
//! spot-checking a few.

use std::path::PathBuf;
use tpp_rl::{QTable, TrainCheckpoint, VisitTable};
use tpp_store::{atomic_write, CheckpointSet, FaultFs, FaultKind, RealFs, StoreError};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpp-sweep-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn ckpt(episode: u64) -> TrainCheckpoint {
    let mut q = QTable::square(4);
    for s in 0..4 {
        for a in 0..4 {
            q.set(s, a, (episode as f64) + (s * 4 + a) as f64 / 16.0);
        }
    }
    TrainCheckpoint {
        q,
        episode,
        sched_pos: episode,
        rng_state: [episode, episode + 1, episode + 2, episode + 3],
        visits: VisitTable::from_raw_dense(4, 4, vec![7; 16]),
        returns: (0..episode).map(|e| e as f64).collect(),
    }
}

/// How many mutating filesystem operations one `save` performs in
/// `dir`'s current state, measured by a counting (never-failing)
/// injector.
fn ops_for_save(dir: &PathBuf, snapshot: &TrainCheckpoint, keep: usize) -> u64 {
    let fs = FaultFs::counting(RealFs);
    CheckpointSet::new(&fs, dir, keep).save(snapshot).unwrap();
    fs.ops()
}

/// Crash-at-every-op sweep over a generation-2 save: afterwards the
/// loader must recover either generation 1 or a complete generation 2 —
/// and with `keep = 1` the sweep also crosses the prune of generation 1,
/// which must only ever happen after generation 2 is durable.
#[test]
fn crash_anywhere_during_save_preserves_a_valid_checkpoint() {
    for keep in [1usize, 3] {
        // Measure the op count of the second save on a replica dir.
        let probe = tmp_dir(&format!("probe-{keep}"));
        CheckpointSet::new(&RealFs, &probe, keep)
            .save(&ckpt(10))
            .unwrap();
        let total = ops_for_save(&probe, &ckpt(20), keep);
        std::fs::remove_dir_all(&probe).ok();
        assert!(total >= 8, "expected a multi-op protocol, got {total}");

        for fail_at in 0..total {
            let dir = tmp_dir(&format!("crash-{keep}-{fail_at}"));
            CheckpointSet::new(&RealFs, &dir, keep)
                .save(&ckpt(10))
                .unwrap();

            let fs = FaultFs::new(RealFs, fail_at, FaultKind::Crash);
            let err = CheckpointSet::new(&fs, &dir, keep)
                .save(&ckpt(20))
                .unwrap_err();
            assert!(err.path().is_some(), "crash errors must name a path: {err}");

            let (generation, loaded) = CheckpointSet::new(&RealFs, &dir, keep)
                .load_latest()
                .unwrap_or_else(|e| panic!("keep={keep} crash at op {fail_at}: {e}"))
                .unwrap_or_else(|| panic!("keep={keep} crash at op {fail_at}: set empty"));
            let expected = if generation == 1 { ckpt(10) } else { ckpt(20) };
            assert_eq!(
                loaded, expected,
                "keep={keep} crash at op {fail_at}: generation {generation} is torn"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Short-write-at-every-op sweep: a torn payload may strand a `.tmp`
/// file but must never replace a live generation.
#[test]
fn short_write_anywhere_preserves_a_valid_checkpoint() {
    let probe = tmp_dir("sw-probe");
    CheckpointSet::new(&RealFs, &probe, 3)
        .save(&ckpt(10))
        .unwrap();
    let total = ops_for_save(&probe, &ckpt(20), 3);
    std::fs::remove_dir_all(&probe).ok();

    for fail_at in 0..total {
        let dir = tmp_dir(&format!("sw-{fail_at}"));
        CheckpointSet::new(&RealFs, &dir, 3)
            .save(&ckpt(10))
            .unwrap();

        let fs = FaultFs::new(RealFs, fail_at, FaultKind::ShortWrite);
        assert!(CheckpointSet::new(&fs, &dir, 3).save(&ckpt(20)).is_err());

        let (generation, loaded) = CheckpointSet::new(&RealFs, &dir, 3)
            .load_latest()
            .unwrap_or_else(|e| panic!("short write at op {fail_at}: {e}"))
            .unwrap_or_else(|| panic!("short write at op {fail_at}: set empty"));
        let expected = if generation == 1 { ckpt(10) } else { ckpt(20) };
        assert_eq!(
            loaded, expected,
            "short write at op {fail_at} tore a generation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// ENOSPC during a save is a transient error: the old generation stays
/// loadable and — unlike a crash — retrying on the same (now healthy)
/// filesystem succeeds.
#[test]
fn enospc_is_survivable_and_retryable() {
    let dir = tmp_dir("enospc");
    CheckpointSet::new(&RealFs, &dir, 3)
        .save(&ckpt(10))
        .unwrap();

    let fs = FaultFs::new(RealFs, 0, FaultKind::Enospc);
    let err = CheckpointSet::new(&fs, &dir, 3)
        .save(&ckpt(20))
        .unwrap_err();
    assert!(err.to_string().contains("no space left"), "{err}");

    let set = CheckpointSet::new(&RealFs, &dir, 3);
    let (generation, loaded) = set.load_latest().unwrap().unwrap();
    assert_eq!((generation, loaded), (1, ckpt(10)));

    // Space freed: the retry lands generation 2 normally.
    set.save(&ckpt(20)).unwrap();
    let (generation, loaded) = set.load_latest().unwrap().unwrap();
    assert_eq!((generation, loaded), (2, ckpt(20)));
    std::fs::remove_dir_all(&dir).ok();
}

/// The same sweep for the bare `atomic_write` primitive on one file:
/// after a crash at any op the destination holds exactly the old or
/// exactly the new payload.
#[test]
fn atomic_write_is_all_or_nothing_at_every_op() {
    let probe = tmp_dir("aw-probe");
    let probe_file = probe.join("f.bin");
    atomic_write(&RealFs, &probe_file, b"old-payload").unwrap();
    let fs = FaultFs::counting(RealFs);
    atomic_write(&fs, &probe_file, b"new-payload!").unwrap();
    let total = fs.ops();
    std::fs::remove_dir_all(&probe).ok();

    for kind in [FaultKind::Crash, FaultKind::ShortWrite] {
        for fail_at in 0..total {
            let dir = tmp_dir(&format!("aw-{kind:?}-{fail_at}"));
            let file = dir.join("f.bin");
            atomic_write(&RealFs, &file, b"old-payload").unwrap();

            let fs = FaultFs::new(RealFs, fail_at, kind);
            assert!(atomic_write(&fs, &file, b"new-payload!").is_err());

            let contents = std::fs::read(&file).unwrap();
            assert!(
                contents == b"old-payload" || contents == b"new-payload!",
                "{kind:?} at op {fail_at} left torn contents {contents:?}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// All generations corrupt → the typed `NoValidCheckpoint` error names
/// the directory and the number of rejected candidates.
#[test]
fn all_generations_corrupt_reports_every_candidate() {
    let dir = tmp_dir("allbad");
    let set = CheckpointSet::new(&RealFs, &dir, 3);
    set.save(&ckpt(10)).unwrap();
    set.save(&ckpt(20)).unwrap();
    for generation in [1, 2] {
        std::fs::write(set.generation_path(generation), b"QPOLgarbage").unwrap();
    }
    match set.load_latest().unwrap_err() {
        StoreError::NoValidCheckpoint { dir: d, tried } => {
            assert_eq!(d, dir);
            assert_eq!(tried, 2);
        }
        other => panic!("expected NoValidCheckpoint, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
