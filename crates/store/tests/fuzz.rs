//! Decoder robustness: arbitrary bytes must never panic the QPOL
//! decoder — every malformed input maps to a typed error.

use proptest::prelude::*;
use tpp_rl::QTable;
use tpp_store::{decode_qtable, encode_qtable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine; panicking is not.
        let _ = decode_qtable(&bytes);
    }

    #[test]
    fn truncations_of_valid_payloads_error_cleanly(
        vals in prop::collection::vec(-1e3f64..1e3, 9),
        cut in 0usize..80,
    ) {
        let q = QTable::from_raw(3, 3, vals);
        let bytes = encode_qtable(&q);
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(decode_qtable(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_byte_corruption_detected(
        vals in prop::collection::vec(-1e3f64..1e3, 4),
        pos in 0usize..48,
        mask in 1u8..=255,
    ) {
        let q = QTable::from_raw(2, 2, vals);
        let mut bytes = encode_qtable(&q).to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= mask;
        // A flipped bit anywhere must be caught — in the body by the
        // checksum, in the checksum field by the mismatch itself.
        prop_assert!(decode_qtable(&bytes).is_err());
    }
}
