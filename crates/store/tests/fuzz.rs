//! Decoder robustness: arbitrary bytes must never panic the QPOL
//! decoders — every malformed input maps to a typed error. Covered for
//! both the v1 policy format and the v2 checkpoint format.
//!
//! Two layers: `proptest` properties (shrinking, new inputs per run)
//! and deterministic seeded sweeps driven by [`TrainRng`] that
//! exercise the same properties with fixed, reproducible cases — so
//! the guarantees are still executed in offline builds where the
//! proptest dependency is stubbed out.

use proptest::prelude::*;
use tpp_rl::{QTable, TrainCheckpoint, TrainRng, VisitTable};
use tpp_store::{decode_checkpoint, decode_qtable, encode_checkpoint, encode_qtable, StoreError};

fn sample_checkpoint(rng: &mut TrainRng, n: usize) -> TrainCheckpoint {
    let mut q = QTable::square(n);
    for s in 0..n {
        for a in 0..n {
            q.set(s, a, rng.next_f64() * 100.0 - 50.0);
        }
    }
    let episodes = rng.index(20) as u64;
    TrainCheckpoint {
        q,
        episode: episodes,
        sched_pos: episodes,
        rng_state: [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ],
        visits: VisitTable::from_raw_dense(
            n,
            n,
            (0..n * n).map(|_| rng.index(1000) as u32).collect(),
        ),
        returns: (0..episodes).map(|_| rng.next_f64() * 10.0).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine; panicking is not.
        let _ = decode_qtable(&bytes);
        let _ = decode_checkpoint(&bytes);
    }

    #[test]
    fn truncations_of_valid_payloads_error_cleanly(
        vals in prop::collection::vec(-1e3f64..1e3, 9),
        cut in 0usize..80,
    ) {
        let q = QTable::from_raw(3, 3, vals);
        let bytes = encode_qtable(&q);
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(decode_qtable(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_byte_corruption_detected(
        vals in prop::collection::vec(-1e3f64..1e3, 4),
        pos in 0usize..48,
        mask in 1u8..=255,
    ) {
        let q = QTable::from_raw(2, 2, vals);
        let mut bytes = encode_qtable(&q).to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= mask;
        // A flipped bit anywhere must be caught — in the body by the
        // checksum, in the checksum field by the mismatch itself.
        prop_assert!(decode_qtable(&bytes).is_err());
    }
}

/// 4096 reproducible random byte strings through both decoders: no
/// panic, ever. Catches out-of-bounds slicing and unchecked arithmetic
/// in header parsing.
#[test]
fn seeded_random_bytes_never_panic_either_decoder() {
    let mut rng = TrainRng::seed_from_u64(0xF00D);
    for _ in 0..4096 {
        let len = rng.index(512);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let _ = decode_qtable(&bytes);
        let _ = decode_checkpoint(&bytes);
    }
}

/// Adversarial prefixes: random bytes grafted onto a valid header make
/// the decoder walk plausible shapes with garbage bodies.
#[test]
fn seeded_valid_header_garbage_body_never_panics() {
    let mut rng = TrainRng::seed_from_u64(0xBEEF);
    let v1 = encode_qtable(&QTable::square(3));
    let v2 = encode_checkpoint(&sample_checkpoint(&mut rng, 3));
    for template in [&v1[..], &v2[..]] {
        for _ in 0..512 {
            let keep = rng.index(template.len() + 1);
            let tail = rng.index(128);
            let mut bytes = template[..keep].to_vec();
            bytes.extend((0..tail).map(|_| (rng.next_u64() & 0xFF) as u8));
            let _ = decode_qtable(&bytes);
            let _ = decode_checkpoint(&bytes);
        }
    }
}

/// Every possible truncation of valid v1 and v2 payloads errors
/// cleanly — exhaustive, not sampled.
#[test]
fn every_truncation_errors_cleanly_v1_and_v2() {
    let mut rng = TrainRng::seed_from_u64(7);
    let v1 = encode_qtable(&QTable::from_raw(3, 3, (0..9).map(f64::from).collect()));
    let v2 = encode_checkpoint(&sample_checkpoint(&mut rng, 3));
    for bytes in [&v1, &v2] {
        for cut in 0..bytes.len() {
            assert!(
                decode_qtable(&bytes[..cut]).is_err(),
                "v?: qtable decode accepted a {cut}-byte truncation"
            );
            assert!(
                decode_checkpoint(&bytes[..cut]).is_err(),
                "v?: checkpoint decode accepted a {cut}-byte truncation"
            );
        }
    }
}

/// Every single-byte XOR corruption of a v2 checkpoint is rejected —
/// exhaustive over positions, sampled over masks.
#[test]
fn every_position_corruption_detected_v2() {
    let mut rng = TrainRng::seed_from_u64(99);
    let bytes = encode_checkpoint(&sample_checkpoint(&mut rng, 2)).to_vec();
    for pos in 0..bytes.len() {
        let mask = (rng.next_u64() & 0xFF) as u8 | 1; // never zero
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= mask;
        assert!(
            decode_checkpoint(&corrupt).is_err(),
            "corruption at byte {pos} (mask {mask:#04x}) went undetected"
        );
    }
}

/// Random v2 checkpoints roundtrip exactly, and decode as plain
/// Q-tables too (forward compatibility for policy-only readers).
#[test]
fn seeded_checkpoint_roundtrips() {
    let mut rng = TrainRng::seed_from_u64(0xC0FFEE);
    for _ in 0..64 {
        let n = 1 + rng.index(8);
        let ckpt = sample_checkpoint(&mut rng, n);
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ckpt);
        assert_eq!(decode_qtable(&bytes).unwrap(), ckpt.q);
    }
}

/// A v1 policy refuses to masquerade as a checkpoint with a typed
/// error, not a panic or a zeroed resume state.
#[test]
fn v1_payload_is_not_a_checkpoint() {
    let bytes = encode_qtable(&QTable::square(4));
    assert!(matches!(
        decode_checkpoint(&bytes),
        Err(StoreError::MissingResumeState)
    ));
}
