//! Training statistics.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Per-episode returns recorded during training.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    returns: Vec<f64>,
}

impl TrainStats {
    /// Empty stats with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        TrainStats {
            returns: Vec::with_capacity(n),
        }
    }

    /// Records one episode's return.
    pub fn push(&mut self, ep_return: f64) {
        self.returns.push(ep_return);
    }

    /// Number of recorded episodes.
    pub fn episodes(&self) -> usize {
        self.returns.len()
    }

    /// All returns, in episode order.
    pub fn returns(&self) -> &[f64] {
        &self.returns
    }

    /// Mean return over all episodes (`0.0` when empty).
    pub fn mean_return(&self) -> f64 {
        self.mean_return_over(0..self.returns.len())
    }

    /// Mean return over an episode range, clamped to what was recorded.
    pub fn mean_return_over(&self, range: Range<usize>) -> f64 {
        let end = range.end.min(self.returns.len());
        let start = range.start.min(end);
        let slice = &self.returns[start..end];
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().sum::<f64>() / slice.len() as f64
        }
    }

    /// Trailing moving average with the given window, one value per
    /// episode — handy for convergence plots.
    pub fn moving_average(&self, window: usize) -> Vec<f64> {
        let w = window.max(1);
        let mut out = Vec::with_capacity(self.returns.len());
        let mut sum = 0.0;
        for i in 0..self.returns.len() {
            sum += self.returns[i];
            if i >= w {
                sum -= self.returns[i - w];
            }
            out.push(sum / (i.min(w - 1) + 1) as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_ranges() {
        let mut s = TrainStats::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.episodes(), 4);
        assert_eq!(s.mean_return(), 2.5);
        assert_eq!(s.mean_return_over(2..4), 3.5);
        assert_eq!(s.mean_return_over(2..100), 3.5); // clamped
        assert_eq!(s.mean_return_over(4..4), 0.0);
    }

    #[test]
    fn moving_average_window() {
        let mut s = TrainStats::default();
        for v in [2.0, 4.0, 6.0, 8.0] {
            s.push(v);
        }
        let ma = s.moving_average(2);
        assert_eq!(ma, vec![2.0, 3.0, 5.0, 7.0]);
        // Window 1 reproduces the raw series.
        assert_eq!(s.moving_average(1), s.returns());
    }

    #[test]
    fn empty_stats() {
        let s = TrainStats::default();
        assert_eq!(s.mean_return(), 0.0);
        assert!(s.moving_average(3).is_empty());
    }
}
