//! Training statistics.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Per-episode returns recorded during training.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    returns: Vec<f64>,
}

impl TrainStats {
    /// Empty stats with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        TrainStats {
            returns: Vec::with_capacity(n),
        }
    }

    /// Records one episode's return.
    pub fn push(&mut self, ep_return: f64) {
        self.returns.push(ep_return);
    }

    /// Number of recorded episodes.
    pub fn episodes(&self) -> usize {
        self.returns.len()
    }

    /// All returns, in episode order.
    pub fn returns(&self) -> &[f64] {
        &self.returns
    }

    /// Mean return over all episodes (`0.0` when empty).
    pub fn mean_return(&self) -> f64 {
        self.mean_return_over(0..self.returns.len())
    }

    /// Mean return over an episode range, clamped to what was recorded.
    pub fn mean_return_over(&self, range: Range<usize>) -> f64 {
        let end = range.end.min(self.returns.len());
        let start = range.start.min(end);
        let slice = &self.returns[start..end];
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().sum::<f64>() / slice.len() as f64
        }
    }

    /// Nearest-rank percentile over all returns (`q` in `[0, 1]`;
    /// `0.0` when empty). Exact — sorts a copy, so prefer [`summary`]
    /// [`TrainStats::summary`] when several quantiles are needed.
    pub fn percentile(&self, q: f64) -> f64 {
        let mut sorted = self.returns.clone();
        // total_cmp: a NaN return (degenerate reward) sorts high
        // instead of aborting the stats path.
        sorted.sort_by(|a, b| a.total_cmp(b));
        percentile_of_sorted(&sorted, q)
    }

    /// Median return (`0.0` when empty).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile return (`0.0` when empty).
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// One-pass summary of the recorded returns (all zeros when empty).
    pub fn summary(&self) -> ReturnSummary {
        if self.returns.is_empty() {
            return ReturnSummary::default();
        }
        let mut sorted = self.returns.clone();
        // total_cmp: a NaN return (degenerate reward) sorts high
        // instead of aborting the stats path.
        sorted.sort_by(|a, b| a.total_cmp(b));
        ReturnSummary {
            episodes: sorted.len(),
            mean: self.mean_return(),
            p50: percentile_of_sorted(&sorted, 0.50),
            p95: percentile_of_sorted(&sorted, 0.95),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }

    /// Trailing moving average with the given window, one value per
    /// episode — handy for convergence plots.
    pub fn moving_average(&self, window: usize) -> Vec<f64> {
        let w = window.max(1);
        let mut out = Vec::with_capacity(self.returns.len());
        let mut sum = 0.0;
        for i in 0..self.returns.len() {
            sum += self.returns[i];
            if i >= w {
                sum -= self.returns[i - w];
            }
            out.push(sum / (i.min(w - 1) + 1) as f64);
        }
        out
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Distribution summary of the per-episode returns, shared by the
/// metrics layer and the convergence CSV writers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReturnSummary {
    /// Number of episodes summarised.
    pub episodes: usize,
    /// Mean return.
    pub mean: f64,
    /// Median return (nearest rank).
    pub p50: f64,
    /// 95th-percentile return (nearest rank).
    pub p95: f64,
    /// Smallest return.
    pub min: f64,
    /// Largest return.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_ranges() {
        let mut s = TrainStats::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.episodes(), 4);
        assert_eq!(s.mean_return(), 2.5);
        assert_eq!(s.mean_return_over(2..4), 3.5);
        assert_eq!(s.mean_return_over(2..100), 3.5); // clamped
        assert_eq!(s.mean_return_over(4..4), 0.0);
    }

    #[test]
    fn moving_average_window() {
        let mut s = TrainStats::default();
        for v in [2.0, 4.0, 6.0, 8.0] {
            s.push(v);
        }
        let ma = s.moving_average(2);
        assert_eq!(ma, vec![2.0, 3.0, 5.0, 7.0]);
        // Window 1 reproduces the raw series.
        assert_eq!(s.moving_average(1), s.returns());
    }

    #[test]
    fn empty_stats() {
        let s = TrainStats::default();
        assert_eq!(s.mean_return(), 0.0);
        assert!(s.moving_average(3).is_empty());
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.summary(), ReturnSummary::default());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut s = TrainStats::default();
        // Push out of order so the percentile path has to sort.
        for v in [30.0, 10.0, 50.0, 20.0, 40.0] {
            s.push(v);
        }
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.p50(), 30.0); // ceil(0.5 * 5) = rank 3
        assert_eq!(s.percentile(0.6), 30.0);
        assert_eq!(s.p95(), 50.0); // ceil(0.95 * 5) = rank 5
        assert_eq!(s.percentile(1.0), 50.0);
    }

    #[test]
    fn summary_matches_individual_helpers() {
        let mut s = TrainStats::default();
        for v in [3.0, 1.0, 4.0, 1.5, 9.0, 2.5] {
            s.push(v);
        }
        let sum = s.summary();
        assert_eq!(sum.episodes, 6);
        assert_eq!(sum.mean, s.mean_return());
        assert_eq!(sum.p50, s.p50());
        assert_eq!(sum.p95, s.p95());
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 9.0);
    }
}
