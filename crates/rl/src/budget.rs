//! Cooperative compute budgets: deadlines and step/episode limits.
//!
//! A [`Budget`] bounds how much work a training loop or rollout may do
//! before it must stop and hand back whatever it has. The check is
//! *cooperative*: the loop calls [`Budget::check_episode`] /
//! [`Budget::check_step`] at its natural boundaries, so a stop is always
//! clean — no partially-applied update, no poisoned state. Episode and
//! step limits are exact and therefore deterministic (the serving
//! layer's chaos tests rely on this); the wall-clock deadline is the
//! production guard against stalls and over-long requests.
//!
//! Budgets are `Sync` (all counters are atomic) so a single budget can
//! be shared between a request handler and the compute it supervises.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a budget stopped the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStop {
    /// The wall-clock deadline passed.
    Deadline,
    /// The episode limit was reached.
    Episodes,
    /// The step limit was reached.
    Steps,
}

impl BudgetStop {
    /// Stable lowercase name, used in obs events and serve responses.
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetStop::Deadline => "deadline",
            BudgetStop::Episodes => "episodes",
            BudgetStop::Steps => "steps",
        }
    }
}

/// A cooperative compute budget (see module docs).
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    episode_limit: Option<u64>,
    step_limit: Option<u64>,
    episodes: AtomicU64,
    steps: AtomicU64,
    expired: AtomicBool,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget that never stops anything.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            episode_limit: None,
            step_limit: None,
            episodes: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            expired: AtomicBool::new(false),
        }
    }

    /// Adds a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Adds an episode limit (deterministic).
    pub fn with_episode_limit(mut self, episodes: u64) -> Self {
        self.episode_limit = Some(episodes);
        self
    }

    /// Adds a step limit (deterministic).
    pub fn with_step_limit(mut self, steps: u64) -> Self {
        self.step_limit = Some(steps);
        self
    }

    /// Episodes charged so far.
    pub fn episodes(&self) -> u64 {
        self.episodes.load(Ordering::Relaxed)
    }

    /// Steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Whether any check has ever reported a stop.
    pub fn expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }

    /// Wall-clock time left before the deadline (`None` = no deadline).
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    fn limits_hit(&self) -> Option<BudgetStop> {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(BudgetStop::Deadline);
            }
        }
        if let Some(limit) = self.episode_limit {
            if self.episodes.load(Ordering::Relaxed) >= limit {
                return Some(BudgetStop::Episodes);
            }
        }
        if let Some(limit) = self.step_limit {
            if self.steps.load(Ordering::Relaxed) >= limit {
                return Some(BudgetStop::Steps);
            }
        }
        None
    }

    fn record(&self, stop: Option<BudgetStop>) -> Option<BudgetStop> {
        if let Some(stop) = stop {
            // One-shot: only the first check to trip the budget emits,
            // so a loop that keeps (cooperatively) polling an expired
            // budget doesn't flood the sinks.
            if !self.expired.swap(true, Ordering::Relaxed) {
                tpp_obs::obs_event!(
                    tpp_obs::Level::Debug,
                    "budget.expired",
                    reason = stop.as_str(),
                    episodes = self.episodes.load(Ordering::Relaxed),
                    steps = self.steps.load(Ordering::Relaxed),
                );
                tpp_obs::metrics()
                    .counter(&format!("budget.expired.{}", stop.as_str()))
                    .inc();
            }
        }
        stop
    }

    /// Checks the budget at an episode boundary. Returns `Some(stop)` if
    /// the loop must stop **before** running the episode; otherwise
    /// charges one episode and returns `None`.
    pub fn check_episode(&self) -> Option<BudgetStop> {
        if let Some(stop) = self.record(self.limits_hit()) {
            return Some(stop);
        }
        self.episodes.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Checks the budget at a step boundary (same contract as
    /// [`check_episode`](Self::check_episode), one step charged).
    pub fn check_step(&self) -> Option<BudgetStop> {
        if let Some(stop) = self.record(self.limits_hit()) {
            return Some(stop);
        }
        self.steps.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Charges a step without the stop check — used inside loops whose
    /// stop decision happens at a coarser boundary, so the step tally
    /// still feeds the limit evaluated there.
    pub fn note_step(&self) {
        self.steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Checks the limits without charging any work: latches (and
    /// reports) expiry exactly like a check. For callers whose compute
    /// ran under a *different* budget — e.g. a batch member answered
    /// from a shared policy resolution — this is how the member's own
    /// deadline still gets consulted before it shapes the response.
    pub fn poll(&self) -> Option<BudgetStop> {
        self.record(self.limits_hit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let b = Budget::unlimited();
        for _ in 0..1000 {
            assert_eq!(b.check_episode(), None);
            assert_eq!(b.check_step(), None);
        }
        assert!(!b.expired());
        assert_eq!(b.episodes(), 1000);
        assert_eq!(b.steps(), 1000);
    }

    #[test]
    fn episode_limit_is_exact_and_deterministic() {
        let b = Budget::unlimited().with_episode_limit(3);
        assert_eq!(b.check_episode(), None);
        assert_eq!(b.check_episode(), None);
        assert_eq!(b.check_episode(), None);
        assert_eq!(b.check_episode(), Some(BudgetStop::Episodes));
        assert_eq!(b.check_episode(), Some(BudgetStop::Episodes));
        assert!(b.expired());
        assert_eq!(b.episodes(), 3);
    }

    #[test]
    fn step_limit_stops_steps() {
        let b = Budget::unlimited().with_step_limit(2);
        assert_eq!(b.check_step(), None);
        assert_eq!(b.check_step(), None);
        assert_eq!(b.check_step(), Some(BudgetStop::Steps));
    }

    #[test]
    fn noted_steps_count_toward_the_limit() {
        let b = Budget::unlimited().with_step_limit(5);
        for _ in 0..5 {
            b.note_step();
        }
        // The coarser boundary sees the tally.
        assert_eq!(b.check_episode(), Some(BudgetStop::Steps));
    }

    #[test]
    fn elapsed_deadline_stops_immediately() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(b.check_episode(), Some(BudgetStop::Deadline));
        assert!(b.expired());
        assert_eq!(b.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_does_not_stop() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(b.check_episode(), None);
        assert!(b.remaining_time().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn stop_names_are_stable() {
        assert_eq!(BudgetStop::Deadline.as_str(), "deadline");
        assert_eq!(BudgetStop::Episodes.as_str(), "episodes");
        assert_eq!(BudgetStop::Steps.as_str(), "steps");
    }

    #[test]
    fn budget_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Budget>();
    }

    #[test]
    fn expiry_counts_once_per_budget_and_names_the_reason() {
        let counter = tpp_obs::metrics().counter("budget.expired.episodes");
        let before = counter.get();
        let b = Budget::unlimited().with_episode_limit(1);
        assert_eq!(b.check_episode(), None);
        // Repeated checks keep reporting the stop but count it once.
        for _ in 0..5 {
            assert_eq!(b.check_episode(), Some(BudgetStop::Episodes));
        }
        assert_eq!(counter.get(), before + 1);

        let deadline_counter = tpp_obs::metrics().counter("budget.expired.deadline");
        let before_deadline = deadline_counter.get();
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        for _ in 0..3 {
            assert_eq!(b.check_step(), Some(BudgetStop::Deadline));
        }
        assert_eq!(deadline_counter.get(), before_deadline + 1);
    }
}
