//! Monte Carlo control (first-visit, ε-greedy), the third solution
//! family §III-C surveys before the paper settles on temporal-difference
//! SARSA ("Temporal Difference ... is a combination of Monte Carlo and
//! Dynamic Programming"). Kept as a comparison point: MC waits for the
//! episode to finish before updating, so on the same budget it
//! propagates credit more slowly than TD — measurable in tests.

use crate::env::Environment;
use crate::policy::ActionSelector;
use crate::qtable::QTable;
use crate::sarsa::SarsaConfig;
use crate::stats::TrainStats;
use rand::Rng;

/// First-visit Monte Carlo control agent with incremental-mean updates
/// scaled by α (constant-α MC).
#[derive(Debug, Clone)]
pub struct MonteCarloAgent {
    /// Learned action values.
    pub q: QTable,
    config: SarsaConfig,
}

impl MonteCarloAgent {
    /// Creates an agent with a zero Q-table sized for `env`. Reuses
    /// [`SarsaConfig`]: α, γ and the episode count mean the same things.
    pub fn new<E: Environment>(env: &E, config: SarsaConfig) -> Self {
        MonteCarloAgent {
            q: QTable::square(env.n_states()),
            config,
        }
    }

    /// Trains for `config.episodes` episodes (same calling convention as
    /// [`crate::SarsaAgent::train`]): roll the whole episode under the
    /// selector, then update every first-visit `(s, a)` toward its
    /// observed return.
    pub fn train<E, S, R, F>(
        &mut self,
        env: &mut E,
        selector: &S,
        rng: &mut R,
        mut start_of: F,
    ) -> TrainStats
    where
        E: Environment,
        S: ActionSelector,
        R: Rng + ?Sized,
        F: FnMut(usize, &mut R) -> usize,
    {
        let mut stats = TrainStats::with_capacity(self.config.episodes);
        let mut actions = Vec::with_capacity(env.n_states());
        let mut trajectory: Vec<(usize, usize, f64)> = Vec::new();
        for episode in 0..self.config.episodes {
            let alpha = self.config.alpha.at(episode);
            env.reset(start_of(episode, rng));
            trajectory.clear();
            let mut ep_return = 0.0;
            loop {
                let s = env.state();
                env.valid_actions(&mut actions);
                if actions.is_empty() {
                    break;
                }
                let a = selector.select(&self.q, s, &actions, rng);
                let out = env.step(a);
                trajectory.push((s, a, out.reward));
                ep_return += out.reward;
                if out.done {
                    break;
                }
            }
            // Backward return accumulation; first-visit filter.
            let mut g = 0.0;
            let mut returns: Vec<(usize, usize, f64)> = Vec::with_capacity(trajectory.len());
            for &(s, a, r) in trajectory.iter().rev() {
                g = r + self.config.gamma * g;
                returns.push((s, a, g));
            }
            returns.reverse();
            let mut seen = std::collections::HashSet::new();
            for (s, a, g) in returns {
                if seen.insert((s, a)) {
                    self.q.td_update(s, a, alpha, g);
                }
            }
            stats.push(ep_return);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;
    use crate::policy::EpsilonGreedy;
    use crate::schedule::Schedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(episodes: usize) -> SarsaConfig {
        SarsaConfig {
            alpha: Schedule::Constant(0.3),
            gamma: 0.9,
            episodes,
        }
    }

    #[test]
    fn mc_learns_chain_policy() {
        let mut env = ChainEnv::new(6, 5);
        let mut agent = MonteCarloAgent::new(&env, config(1500));
        let mut rng = StdRng::seed_from_u64(5);
        agent.train(&mut env, &EpsilonGreedy::new(0.2), &mut rng, |_, _| 0);
        for s in 1..5usize {
            assert!(
                agent.q.get(s, s + 1) > agent.q.get(s, s - 1),
                "state {s}: {} !> {}",
                agent.q.get(s, s + 1),
                agent.q.get(s, s - 1)
            );
        }
    }

    #[test]
    fn mc_returns_improve() {
        let mut env = ChainEnv::new(6, 5);
        let mut agent = MonteCarloAgent::new(&env, config(800));
        let mut rng = StdRng::seed_from_u64(9);
        let stats = agent.train(&mut env, &EpsilonGreedy::new(0.15), &mut rng, |_, _| 0);
        assert!(stats.mean_return_over(700..800) >= stats.mean_return_over(0..100));
    }

    #[test]
    fn mc_first_visit_updates_each_pair_once_per_episode() {
        // On a 2-state chain the episode is one step; Q(0,1) after one
        // episode with α = 1 equals the return exactly.
        let mut env = ChainEnv::new(2, 5);
        let mut agent = MonteCarloAgent::new(
            &env,
            SarsaConfig {
                alpha: Schedule::Constant(1.0),
                gamma: 0.9,
                episodes: 1,
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        agent.train(&mut env, &EpsilonGreedy::new(0.0), &mut rng, |_, _| 0);
        assert_eq!(agent.q.get(0, 1), 1.0);
    }

    #[test]
    fn td_beats_mc_on_equal_small_budget() {
        // §III-C's implicit claim: TD propagates credit faster. On a
        // short budget SARSA's greedy policy is at least as good as
        // MC's, measured by greedy return from state 0.
        use crate::rollout::greedy_rollout;
        use crate::sarsa::SarsaAgent;
        let budget = 120;
        let mut env = ChainEnv::new(8, 7);
        let mut sarsa = SarsaAgent::new(&env, config(budget));
        let mut rng = StdRng::seed_from_u64(3);
        sarsa.train(&mut env, &EpsilonGreedy::new(0.2), &mut rng, |_, _| 0);
        let mut env2 = ChainEnv::new(8, 7);
        let mut mc = MonteCarloAgent::new(&env2, config(budget));
        let mut rng2 = StdRng::seed_from_u64(3);
        mc.train(&mut env2, &EpsilonGreedy::new(0.2), &mut rng2, |_, _| 0);

        let (_, sarsa_ret) = greedy_rollout(&mut ChainEnv::new(8, 7), &sarsa.q, 0);
        let (_, mc_ret) = greedy_rollout(&mut ChainEnv::new(8, 7), &mc.q, 0);
        assert!(
            sarsa_ret >= mc_ret,
            "SARSA return {sarsa_ret} < MC return {mc_ret}"
        );
    }
}
