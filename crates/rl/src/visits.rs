//! State-action visit counters, dense or per-state sparse.
//!
//! Training uses visit counts to break exact `(reward, Q)` ties toward
//! the least-visited pair. At seed sizes a flat `n × n` `u32` array is
//! ideal; at city scale it would be as large as the dense Q-table it
//! rode along with (400 MB at 10k items), so the counter store mirrors
//! [`QTable`](crate::QTable)'s dense/sparse split.

use serde::{Deserialize, Serialize};

/// Storage behind a [`VisitTable`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum VisitRepr {
    /// Flat row-major counts.
    Dense(Vec<u32>),
    /// Per-state visited rows, `(action, count)` sorted by action.
    Sparse(Vec<Vec<(u32, u32)>>),
}

/// An `n_states × n_actions` visit-count table.
///
/// Like `QTable`, the derived `PartialEq` is representational: dense
/// and sparse tables with the same counts compare unequal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisitTable {
    n_states: usize,
    n_actions: usize,
    repr: VisitRepr,
}

impl VisitTable {
    /// A zeroed dense table.
    ///
    /// # Panics
    /// Panics when `n_states * n_actions` overflows `usize`.
    pub fn dense(n_states: usize, n_actions: usize) -> Self {
        let elems = n_states
            .checked_mul(n_actions)
            .expect("visit table shape overflows");
        VisitTable {
            n_states,
            n_actions,
            repr: VisitRepr::Dense(vec![0; elems]),
        }
    }

    /// A zeroed sparse table (counts materialize on first bump).
    pub fn sparse(n_states: usize, n_actions: usize) -> Self {
        VisitTable {
            n_states,
            n_actions,
            repr: VisitRepr::Sparse(vec![Vec::new(); n_states]),
        }
    }

    /// A zeroed `n × n` table matching
    /// [`QTable::for_catalog`](crate::QTable::for_catalog)'s
    /// representation choice for the same catalog size.
    pub fn for_catalog(n: usize) -> Self {
        if crate::QTable::auto_is_dense(n) {
            Self::dense(n, n)
        } else {
            Self::sparse(n, n)
        }
    }

    /// The `0 × 0` table: the "learner keeps no visit counts" marker
    /// used by checkpoints.
    pub fn empty() -> Self {
        Self::dense(0, 0)
    }

    /// Rebuilds a dense table from raw parts.
    ///
    /// # Panics
    /// Panics when `counts.len() != n_states * n_actions`.
    pub fn from_raw_dense(n_states: usize, n_actions: usize, counts: Vec<u32>) -> Self {
        assert_eq!(
            counts.len(),
            n_states.checked_mul(n_actions).expect("shape mismatch"),
            "shape mismatch"
        );
        VisitTable {
            n_states,
            n_actions,
            repr: VisitRepr::Dense(counts),
        }
    }

    /// Rebuilds a sparse table from `(state, action, count)` entries in
    /// any order; out-of-range entries are an error.
    pub fn from_sparse_entries(
        n_states: usize,
        n_actions: usize,
        entries: impl IntoIterator<Item = (usize, usize, u32)>,
    ) -> Result<Self, String> {
        let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_states];
        for (s, a, c) in entries {
            if s >= n_states || a >= n_actions {
                return Err(format!(
                    "visit entry ({s}, {a}) out of range {n_states}x{n_actions}"
                ));
            }
            let row = &mut rows[s];
            match row.binary_search_by_key(&(a as u32), |&(k, _)| k) {
                Ok(i) => row[i].1 = c,
                Err(i) => row.insert(i, (a as u32, c)),
            }
        }
        Ok(VisitTable {
            n_states,
            n_actions,
            repr: VisitRepr::Sparse(rows),
        })
    }

    /// Number of state rows.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of action columns.
    #[inline]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// `true` for the `0 × 0` "no counts kept" marker.
    pub fn is_empty(&self) -> bool {
        self.n_states == 0 && self.n_actions == 0
    }

    /// `true` when the table stores per-state sparse rows.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, VisitRepr::Sparse(_))
    }

    /// The visit count of `(s, a)`.
    #[inline]
    pub fn get(&self, s: usize, a: usize) -> u32 {
        debug_assert!(s < self.n_states && a < self.n_actions);
        match &self.repr {
            VisitRepr::Dense(v) => v[s * self.n_actions + a],
            VisitRepr::Sparse(rows) => {
                let row = &rows[s];
                match row.binary_search_by_key(&(a as u32), |&(k, _)| k) {
                    Ok(i) => row[i].1,
                    Err(_) => 0,
                }
            }
        }
    }

    /// Increments the visit count of `(s, a)`.
    #[inline]
    pub fn bump(&mut self, s: usize, a: usize) {
        debug_assert!(s < self.n_states && a < self.n_actions);
        match &mut self.repr {
            VisitRepr::Dense(v) => v[s * self.n_actions + a] += 1,
            VisitRepr::Sparse(rows) => {
                let row = &mut rows[s];
                match row.binary_search_by_key(&(a as u32), |&(k, _)| k) {
                    Ok(i) => row[i].1 += 1,
                    Err(i) => row.insert(i, (a as u32, 1)),
                }
            }
        }
    }

    /// Flat row-major counts when dense, `None` when sparse (the QPOL
    /// v1/v2 wire shape).
    pub fn dense_counts(&self) -> Option<&[u32]> {
        match &self.repr {
            VisitRepr::Dense(v) => Some(v),
            VisitRepr::Sparse(_) => None,
        }
    }

    /// Materialized entries in ascending `(state, action)` order — the
    /// deterministic sparse encode order. Dense tables yield every cell.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        let dense = match &self.repr {
            VisitRepr::Dense(v) => Some(
                v.iter()
                    .enumerate()
                    .map(|(i, &c)| (i / self.n_actions.max(1), i % self.n_actions.max(1), c)),
            ),
            VisitRepr::Sparse(_) => None,
        };
        let sparse = match &self.repr {
            VisitRepr::Sparse(rows) => Some(
                rows.iter()
                    .enumerate()
                    .flat_map(|(st, row)| row.iter().map(move |&(a, c)| (st, a as usize, c))),
            ),
            VisitRepr::Dense(_) => None,
        };
        dense
            .into_iter()
            .flatten()
            .chain(sparse.into_iter().flatten())
    }

    /// Number of materialized entries (sparse wire length).
    pub fn entry_count(&self) -> usize {
        match &self.repr {
            VisitRepr::Dense(v) => v.len(),
            VisitRepr::Sparse(rows) => rows.iter().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_bump_and_get() {
        let mut v = VisitTable::dense(3, 3);
        assert_eq!(v.get(1, 2), 0);
        v.bump(1, 2);
        v.bump(1, 2);
        assert_eq!(v.get(1, 2), 2);
        assert_eq!(v.dense_counts().unwrap()[3 + 2], 2);
    }

    #[test]
    fn sparse_bump_and_get() {
        let mut v = VisitTable::sparse(100_000, 100_000);
        assert!(v.is_sparse());
        assert_eq!(v.get(99_999, 50), 0);
        v.bump(99_999, 50);
        v.bump(99_999, 50);
        v.bump(99_999, 7);
        assert_eq!(v.get(99_999, 50), 2);
        assert_eq!(v.get(99_999, 7), 1);
        assert_eq!(v.entry_count(), 2);
        assert!(v.dense_counts().is_none());
    }

    #[test]
    fn for_catalog_matches_qtable_auto_rule() {
        assert!(!VisitTable::for_catalog(6).is_sparse());
        assert!(VisitTable::for_catalog(2000).is_sparse());
    }

    #[test]
    fn empty_marker() {
        let v = VisitTable::empty();
        assert!(v.is_empty());
        assert_eq!(v.entry_count(), 0);
        assert!(!VisitTable::dense(1, 1).is_empty());
    }

    #[test]
    fn sparse_entries_roundtrip_sorted() {
        let mut v = VisitTable::sparse(4, 4);
        v.bump(2, 3);
        v.bump(2, 0);
        v.bump(0, 1);
        let entries: Vec<_> = v.iter_set().collect();
        assert_eq!(entries, vec![(0, 1, 1), (2, 0, 1), (2, 3, 1)]);
        let back = VisitTable::from_sparse_entries(4, 4, entries).unwrap();
        assert_eq!(back, v);
        assert!(VisitTable::from_sparse_entries(2, 2, [(9, 0, 1)]).is_err());
    }
}
