//! The environment abstraction the learners run against.

/// Result of taking one action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// State reached by the action.
    pub next_state: usize,
    /// Immediate reward.
    pub reward: f64,
    /// `true` when the episode ended with this step.
    pub done: bool,
}

/// A deterministic, discrete, episodic environment.
///
/// The TPP CMDP (§III-A) fits this shape exactly: states are items of the
/// complete item graph `G`, an action is "add item `a` next" and is
/// identified by the *target state index*, transitions are deterministic
/// (`T : S × E → S`), and an episode ends when the trajectory/budget
/// bound `H` is reached.
pub trait Environment {
    /// Number of states `|S|` (also the number of action columns — in
    /// TPP the action space is "go to state `a`", so actions and states
    /// share indices and the Q-table is `|I| × |I|`).
    fn n_states(&self) -> usize;

    /// Starts a new episode at `start`. Implementations reset all episode
    /// bookkeeping (visited set, coverage, budgets).
    fn reset(&mut self, start: usize);

    /// Current state.
    fn state(&self) -> usize;

    /// Actions legal in the current state, as target-state indices.
    /// An empty slice means the episode cannot continue.
    fn valid_actions(&self, buf: &mut Vec<usize>);

    /// Applies an action. Callers must only pass actions previously
    /// reported valid; implementations may panic otherwise.
    fn step(&mut self, action: usize) -> StepOutcome;

    /// Immediate reward the current state would yield for `action`,
    /// without transitioning. Default implementation is unsupported;
    /// environments that can answer cheaply (TPP can — Eq. 2 is a pure
    /// function of episode state) override it. Needed by the
    /// reward-greedy action selection of the paper's Algorithm 1 and the
    /// EDA baseline.
    fn peek_reward(&self, action: usize) -> f64 {
        let _ = action;
        unimplemented!("this environment does not support peek_reward")
    }
}

/// A tiny deterministic chain environment for substrate tests: states
/// `0..n`, from state `s` the legal actions are `s+1` (reward `1.0`) and,
/// when `s ≥ 1`, `s-1` (reward `-1.0`); an episode ends after `horizon`
/// steps or at state `n-1`. The left penalty makes rightward progress
/// the unique optimal policy (with a 0 reward, oscillation would farm
/// the rightward reward repeatedly and be optimal).
#[derive(Debug, Clone)]
pub struct ChainEnv {
    n: usize,
    horizon: usize,
    state: usize,
    steps: usize,
}

impl ChainEnv {
    /// Creates a chain of `n ≥ 2` states with the given horizon.
    pub fn new(n: usize, horizon: usize) -> Self {
        assert!(n >= 2);
        ChainEnv {
            n,
            horizon,
            state: 0,
            steps: 0,
        }
    }
}

impl Environment for ChainEnv {
    fn n_states(&self) -> usize {
        self.n
    }

    fn reset(&mut self, start: usize) {
        self.state = start.min(self.n - 1);
        self.steps = 0;
    }

    fn state(&self) -> usize {
        self.state
    }

    fn valid_actions(&self, buf: &mut Vec<usize>) {
        buf.clear();
        if self.state + 1 < self.n {
            buf.push(self.state + 1);
        }
        if self.state >= 1 {
            buf.push(self.state - 1);
        }
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        let reward = if action == self.state + 1 { 1.0 } else { -1.0 };
        self.state = action;
        self.steps += 1;
        StepOutcome {
            next_state: self.state,
            reward,
            done: self.steps >= self.horizon || self.state == self.n - 1,
        }
    }

    fn peek_reward(&self, action: usize) -> f64 {
        if action == self.state + 1 {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_env_basics() {
        let mut e = ChainEnv::new(5, 10);
        e.reset(0);
        assert_eq!(e.state(), 0);
        let mut acts = Vec::new();
        e.valid_actions(&mut acts);
        assert_eq!(acts, vec![1]); // cannot go below 0
        let out = e.step(1);
        assert_eq!(
            out,
            StepOutcome {
                next_state: 1,
                reward: 1.0,
                done: false
            }
        );
        e.valid_actions(&mut acts);
        assert_eq!(acts, vec![2, 0]);
        assert_eq!(e.peek_reward(2), 1.0);
        assert_eq!(e.peek_reward(0), -1.0);
    }

    #[test]
    fn chain_env_terminates_at_end_or_horizon() {
        let mut e = ChainEnv::new(3, 10);
        e.reset(0);
        e.step(1);
        let out = e.step(2);
        assert!(out.done); // reached last state
        let mut e2 = ChainEnv::new(10, 2);
        e2.reset(0);
        e2.step(1);
        assert!(e2.step(2).done); // horizon
    }
}
