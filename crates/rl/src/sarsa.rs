//! SARSA: the on-policy TD(0) learner the paper adopts (§III-C).
//!
//! The paper motivates SARSA over value iteration / off-policy learning
//! ("known to converge faster and with fewer errors") and updates Q with
//! Eq. 9:
//!
//! ```text
//! Q(s_i, e_i) ← Q(s_i, e_i) + α [ r_{i+1} + γ Q(s_{i+1}, e_{i+1}) − Q(s_i, e_i) ]
//! ```

use crate::checkpoint::TrainCheckpoint;
use crate::env::Environment;
use crate::policy::ActionSelector;
use crate::qtable::QTable;
use crate::rng::TrainRng;
use crate::schedule::Schedule;
use crate::stats::TrainStats;
use rand::Rng;
use tpp_obs::{obs_event, Level};

/// SARSA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SarsaConfig {
    /// Learning rate α (Table III default 0.75 for courses).
    pub alpha: Schedule,
    /// Discount factor γ (Table III default 0.95 for courses).
    pub gamma: f64,
    /// Number of training episodes `N`.
    pub episodes: usize,
}

impl SarsaConfig {
    /// The paper's course-planning defaults: α = 0.75, γ = 0.95, N = 500.
    pub fn paper_course_defaults() -> Self {
        SarsaConfig {
            alpha: Schedule::Constant(0.75),
            gamma: 0.95,
            episodes: 500,
        }
    }

    /// The paper's trip-planning defaults: α = 0.95, γ = 0.75, N = 500.
    pub fn paper_trip_defaults() -> Self {
        SarsaConfig {
            alpha: Schedule::Constant(0.95),
            gamma: 0.75,
            episodes: 500,
        }
    }
}

/// The SARSA agent: owns the Q-table and its configuration.
#[derive(Debug, Clone)]
pub struct SarsaAgent {
    /// Learned action values.
    pub q: QTable,
    config: SarsaConfig,
}

impl SarsaAgent {
    /// Creates an agent with a zero Q-table sized for `env`.
    pub fn new<E: Environment>(env: &E, config: SarsaConfig) -> Self {
        SarsaAgent {
            q: QTable::square(env.n_states()),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SarsaConfig {
        &self.config
    }

    /// Trains for `config.episodes` episodes. Each episode starts at
    /// `start_of(episode)`, selects actions with `selector`, and applies
    /// Eq. 9 at every step (with a zero bootstrap on the terminal step).
    /// Returns per-episode return statistics.
    pub fn train<E, S, R, F>(
        &mut self,
        env: &mut E,
        selector: &S,
        rng: &mut R,
        mut start_of: F,
    ) -> TrainStats
    where
        E: Environment,
        S: ActionSelector,
        R: Rng + ?Sized,
        F: FnMut(usize, &mut R) -> usize,
    {
        let mut span = tpp_obs::span(Level::Info, "sarsa.train")
            .with("episodes", self.config.episodes)
            .with("gamma", self.config.gamma);
        let mut stats = TrainStats::with_capacity(self.config.episodes);
        let mut actions = Vec::with_capacity(env.n_states());
        for episode in 0..self.config.episodes {
            let alpha = self.config.alpha.at(episode);
            let start = start_of(episode, rng);
            env.reset(start);
            let mut ep_return = 0.0;
            let mut s = env.state();
            env.valid_actions(&mut actions);
            if actions.is_empty() {
                stats.push(0.0);
                continue;
            }
            let mut a = selector.select(&self.q, s, &actions, rng);
            loop {
                let out = env.step(a);
                ep_return += out.reward;
                if out.done {
                    // Terminal: bootstrap value is 0.
                    self.q.td_update(s, a, alpha, out.reward);
                    break;
                }
                let s_next = out.next_state;
                env.valid_actions(&mut actions);
                if actions.is_empty() {
                    self.q.td_update(s, a, alpha, out.reward);
                    break;
                }
                let a_next = selector.select(&self.q, s_next, &actions, rng);
                let target = out.reward + self.config.gamma * self.q.get(s_next, a_next);
                self.q.td_update(s, a, alpha, target);
                s = s_next;
                a = a_next;
            }
            stats.push(ep_return);
            obs_event!(
                Level::Debug,
                "sarsa.episode",
                episode = episode,
                alpha = alpha,
                ep_return = ep_return,
            );
        }
        span.record("mean_return", stats.mean_return());
        stats
    }

    /// Reconstructs an agent mid-run from a checkpoint: the Q-table is
    /// restored as-is and the training RNG resumes its stream at the
    /// captured state words. Pass the same checkpoint to
    /// [`train_resumable`](Self::train_resumable) to also restore the
    /// episode counter and accumulated returns.
    pub fn resume_from(config: SarsaConfig, ckpt: &TrainCheckpoint) -> (Self, TrainRng) {
        (
            SarsaAgent {
                q: ckpt.q.clone(),
                config,
            },
            TrainRng::from_state(ckpt.rng_state),
        )
    }

    /// Like [`train`](Self::train), but checkpointable and resumable.
    ///
    /// Exploration is ε-greedy with `epsilon` evaluated per episode at
    /// the schedule position (so a decaying schedule resumes at the
    /// right point). Every `every` completed episodes (`0` disables) a
    /// [`TrainCheckpoint`] is handed to `on_checkpoint`; an `Err` from
    /// the sink aborts training and is returned verbatim — the caller's
    /// persistence failure is this loop's crash signal.
    ///
    /// With `resume: Some(ckpt)`, the Q-table, RNG, episode counter and
    /// return history are all restored from the snapshot before the
    /// loop continues, which makes a seed-matched interrupted+resumed
    /// run bit-identical to an uninterrupted one.
    // The argument list IS the resume contract — every piece of state a
    // restart needs travels explicitly, nothing hides in `self`.
    #[allow(clippy::too_many_arguments)]
    pub fn train_resumable<E, F, C>(
        &mut self,
        env: &mut E,
        epsilon: Schedule,
        rng: &mut TrainRng,
        mut start_of: F,
        resume: Option<&TrainCheckpoint>,
        every: usize,
        mut on_checkpoint: C,
    ) -> Result<TrainStats, String>
    where
        E: Environment,
        F: FnMut(usize, &mut TrainRng) -> usize,
        C: FnMut(&TrainCheckpoint) -> Result<(), String>,
    {
        let mut stats = TrainStats::with_capacity(self.config.episodes);
        let mut first_episode = 0usize;
        if let Some(ckpt) = resume {
            self.q = ckpt.q.clone();
            *rng = TrainRng::from_state(ckpt.rng_state);
            for &r in &ckpt.returns {
                stats.push(r);
            }
            first_episode = usize::try_from(ckpt.episode).map_err(|_| "episode overflow")?;
        }
        let mut span = tpp_obs::span(Level::Info, "sarsa.train")
            .with("episodes", self.config.episodes)
            .with("first_episode", first_episode)
            .with("gamma", self.config.gamma);
        let mut actions = Vec::with_capacity(env.n_states());
        for episode in first_episode..self.config.episodes {
            let alpha = self.config.alpha.at(episode);
            let eps = epsilon.at(episode);
            let start = start_of(episode, rng);
            env.reset(start);
            let mut ep_return = 0.0;
            let mut s = env.state();
            env.valid_actions(&mut actions);
            if actions.is_empty() {
                stats.push(0.0);
                self.maybe_checkpoint(episode, every, rng, &stats, &mut on_checkpoint)?;
                continue;
            }
            let mut a = Self::select_eps_greedy(&self.q, s, &actions, eps, rng);
            loop {
                let out = env.step(a);
                ep_return += out.reward;
                if out.done {
                    self.q.td_update(s, a, alpha, out.reward);
                    break;
                }
                let s_next = out.next_state;
                env.valid_actions(&mut actions);
                if actions.is_empty() {
                    self.q.td_update(s, a, alpha, out.reward);
                    break;
                }
                let a_next = Self::select_eps_greedy(&self.q, s_next, &actions, eps, rng);
                let target = out.reward + self.config.gamma * self.q.get(s_next, a_next);
                self.q.td_update(s, a, alpha, target);
                s = s_next;
                a = a_next;
            }
            stats.push(ep_return);
            obs_event!(
                Level::Debug,
                "sarsa.episode",
                episode = episode,
                alpha = alpha,
                ep_return = ep_return,
            );
            self.maybe_checkpoint(episode, every, rng, &stats, &mut on_checkpoint)?;
        }
        span.record("mean_return", stats.mean_return());
        Ok(stats)
    }

    /// ε-greedy over [`TrainRng`] (same semantics as
    /// [`EpsilonGreedy`](crate::policy::EpsilonGreedy), but on the
    /// checkpointable RNG).
    fn select_eps_greedy(
        q: &QTable,
        s: usize,
        allowed: &[usize],
        epsilon: f64,
        rng: &mut TrainRng,
    ) -> usize {
        if rng.next_f64() < epsilon {
            allowed[rng.index(allowed.len())]
        } else {
            q.best_action(s, allowed).expect("allowed is non-empty")
        }
    }

    fn maybe_checkpoint(
        &self,
        episode: usize,
        every: usize,
        rng: &TrainRng,
        stats: &TrainStats,
        on_checkpoint: &mut dyn FnMut(&TrainCheckpoint) -> Result<(), String>,
    ) -> Result<(), String> {
        if every == 0 || (episode + 1) % every != 0 {
            return Ok(());
        }
        let done = episode as u64 + 1;
        on_checkpoint(&TrainCheckpoint {
            q: self.q.clone(),
            episode: done,
            sched_pos: done,
            rng_state: rng.state(),
            visits: crate::VisitTable::empty(),
            returns: stats.returns().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;
    use crate::policy::EpsilonGreedy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_agent(episodes: usize, seed: u64) -> (SarsaAgent, TrainStats) {
        let mut env = ChainEnv::new(6, 5);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes,
        };
        let mut agent = SarsaAgent::new(&env, config);
        let sel = EpsilonGreedy::new(0.2);
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = agent.train(&mut env, &sel, &mut rng, |_, _| 0);
        (agent, stats)
    }

    #[test]
    fn learns_to_walk_right_on_chain() {
        let (agent, _) = trained_agent(500, 3);
        // From every interior state, going right must dominate going left.
        for s in 1..5usize {
            assert!(
                agent.q.get(s, s + 1) > agent.q.get(s, s - 1),
                "state {s}: right {} !> left {}",
                agent.q.get(s, s + 1),
                agent.q.get(s, s - 1)
            );
        }
    }

    #[test]
    fn returns_improve_with_training() {
        // Exploration stays at ε = 0.2, so per-episode returns remain
        // noisy after convergence; wide windows keep the comparison a
        // statement about learning rather than residual noise.
        let (_, stats) = trained_agent(800, 11);
        let early = stats.mean_return_over(0..100);
        let late = stats.mean_return_over(400..800);
        assert!(
            late >= early,
            "late mean {late} should be at least early mean {early}"
        );
    }

    #[test]
    fn q_values_bounded_by_geometric_series() {
        // Rewards are ≤ 1 per step, so Q ≤ 1/(1-γ) = 10 for γ = 0.9.
        let (agent, _) = trained_agent(1000, 5);
        assert!(agent.q.max_abs() <= 10.0 + 1e-9);
    }

    #[test]
    fn zero_episodes_is_noop() {
        let env = ChainEnv::new(4, 3);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 0,
        };
        let mut agent = SarsaAgent::new(&env, config);
        let mut env = ChainEnv::new(4, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let stats = agent.train(&mut env, &EpsilonGreedy::new(0.1), &mut rng, |_, _| 0);
        assert_eq!(stats.episodes(), 0);
        assert_eq!(agent.q.max_abs(), 0.0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let (a1, _) = trained_agent(100, 99);
        let (a2, _) = trained_agent(100, 99);
        assert_eq!(a1.q, a2.q);
    }

    fn resumable_run(
        episodes: usize,
        seed: u64,
        every: usize,
        capture_at: Option<u64>,
    ) -> (SarsaAgent, Option<TrainCheckpoint>) {
        let mut env = ChainEnv::new(6, 5);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes,
        };
        let mut agent = SarsaAgent::new(&env, config);
        let mut rng = TrainRng::seed_from_u64(seed);
        let mut captured = None;
        agent
            .train_resumable(
                &mut env,
                Schedule::Constant(0.2),
                &mut rng,
                |_, _| 0,
                None,
                every,
                |ckpt| {
                    if Some(ckpt.episode) == capture_at {
                        captured = Some(ckpt.clone());
                    }
                    Ok(())
                },
            )
            .unwrap();
        (agent, captured)
    }

    #[test]
    fn resumable_training_is_deterministic() {
        let (a1, _) = resumable_run(200, 17, 0, None);
        let (a2, _) = resumable_run(200, 17, 50, None);
        assert_eq!(a1.q, a2.q, "checkpointing must not perturb training");
    }

    #[test]
    fn interrupted_plus_resumed_matches_uninterrupted_bit_for_bit() {
        // Full run, capturing the mid-run snapshot as it goes by.
        let (full, ckpt) = resumable_run(200, 23, 25, Some(100));
        let ckpt = ckpt.expect("checkpoint at episode 100");
        assert_eq!(ckpt.returns.len(), 100);

        // Fresh agent restored from the snapshot, trained to the end.
        let mut env = ChainEnv::new(6, 5);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 200,
        };
        let (mut resumed, mut rng) = SarsaAgent::resume_from(config, &ckpt);
        let stats = resumed
            .train_resumable(
                &mut env,
                Schedule::Constant(0.2),
                &mut rng,
                |_, _| 0,
                Some(&ckpt),
                25,
                |_| Ok(()),
            )
            .unwrap();
        assert_eq!(stats.episodes(), 200);
        assert_eq!(
            full.q.values(),
            resumed.q.values(),
            "resumed Q-table must be bit-identical"
        );
    }

    #[test]
    fn checkpoint_sink_error_aborts_training() {
        let mut env = ChainEnv::new(4, 3);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 100,
        };
        let mut agent = SarsaAgent::new(&env, config);
        let mut rng = TrainRng::seed_from_u64(0);
        let err = agent
            .train_resumable(
                &mut env,
                Schedule::Constant(0.1),
                &mut rng,
                |_, _| 0,
                None,
                10,
                |_| Err("disk full".to_owned()),
            )
            .unwrap_err();
        assert_eq!(err, "disk full");
    }

    #[test]
    fn paper_defaults() {
        let c = SarsaConfig::paper_course_defaults();
        assert_eq!(c.alpha.at(0), 0.75);
        assert_eq!(c.gamma, 0.95);
        assert_eq!(c.episodes, 500);
        let t = SarsaConfig::paper_trip_defaults();
        assert_eq!(t.alpha.at(0), 0.95);
        assert_eq!(t.gamma, 0.75);
    }
}
