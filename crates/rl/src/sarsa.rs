//! SARSA: the on-policy TD(0) learner the paper adopts (§III-C).
//!
//! The paper motivates SARSA over value iteration / off-policy learning
//! ("known to converge faster and with fewer errors") and updates Q with
//! Eq. 9:
//!
//! ```text
//! Q(s_i, e_i) ← Q(s_i, e_i) + α [ r_{i+1} + γ Q(s_{i+1}, e_{i+1}) − Q(s_i, e_i) ]
//! ```

use crate::env::Environment;
use crate::policy::ActionSelector;
use crate::qtable::QTable;
use crate::schedule::Schedule;
use crate::stats::TrainStats;
use rand::Rng;
use tpp_obs::{obs_event, Level};

/// SARSA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SarsaConfig {
    /// Learning rate α (Table III default 0.75 for courses).
    pub alpha: Schedule,
    /// Discount factor γ (Table III default 0.95 for courses).
    pub gamma: f64,
    /// Number of training episodes `N`.
    pub episodes: usize,
}

impl SarsaConfig {
    /// The paper's course-planning defaults: α = 0.75, γ = 0.95, N = 500.
    pub fn paper_course_defaults() -> Self {
        SarsaConfig {
            alpha: Schedule::Constant(0.75),
            gamma: 0.95,
            episodes: 500,
        }
    }

    /// The paper's trip-planning defaults: α = 0.95, γ = 0.75, N = 500.
    pub fn paper_trip_defaults() -> Self {
        SarsaConfig {
            alpha: Schedule::Constant(0.95),
            gamma: 0.75,
            episodes: 500,
        }
    }
}

/// The SARSA agent: owns the Q-table and its configuration.
#[derive(Debug, Clone)]
pub struct SarsaAgent {
    /// Learned action values.
    pub q: QTable,
    config: SarsaConfig,
}

impl SarsaAgent {
    /// Creates an agent with a zero Q-table sized for `env`.
    pub fn new<E: Environment>(env: &E, config: SarsaConfig) -> Self {
        SarsaAgent {
            q: QTable::square(env.n_states()),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SarsaConfig {
        &self.config
    }

    /// Trains for `config.episodes` episodes. Each episode starts at
    /// `start_of(episode)`, selects actions with `selector`, and applies
    /// Eq. 9 at every step (with a zero bootstrap on the terminal step).
    /// Returns per-episode return statistics.
    pub fn train<E, S, R, F>(
        &mut self,
        env: &mut E,
        selector: &S,
        rng: &mut R,
        mut start_of: F,
    ) -> TrainStats
    where
        E: Environment,
        S: ActionSelector,
        R: Rng + ?Sized,
        F: FnMut(usize, &mut R) -> usize,
    {
        let mut span = tpp_obs::span(Level::Info, "sarsa.train")
            .with("episodes", self.config.episodes)
            .with("gamma", self.config.gamma);
        let mut stats = TrainStats::with_capacity(self.config.episodes);
        let mut actions = Vec::with_capacity(env.n_states());
        for episode in 0..self.config.episodes {
            let alpha = self.config.alpha.at(episode);
            let start = start_of(episode, rng);
            env.reset(start);
            let mut ep_return = 0.0;
            let mut s = env.state();
            env.valid_actions(&mut actions);
            if actions.is_empty() {
                stats.push(0.0);
                continue;
            }
            let mut a = selector.select(&self.q, s, &actions, rng);
            loop {
                let out = env.step(a);
                ep_return += out.reward;
                if out.done {
                    // Terminal: bootstrap value is 0.
                    self.q.td_update(s, a, alpha, out.reward);
                    break;
                }
                let s_next = out.next_state;
                env.valid_actions(&mut actions);
                if actions.is_empty() {
                    self.q.td_update(s, a, alpha, out.reward);
                    break;
                }
                let a_next = selector.select(&self.q, s_next, &actions, rng);
                let target = out.reward + self.config.gamma * self.q.get(s_next, a_next);
                self.q.td_update(s, a, alpha, target);
                s = s_next;
                a = a_next;
            }
            stats.push(ep_return);
            obs_event!(
                Level::Debug,
                "sarsa.episode",
                episode = episode,
                alpha = alpha,
                ep_return = ep_return,
            );
        }
        span.record("mean_return", stats.mean_return());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;
    use crate::policy::EpsilonGreedy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_agent(episodes: usize, seed: u64) -> (SarsaAgent, TrainStats) {
        let mut env = ChainEnv::new(6, 5);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes,
        };
        let mut agent = SarsaAgent::new(&env, config);
        let sel = EpsilonGreedy::new(0.2);
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = agent.train(&mut env, &sel, &mut rng, |_, _| 0);
        (agent, stats)
    }

    #[test]
    fn learns_to_walk_right_on_chain() {
        let (agent, _) = trained_agent(500, 3);
        // From every interior state, going right must dominate going left.
        for s in 1..5usize {
            assert!(
                agent.q.get(s, s + 1) > agent.q.get(s, s - 1),
                "state {s}: right {} !> left {}",
                agent.q.get(s, s + 1),
                agent.q.get(s, s - 1)
            );
        }
    }

    #[test]
    fn returns_improve_with_training() {
        let (_, stats) = trained_agent(400, 11);
        let early = stats.mean_return_over(0..50);
        let late = stats.mean_return_over(350..400);
        assert!(
            late >= early,
            "late mean {late} should be at least early mean {early}"
        );
    }

    #[test]
    fn q_values_bounded_by_geometric_series() {
        // Rewards are ≤ 1 per step, so Q ≤ 1/(1-γ) = 10 for γ = 0.9.
        let (agent, _) = trained_agent(1000, 5);
        assert!(agent.q.max_abs() <= 10.0 + 1e-9);
    }

    #[test]
    fn zero_episodes_is_noop() {
        let env = ChainEnv::new(4, 3);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 0,
        };
        let mut agent = SarsaAgent::new(&env, config);
        let mut env = ChainEnv::new(4, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let stats = agent.train(&mut env, &EpsilonGreedy::new(0.1), &mut rng, |_, _| 0);
        assert_eq!(stats.episodes(), 0);
        assert_eq!(agent.q.max_abs(), 0.0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let (a1, _) = trained_agent(100, 99);
        let (a2, _) = trained_agent(100, 99);
        assert_eq!(a1.q, a2.q);
    }

    #[test]
    fn paper_defaults() {
        let c = SarsaConfig::paper_course_defaults();
        assert_eq!(c.alpha.at(0), 0.75);
        assert_eq!(c.gamma, 0.95);
        assert_eq!(c.episodes, 500);
        let t = SarsaConfig::paper_trip_defaults();
        assert_eq!(t.alpha.at(0), 0.95);
        assert_eq!(t.gamma, 0.75);
    }
}
