//! Dense Q-tables.

use serde::{Deserialize, Serialize};

/// A dense `n_states × n_actions` action-value table.
///
/// For TPP both axes are items, so the table is `|I| × |I|` exactly as
/// §III-C describes. Stored row-major in one contiguous allocation for
/// cache-friendly row scans (the recommender's `argmax_j Q(s, j)` is a
/// single row sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    n_states: usize,
    n_actions: usize,
    values: Vec<f64>,
}

impl QTable {
    /// A zero-initialized table.
    pub fn zeros(n_states: usize, n_actions: usize) -> Self {
        QTable {
            n_states,
            n_actions,
            values: vec![0.0; n_states * n_actions],
        }
    }

    /// A square `n × n` zero table (the TPP shape).
    pub fn square(n: usize) -> Self {
        Self::zeros(n, n)
    }

    /// Number of state rows.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of action columns.
    #[inline]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// `Q(s, a)`.
    #[inline]
    pub fn get(&self, s: usize, a: usize) -> f64 {
        debug_assert!(s < self.n_states && a < self.n_actions);
        self.values[s * self.n_actions + a]
    }

    /// Sets `Q(s, a)`.
    #[inline]
    pub fn set(&mut self, s: usize, a: usize, v: f64) {
        debug_assert!(s < self.n_states && a < self.n_actions);
        self.values[s * self.n_actions + a] = v;
    }

    /// The SARSA/Q-learning temporal-difference update (Eq. 9):
    /// `Q(s,a) ← Q(s,a) + α [target − Q(s,a)]`.
    #[inline]
    pub fn td_update(&mut self, s: usize, a: usize, alpha: f64, target: f64) {
        let q = self.get(s, a);
        self.set(s, a, q + alpha * (target - q));
    }

    /// Row `s` as a slice.
    #[inline]
    pub fn row(&self, s: usize) -> &[f64] {
        &self.values[s * self.n_actions..(s + 1) * self.n_actions]
    }

    /// `argmax` of `Q(s, ·)` restricted to `allowed` (first maximum
    /// wins). `None` when `allowed` is empty.
    pub fn best_action(&self, s: usize, allowed: &[usize]) -> Option<usize> {
        let row = self.row(s);
        allowed.iter().copied().max_by(|&a, &b| {
            row[a]
                .partial_cmp(&row[b])
                .expect("Q values are finite")
                // Stabilize ties toward the lower action index so
                // recommendation is deterministic.
                .then(b.cmp(&a))
        })
    }

    /// `max` of `Q(s, ·)` restricted to `allowed`; `0.0` when empty
    /// (terminal convention).
    pub fn best_value(&self, s: usize, allowed: &[usize]) -> f64 {
        if allowed.is_empty() {
            return 0.0;
        }
        let row = self.row(s);
        allowed
            .iter()
            .map(|&a| row[a])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Maximum absolute entry (`‖Q‖∞`), useful for convergence checks.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Raw values, row-major (for persistence).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Approximate resident size in bytes (payload + header). Used by
    /// the serving layer's byte-bounded policy cache; an estimate is
    /// fine there, so this intentionally ignores allocator slack.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Rebuilds a table from raw parts.
    ///
    /// # Panics
    /// Panics when `values.len() != n_states * n_actions`.
    pub fn from_raw(n_states: usize, n_actions: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n_states * n_actions, "shape mismatch");
        QTable {
            n_states,
            n_actions,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut q = QTable::square(4);
        q.set(1, 2, 3.5);
        assert_eq!(q.get(1, 2), 3.5);
        assert_eq!(q.get(2, 1), 0.0);
        assert_eq!(q.n_states(), 4);
        assert_eq!(q.n_actions(), 4);
    }

    #[test]
    fn td_update_moves_toward_target() {
        let mut q = QTable::square(2);
        q.td_update(0, 1, 0.5, 10.0);
        assert_eq!(q.get(0, 1), 5.0);
        q.td_update(0, 1, 0.5, 10.0);
        assert_eq!(q.get(0, 1), 7.5);
    }

    #[test]
    fn best_action_respects_mask() {
        let mut q = QTable::square(4);
        q.set(0, 3, 9.0);
        q.set(0, 1, 5.0);
        // 3 is best overall but masked out.
        assert_eq!(q.best_action(0, &[1, 2]), Some(1));
        assert_eq!(q.best_action(0, &[1, 2, 3]), Some(3));
        assert_eq!(q.best_action(0, &[]), None);
    }

    #[test]
    fn best_action_tie_breaks_low_index() {
        let q = QTable::square(4);
        // All zeros: lowest index among allowed wins.
        assert_eq!(q.best_action(0, &[2, 1, 3]), Some(1));
    }

    #[test]
    fn best_value_terminal_convention() {
        let mut q = QTable::square(3);
        q.set(0, 1, -2.0);
        q.set(0, 2, -5.0);
        assert_eq!(q.best_value(0, &[1, 2]), -2.0);
        assert_eq!(q.best_value(0, &[]), 0.0);
    }

    #[test]
    fn row_is_contiguous() {
        let mut q = QTable::zeros(2, 3);
        q.set(1, 0, 1.0);
        q.set(1, 2, 2.0);
        assert_eq!(q.row(1), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn from_raw_roundtrip() {
        let q = QTable::from_raw(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q.get(1, 0), 3.0);
        assert_eq!(q.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_raw_rejects_bad_shape() {
        let _ = QTable::from_raw(2, 2, vec![1.0]);
    }

    #[test]
    fn max_abs() {
        let mut q = QTable::square(2);
        q.set(0, 0, -7.0);
        q.set(1, 1, 3.0);
        assert_eq!(q.max_abs(), 7.0);
    }
}
