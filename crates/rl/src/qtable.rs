//! Action-value tables: dense for seed-sized catalogs, per-state sparse
//! rows for city-scale ones.

use serde::{Deserialize, Serialize};

/// Largest catalog side for which [`QTable::for_catalog`] picks the
/// dense representation. Aligned with `DistanceMatrix::DEFAULT_CAP`:
/// below it a dense `n × n` table is ~8 MB and row sweeps are fastest;
/// above it the table goes sparse (a 10k-item catalog would otherwise
/// allocate 800 MB of mostly-zero `f64`s).
pub const DENSE_AUTO_MAX: usize = 1024;

/// Hard ceiling on dense element count (32M entries = 256 MiB). An
/// explicit dense request above it is a configuration error, not an
/// OOM-by-multiplication.
const MAX_DENSE_ELEMS: usize = 1 << 25;

/// Typed error for table construction that would overflow or exceed the
/// dense ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QTableError {
    /// `n_states * n_actions` overflows `usize` or exceeds
    /// [`MAX_DENSE_ELEMS`] for a dense table.
    TooLarge {
        /// Requested state rows.
        n_states: usize,
        /// Requested action columns.
        n_actions: usize,
    },
}

impl std::fmt::Display for QTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QTableError::TooLarge {
                n_states,
                n_actions,
            } => write!(
                f,
                "dense Q-table {n_states}x{n_actions} exceeds the \
                 {MAX_DENSE_ELEMS}-element ceiling (use a sparse table)",
            ),
        }
    }
}

impl std::error::Error for QTableError {}

/// Per-state sparse rows: `rows[s]` holds the visited `(action, value)`
/// pairs of state `s`, sorted by action for binary-search lookup.
/// `Vec::new()` does not allocate, so an untouched state costs only the
/// 24-byte `Vec` header — the whole point at 10k–100k items, where the
/// training trajectory touches a vanishing fraction of `n²` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SparseRows {
    rows: Vec<Vec<(u32, f64)>>,
    /// Total `(action, value)` entries across all rows, maintained on
    /// insert so `approx_bytes`/`entry_count` are O(1).
    entries: usize,
}

impl SparseRows {
    fn new(n_states: usize) -> Self {
        SparseRows {
            rows: vec![Vec::new(); n_states],
            entries: 0,
        }
    }

    #[inline]
    fn get(&self, s: usize, a: usize) -> f64 {
        let row = &self.rows[s];
        match row.binary_search_by_key(&(a as u32), |&(k, _)| k) {
            Ok(i) => row[i].1,
            Err(_) => 0.0,
        }
    }

    #[inline]
    fn set(&mut self, s: usize, a: usize, v: f64) {
        let row = &mut self.rows[s];
        match row.binary_search_by_key(&(a as u32), |&(k, _)| k) {
            Ok(i) => row[i].1 = v,
            Err(i) => {
                row.insert(i, (a as u32, v));
                self.entries += 1;
            }
        }
    }
}

/// Storage behind a [`QTable`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Repr {
    /// Row-major contiguous values (the seed representation).
    Dense(Vec<f64>),
    /// Per-state visited rows (city scale).
    Sparse(SparseRows),
}

/// An `n_states × n_actions` action-value table.
///
/// For TPP both axes are items, so the table is `|I| × |I|` exactly as
/// §III-C describes. Seed-sized catalogs store it dense — row-major in
/// one contiguous allocation for cache-friendly row sweeps — while
/// city-scale catalogs store only the visited `(state, action)` pairs
/// in per-state sorted rows ([`QTable::for_catalog`] picks automatically
/// at [`DENSE_AUTO_MAX`]).
///
/// Note the derived `PartialEq` is *representational*: a dense and a
/// sparse table holding the same values compare unequal. Equivalence of
/// behaviour is asserted via lookups (see the golden equivalence suite),
/// not via `==` across representations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    n_states: usize,
    n_actions: usize,
    repr: Repr,
}

impl QTable {
    /// A zero-initialized dense table.
    ///
    /// # Panics
    /// Panics when `n_states * n_actions` overflows or exceeds the
    /// dense element ceiling. Use [`QTable::try_zeros`] when the shape
    /// comes from untrusted input (checkpoints, request parameters).
    pub fn zeros(n_states: usize, n_actions: usize) -> Self {
        Self::try_zeros(n_states, n_actions).expect("dense Q-table shape within ceiling")
    }

    /// Fallible dense constructor: `checked_mul` on the element count
    /// and a hard ceiling instead of an abort/OOM on oversized catalogs.
    pub fn try_zeros(n_states: usize, n_actions: usize) -> Result<Self, QTableError> {
        let elems = n_states
            .checked_mul(n_actions)
            .filter(|&e| e <= MAX_DENSE_ELEMS)
            .ok_or(QTableError::TooLarge {
                n_states,
                n_actions,
            })?;
        Ok(QTable {
            n_states,
            n_actions,
            repr: Repr::Dense(vec![0.0; elems]),
        })
    }

    /// A square dense `n × n` zero table (the TPP shape).
    ///
    /// # Panics
    /// Panics when `n * n` exceeds the dense ceiling; see
    /// [`QTable::zeros`].
    pub fn square(n: usize) -> Self {
        Self::zeros(n, n)
    }

    /// An empty sparse table: all values read as `0.0`, storage grows
    /// with the visited `(state, action)` pairs.
    pub fn sparse(n_states: usize, n_actions: usize) -> Self {
        QTable {
            n_states,
            n_actions,
            repr: Repr::Sparse(SparseRows::new(n_states)),
        }
    }

    /// The representation [`for_catalog`](Self::for_catalog)-style auto
    /// selection uses for an `n`-item catalog: dense up to
    /// [`DENSE_AUTO_MAX`], sparse above.
    pub fn auto_is_dense(n: usize) -> bool {
        n <= DENSE_AUTO_MAX
    }

    /// A zero table for an `n`-item catalog (`n × n`), dense for
    /// seed-sized catalogs and sparse above [`DENSE_AUTO_MAX`].
    pub fn for_catalog(n: usize) -> Self {
        if Self::auto_is_dense(n) {
            Self::square(n)
        } else {
            Self::sparse(n, n)
        }
    }

    /// Number of state rows.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of action columns.
    #[inline]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// `true` when the table stores per-state sparse rows.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Number of materialized entries: `n_states * n_actions` for a
    /// dense table, the visited-pair count for a sparse one.
    pub fn entry_count(&self) -> usize {
        match &self.repr {
            Repr::Dense(v) => v.len(),
            Repr::Sparse(s) => s.entries,
        }
    }

    /// `Q(s, a)`.
    #[inline]
    pub fn get(&self, s: usize, a: usize) -> f64 {
        debug_assert!(s < self.n_states && a < self.n_actions);
        match &self.repr {
            Repr::Dense(v) => v[s * self.n_actions + a],
            Repr::Sparse(rows) => rows.get(s, a),
        }
    }

    /// Sets `Q(s, a)`.
    #[inline]
    pub fn set(&mut self, s: usize, a: usize, v: f64) {
        debug_assert!(s < self.n_states && a < self.n_actions);
        match &mut self.repr {
            Repr::Dense(vals) => vals[s * self.n_actions + a] = v,
            Repr::Sparse(rows) => rows.set(s, a, v),
        }
    }

    /// The SARSA/Q-learning temporal-difference update (Eq. 9):
    /// `Q(s,a) ← Q(s,a) + α [target − Q(s,a)]`.
    #[inline]
    pub fn td_update(&mut self, s: usize, a: usize, alpha: f64, target: f64) {
        let q = self.get(s, a);
        self.set(s, a, q + alpha * (target - q));
    }

    /// Row `s` as a slice (dense tables only — a sparse row is not
    /// materialized anywhere).
    ///
    /// # Panics
    /// Panics on a sparse table; row-sweep callers are dense-path-only
    /// by construction.
    #[inline]
    pub fn row(&self, s: usize) -> &[f64] {
        match &self.repr {
            Repr::Dense(v) => &v[s * self.n_actions..(s + 1) * self.n_actions],
            Repr::Sparse(_) => panic!("QTable::row on a sparse table"),
        }
    }

    /// `argmax` of `Q(s, ·)` restricted to `allowed`. Ties break toward
    /// the lower action index so recommendation is deterministic, and
    /// the comparison is `total_cmp` — a NaN smuggled in by a corrupt
    /// checkpoint yields a (deterministic) degraded pick instead of a
    /// process abort. `None` when `allowed` is empty.
    ///
    /// On a sparse table this is per-candidate lookups over `allowed`
    /// (the shortlist); no row is ever materialized.
    pub fn best_action(&self, s: usize, allowed: &[usize]) -> Option<usize> {
        match &self.repr {
            Repr::Dense(v) => {
                let row = &v[s * self.n_actions..(s + 1) * self.n_actions];
                allowed
                    .iter()
                    .copied()
                    .max_by(|&a, &b| row[a].total_cmp(&row[b]).then(b.cmp(&a)))
            }
            Repr::Sparse(rows) => allowed
                .iter()
                .copied()
                .max_by(|&a, &b| rows.get(s, a).total_cmp(&rows.get(s, b)).then(b.cmp(&a))),
        }
    }

    /// `max` of `Q(s, ·)` restricted to `allowed`; `0.0` when empty
    /// (terminal convention).
    pub fn best_value(&self, s: usize, allowed: &[usize]) -> f64 {
        if allowed.is_empty() {
            return 0.0;
        }
        allowed
            .iter()
            .map(|&a| self.get(s, a))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Maximum absolute entry (`‖Q‖∞`), useful for convergence checks.
    pub fn max_abs(&self) -> f64 {
        match &self.repr {
            Repr::Dense(v) => v.iter().fold(0.0, |m, x| m.max(x.abs())),
            // Unvisited pairs are an implicit 0.0, so the fold's 0.0
            // seed already accounts for them.
            Repr::Sparse(s) => s
                .rows
                .iter()
                .flat_map(|r| r.iter())
                .fold(0.0, |m, (_, x)| m.max(x.abs())),
        }
    }

    /// `true` when any entry is non-finite (NaN or ±∞) — the checkpoint
    /// decoder's admission gate.
    pub fn has_non_finite(&self) -> bool {
        match &self.repr {
            Repr::Dense(v) => v.iter().any(|x| !x.is_finite()),
            Repr::Sparse(s) => s.rows.iter().flatten().any(|(_, x)| !x.is_finite()),
        }
    }

    /// Raw values, row-major (dense persistence/equivalence contexts).
    ///
    /// # Panics
    /// Panics on a sparse table; use [`QTable::dense_values`] or
    /// [`QTable::iter_set`] when the representation is not known.
    pub fn values(&self) -> &[f64] {
        self.dense_values()
            .expect("QTable::values on a sparse table")
    }

    /// Raw row-major values when dense, `None` when sparse.
    pub fn dense_values(&self) -> Option<&[f64]> {
        match &self.repr {
            Repr::Dense(v) => Some(v),
            Repr::Sparse(_) => None,
        }
    }

    /// The materialized `(state, action, value)` entries in ascending
    /// `(state, action)` order — the deterministic encode order for
    /// sparse persistence. Dense tables yield every cell.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let dense = match &self.repr {
            Repr::Dense(v) => Some(
                v.iter()
                    .enumerate()
                    .map(|(i, &x)| (i / self.n_actions.max(1), i % self.n_actions.max(1), x)),
            ),
            Repr::Sparse(_) => None,
        };
        let sparse = match &self.repr {
            Repr::Sparse(s) => Some(
                s.rows
                    .iter()
                    .enumerate()
                    .flat_map(|(st, row)| row.iter().map(move |&(a, x)| (st, a as usize, x))),
            ),
            Repr::Dense(_) => None,
        };
        dense
            .into_iter()
            .flatten()
            .chain(sparse.into_iter().flatten())
    }

    /// Approximate resident size in bytes (payload + headers). Used by
    /// the serving layer's byte-bounded policy cache and the bench
    /// smoke's no-dense-allocation assertion; an estimate is fine there,
    /// so this intentionally ignores allocator slack.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + match &self.repr {
                Repr::Dense(v) => v.len() * std::mem::size_of::<f64>(),
                Repr::Sparse(s) => {
                    s.rows.len() * std::mem::size_of::<Vec<(u32, f64)>>()
                        + s.entries * std::mem::size_of::<(u32, f64)>()
                }
            }
    }

    /// Rebuilds a dense table from raw parts.
    ///
    /// # Panics
    /// Panics when `values.len() != n_states * n_actions`.
    pub fn from_raw(n_states: usize, n_actions: usize, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            n_states.checked_mul(n_actions).expect("shape mismatch"),
            "shape mismatch"
        );
        QTable {
            n_states,
            n_actions,
            repr: Repr::Dense(values),
        }
    }

    /// Rebuilds a sparse table from `(state, action, value)` entries
    /// (the persistence decode path). Entries may arrive in any order;
    /// out-of-range entries are an error.
    pub fn from_sparse_entries(
        n_states: usize,
        n_actions: usize,
        entries: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self, String> {
        let mut q = Self::sparse(n_states, n_actions);
        for (s, a, v) in entries {
            if s >= n_states || a >= n_actions {
                return Err(format!(
                    "sparse entry ({s}, {a}) out of range {n_states}x{n_actions}"
                ));
            }
            q.set(s, a, v);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut q = QTable::square(4);
        q.set(1, 2, 3.5);
        assert_eq!(q.get(1, 2), 3.5);
        assert_eq!(q.get(2, 1), 0.0);
        assert_eq!(q.n_states(), 4);
        assert_eq!(q.n_actions(), 4);
    }

    #[test]
    fn sparse_get_set_roundtrip() {
        let mut q = QTable::sparse(100_000, 100_000);
        assert!(q.is_sparse());
        assert_eq!(q.get(99_999, 12_345), 0.0);
        q.set(99_999, 12_345, 3.5);
        q.set(99_999, 7, -1.0);
        q.set(0, 0, 2.0);
        assert_eq!(q.get(99_999, 12_345), 3.5);
        assert_eq!(q.get(99_999, 7), -1.0);
        assert_eq!(q.get(0, 0), 2.0);
        assert_eq!(q.get(50_000, 50_000), 0.0);
        assert_eq!(q.entry_count(), 3);
    }

    #[test]
    fn td_update_moves_toward_target() {
        for mut q in [QTable::square(2), QTable::sparse(2, 2)] {
            q.td_update(0, 1, 0.5, 10.0);
            assert_eq!(q.get(0, 1), 5.0);
            q.td_update(0, 1, 0.5, 10.0);
            assert_eq!(q.get(0, 1), 7.5);
        }
    }

    #[test]
    fn best_action_respects_mask() {
        for mut q in [QTable::square(4), QTable::sparse(4, 4)] {
            q.set(0, 3, 9.0);
            q.set(0, 1, 5.0);
            // 3 is best overall but masked out.
            assert_eq!(q.best_action(0, &[1, 2]), Some(1));
            assert_eq!(q.best_action(0, &[1, 2, 3]), Some(3));
            assert_eq!(q.best_action(0, &[]), None);
        }
    }

    #[test]
    fn best_action_tie_breaks_low_index() {
        for q in [QTable::square(4), QTable::sparse(4, 4)] {
            // All zeros: lowest index among allowed wins.
            assert_eq!(q.best_action(0, &[2, 1, 3]), Some(1));
        }
    }

    #[test]
    fn best_action_survives_nan() {
        // A NaN Q-value (corrupt checkpoint) must not abort the argmax:
        // total_cmp orders positive NaN above +inf, so the pick is
        // deterministic and the process stays alive.
        for mut q in [QTable::square(4), QTable::sparse(4, 4)] {
            q.set(0, 2, f64::NAN);
            q.set(0, 1, 5.0);
            assert_eq!(q.best_action(0, &[1, 2, 3]), Some(2));
            // All-finite rows are unaffected.
            assert_eq!(q.best_action(1, &[1, 2, 3]), Some(1));
        }
    }

    #[test]
    fn best_value_terminal_convention() {
        for mut q in [QTable::square(3), QTable::sparse(3, 3)] {
            q.set(0, 1, -2.0);
            q.set(0, 2, -5.0);
            assert_eq!(q.best_value(0, &[1, 2]), -2.0);
            assert_eq!(q.best_value(0, &[]), 0.0);
        }
    }

    #[test]
    fn row_is_contiguous() {
        let mut q = QTable::zeros(2, 3);
        q.set(1, 0, 1.0);
        q.set(1, 2, 2.0);
        assert_eq!(q.row(1), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn from_raw_roundtrip() {
        let q = QTable::from_raw(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q.get(1, 0), 3.0);
        assert_eq!(q.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_raw_rejects_bad_shape() {
        let _ = QTable::from_raw(2, 2, vec![1.0]);
    }

    #[test]
    fn max_abs() {
        for mut q in [QTable::square(2), QTable::sparse(2, 2)] {
            q.set(0, 0, -7.0);
            q.set(1, 1, 3.0);
            assert_eq!(q.max_abs(), 7.0);
        }
    }

    #[test]
    fn try_zeros_rejects_overflow_and_oversize() {
        // usize overflow.
        assert_eq!(
            QTable::try_zeros(usize::MAX, 2),
            Err(QTableError::TooLarge {
                n_states: usize::MAX,
                n_actions: 2
            })
        );
        // Past the dense ceiling but no overflow: a 10k catalog.
        assert!(QTable::try_zeros(10_000, 10_000).is_err());
        assert!(QTable::try_zeros(1024, 1024).is_ok());
        // Sparse has no such ceiling.
        let q = QTable::sparse(10_000, 10_000);
        assert_eq!(q.n_states(), 10_000);
    }

    #[test]
    fn for_catalog_auto_selects_repr() {
        assert!(!QTable::for_catalog(6).is_sparse());
        assert!(!QTable::for_catalog(DENSE_AUTO_MAX).is_sparse());
        assert!(QTable::for_catalog(DENSE_AUTO_MAX + 1).is_sparse());
        assert!(QTable::auto_is_dense(114));
        assert!(!QTable::auto_is_dense(10_000));
    }

    #[test]
    fn sparse_approx_bytes_stays_far_under_dense() {
        let mut q = QTable::sparse(10_000, 10_000);
        for s in 0..1000 {
            for a in 0..10 {
                q.set(s, a * 7, 1.0);
            }
        }
        let dense_bytes = 10_000usize * 10_000 * 8;
        assert!(q.approx_bytes() < dense_bytes / 100);
        // Headers + 10k entries, not 100M cells.
        assert_eq!(q.entry_count(), 10_000);
    }

    #[test]
    fn dense_and_sparse_agree_on_lookups() {
        let mut d = QTable::square(8);
        let mut s = QTable::sparse(8, 8);
        // A deterministic scatter of writes applied to both.
        for i in 0..32u32 {
            let st = (i.wrapping_mul(5) % 8) as usize;
            let ac = (i.wrapping_mul(11) % 8) as usize;
            let v = f64::from(i) * 0.25 - 3.0;
            d.set(st, ac, v);
            s.set(st, ac, v);
            d.td_update(st, ac, 0.5, 1.0);
            s.td_update(st, ac, 0.5, 1.0);
        }
        for st in 0..8 {
            for ac in 0..8 {
                assert_eq!(d.get(st, ac).to_bits(), s.get(st, ac).to_bits());
            }
            assert_eq!(
                d.best_action(st, &[1, 3, 5, 7]),
                s.best_action(st, &[1, 3, 5, 7])
            );
            assert_eq!(
                d.best_value(st, &[0, 2, 4]).to_bits(),
                s.best_value(st, &[0, 2, 4]).to_bits()
            );
        }
        assert_eq!(d.max_abs().to_bits(), s.max_abs().to_bits());
    }

    #[test]
    fn iter_set_is_sorted_and_roundtrips() {
        let mut q = QTable::sparse(5, 5);
        q.set(3, 4, 1.0);
        q.set(3, 1, 2.0);
        q.set(0, 2, 3.0);
        let entries: Vec<_> = q.iter_set().collect();
        assert_eq!(entries, vec![(0, 2, 3.0), (3, 1, 2.0), (3, 4, 1.0)]);
        let back = QTable::from_sparse_entries(5, 5, entries).unwrap();
        assert_eq!(back, q);
        // Out-of-range entries are rejected.
        assert!(QTable::from_sparse_entries(2, 2, [(5, 0, 1.0)]).is_err());
    }

    #[test]
    fn has_non_finite_detects_nan_and_inf() {
        for mut q in [QTable::square(3), QTable::sparse(3, 3)] {
            assert!(!q.has_non_finite());
            q.set(1, 1, f64::NAN);
            assert!(q.has_non_finite());
            q.set(1, 1, f64::INFINITY);
            assert!(q.has_non_finite());
            q.set(1, 1, 0.5);
            assert!(!q.has_non_finite());
        }
    }
}
