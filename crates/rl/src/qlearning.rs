//! Q-learning: the off-policy counterpart, kept for the SARSA-vs-Q
//! ablation called out in DESIGN.md (the paper argues for on-policy
//! SARSA; the ablation lets us measure that choice).

use crate::env::Environment;
use crate::policy::ActionSelector;
use crate::qtable::QTable;
use crate::sarsa::SarsaConfig;
use crate::stats::TrainStats;
use rand::Rng;

/// Off-policy TD(0) agent:
/// `Q(s,a) ← Q(s,a) + α [ r + γ max_a' Q(s',a') − Q(s,a) ]`.
#[derive(Debug, Clone)]
pub struct QLearningAgent {
    /// Learned action values.
    pub q: QTable,
    config: SarsaConfig,
}

impl QLearningAgent {
    /// Creates an agent with a zero Q-table sized for `env`. Reuses
    /// [`SarsaConfig`] — the hyper-parameters are identical.
    pub fn new<E: Environment>(env: &E, config: SarsaConfig) -> Self {
        QLearningAgent {
            q: QTable::square(env.n_states()),
            config,
        }
    }

    /// Trains for `config.episodes` episodes (same calling convention as
    /// [`crate::SarsaAgent::train`]).
    pub fn train<E, S, R, F>(
        &mut self,
        env: &mut E,
        selector: &S,
        rng: &mut R,
        mut start_of: F,
    ) -> TrainStats
    where
        E: Environment,
        S: ActionSelector,
        R: Rng + ?Sized,
        F: FnMut(usize, &mut R) -> usize,
    {
        let mut stats = TrainStats::with_capacity(self.config.episodes);
        let mut actions = Vec::with_capacity(env.n_states());
        for episode in 0..self.config.episodes {
            let alpha = self.config.alpha.at(episode);
            env.reset(start_of(episode, rng));
            let mut ep_return = 0.0;
            loop {
                let s = env.state();
                env.valid_actions(&mut actions);
                if actions.is_empty() {
                    break;
                }
                let a = selector.select(&self.q, s, &actions, rng);
                let out = env.step(a);
                ep_return += out.reward;
                if out.done {
                    self.q.td_update(s, a, alpha, out.reward);
                    break;
                }
                env.valid_actions(&mut actions);
                let target =
                    out.reward + self.config.gamma * self.q.best_value(out.next_state, &actions);
                self.q.td_update(s, a, alpha, target);
            }
            stats.push(ep_return);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;
    use crate::policy::EpsilonGreedy;
    use crate::schedule::Schedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_to_walk_right_on_chain() {
        let mut env = ChainEnv::new(6, 5);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 500,
        };
        let mut agent = QLearningAgent::new(&env, config);
        let mut rng = StdRng::seed_from_u64(4);
        agent.train(&mut env, &EpsilonGreedy::new(0.2), &mut rng, |_, _| 0);
        for s in 1..5usize {
            assert!(agent.q.get(s, s + 1) > agent.q.get(s, s - 1));
        }
    }

    #[test]
    fn sarsa_and_qlearning_agree_on_greedy_policy_here() {
        // On a deterministic chain with enough training both converge to
        // the same greedy policy, even though the value estimates differ.
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.4),
            gamma: 0.9,
            episodes: 800,
        };
        let mut env = ChainEnv::new(5, 4);
        let mut sarsa = crate::SarsaAgent::new(&env, config);
        let mut rng = StdRng::seed_from_u64(21);
        sarsa.train(&mut env, &EpsilonGreedy::new(0.3), &mut rng, |_, _| 0);
        let mut env2 = ChainEnv::new(5, 4);
        let mut ql = QLearningAgent::new(&env2, config);
        let mut rng2 = StdRng::seed_from_u64(21);
        ql.train(&mut env2, &EpsilonGreedy::new(0.3), &mut rng2, |_, _| 0);
        for s in 1..4usize {
            let allowed = [s + 1, s - 1];
            assert_eq!(
                sarsa.q.best_action(s, &allowed),
                ql.q.best_action(s, &allowed),
                "policies disagree at state {s}"
            );
        }
    }
}
