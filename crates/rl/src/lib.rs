//! # tpp-rl
//!
//! Tabular reinforcement-learning substrate, hand-rolled because no
//! mature RL crate exists offline (and the paper's learner is tabular
//! anyway): dense Q-tables, the on-policy SARSA algorithm the paper
//! adopts (§III-C, Eq. 9), off-policy Q-learning for the ablation
//! comparison, ε-greedy/greedy action selection, parameter schedules,
//! greedy rollouts and cross-universe policy transfer.
//!
//! Everything is generic over the [`Environment`] trait so the substrate
//! is reusable beyond TPP; the TPP environments live in `tpp-core`.

#![warn(missing_docs)]

pub mod budget;
pub mod checkpoint;
pub mod dp;
pub mod env;
pub mod expected_sarsa;
pub mod mc;
pub mod policy;
pub mod qlearning;
pub mod qtable;
pub mod rng;
pub mod rollout;
pub mod sarsa;
pub mod schedule;
pub mod stats;
pub mod transfer;
pub mod visits;

pub use budget::{Budget, BudgetStop};
pub use checkpoint::TrainCheckpoint;
pub use dp::{policy_iteration, value_iteration, DpSolution, ExplicitMdp};
pub use env::{Environment, StepOutcome};
pub use expected_sarsa::ExpectedSarsaAgent;
pub use mc::MonteCarloAgent;
pub use policy::{ActionSelector, EpsilonGreedy, GreedySelector};
pub use qlearning::QLearningAgent;
pub use qtable::{QTable, QTableError, DENSE_AUTO_MAX};
pub use rng::TrainRng;
pub use rollout::greedy_rollout;
pub use sarsa::{SarsaAgent, SarsaConfig};
pub use schedule::Schedule;
pub use stats::{ReturnSummary, TrainStats};
pub use transfer::{transfer_q, StateMapping};
pub use visits::VisitTable;
