//! A serializable training RNG.
//!
//! Checkpointed training must be able to persist and restore its random
//! stream exactly, which rules out `rand`'s `StdRng` (its internal state
//! is opaque). [`TrainRng`] is xoshiro256\*\* seeded through SplitMix64
//! — the reference seeding — with the four state words exposed for
//! checkpointing. Restoring the words resumes the stream at precisely
//! the point it was captured, which is what makes interrupted-and-resumed
//! training bit-identical to an uninterrupted run.

/// xoshiro256\*\* with SplitMix64 seeding and checkpointable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TrainRng {
    /// Seeds the generator from a single word via SplitMix64.
    pub fn seed_from_u64(mut seed: u64) -> Self {
        let s = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        TrainRng { s }
    }

    /// Restores a generator from checkpointed state words.
    pub fn from_state(s: [u64; 4]) -> Self {
        TrainRng { s }
    }

    /// The four state words, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = TrainRng::seed_from_u64(42);
        let mut b = TrainRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TrainRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut a = TrainRng::seed_from_u64(7);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = TrainRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = TrainRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn index_covers_range() {
        let mut rng = TrainRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_rejects_zero() {
        TrainRng::seed_from_u64(0).index(0);
    }
}
