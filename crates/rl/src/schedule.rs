//! Parameter schedules (exploration/learning-rate decay).

use serde::{Deserialize, Serialize};

/// A scalar schedule over training episodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Always the same value.
    Constant(f64),
    /// Linear from `from` to `to` over `over` episodes, then `to`.
    Linear {
        /// Starting value (episode 0).
        from: f64,
        /// Final value.
        to: f64,
        /// Episodes over which to interpolate.
        over: usize,
    },
    /// Exponential decay `from * rate^episode`, floored at `min`.
    Exponential {
        /// Starting value.
        from: f64,
        /// Per-episode multiplicative factor in `(0, 1]`.
        rate: f64,
        /// Lower bound.
        min: f64,
    },
}

impl Schedule {
    /// Value at `episode`.
    pub fn at(&self, episode: usize) -> f64 {
        match *self {
            Schedule::Constant(v) => v,
            Schedule::Linear { from, to, over } => {
                if over == 0 || episode >= over {
                    to
                } else {
                    from + (to - from) * (episode as f64 / over as f64)
                }
            }
            Schedule::Exponential { from, rate, min } => {
                (from * rate.powi(episode as i32)).max(min)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant() {
        assert_eq!(Schedule::Constant(0.75).at(0), 0.75);
        assert_eq!(Schedule::Constant(0.75).at(9999), 0.75);
    }

    #[test]
    fn linear_endpoints_and_midpoint() {
        let s = Schedule::Linear {
            from: 1.0,
            to: 0.0,
            over: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(5) - 0.5).abs() < 1e-12);
        assert_eq!(s.at(10), 0.0);
        assert_eq!(s.at(100), 0.0);
    }

    #[test]
    fn linear_zero_span() {
        let s = Schedule::Linear {
            from: 1.0,
            to: 0.2,
            over: 0,
        };
        assert_eq!(s.at(0), 0.2);
    }

    #[test]
    fn exponential_decays_to_floor() {
        let s = Schedule::Exponential {
            from: 1.0,
            rate: 0.5,
            min: 0.1,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(1), 0.5);
        assert_eq!(s.at(2), 0.25);
        assert_eq!(s.at(10), 0.1);
    }
}
