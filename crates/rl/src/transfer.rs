//! Cross-universe policy transfer.
//!
//! The paper's transfer-learning case studies (§IV-D) learn a policy on
//! one item universe (M.S. CS; NYC) and apply it to another (M.S. DS-CT;
//! Paris). A tabular policy is tied to its state indexing, so transfer
//! needs an explicit **state mapping** from target states to source
//! states; unmapped target states fall back to zero-initialized rows and
//! columns.

use crate::qtable::QTable;
use serde::{Deserialize, Serialize};

/// For each target state, the source state it corresponds to (if any).
///
/// Course programs inside one university share course ids/codes, giving an
/// identity-on-intersection mapping; disjoint POI universes are mapped by
/// nearest-neighbour in theme space (built in `tpp-core::transfer`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateMapping {
    map: Vec<Option<usize>>,
}

impl StateMapping {
    /// Creates a mapping; `map[t]` is the source state for target `t`.
    pub fn new(map: Vec<Option<usize>>) -> Self {
        StateMapping { map }
    }

    /// Identity mapping over `n` states.
    pub fn identity(n: usize) -> Self {
        StateMapping {
            map: (0..n).map(Some).collect(),
        }
    }

    /// Number of target states.
    pub fn target_len(&self) -> usize {
        self.map.len()
    }

    /// Source state for target `t`.
    pub fn source_of(&self, t: usize) -> Option<usize> {
        self.map.get(t).copied().flatten()
    }

    /// Fraction of target states that have a source (coverage of the
    /// transfer).
    pub fn coverage(&self) -> f64 {
        if self.map.is_empty() {
            return 0.0;
        }
        self.map.iter().filter(|m| m.is_some()).count() as f64 / self.map.len() as f64
    }
}

/// Transports a source Q-table into a target universe of
/// `mapping.target_len()` states: `Q_t(i, j) = Q_s(map(i), map(j))` where
/// both endpoints are mapped, `0` otherwise.
pub fn transfer_q(source: &QTable, mapping: &StateMapping) -> QTable {
    let n = mapping.target_len();
    let mut out = QTable::square(n);
    for i in 0..n {
        let Some(si) = mapping.source_of(i) else {
            continue;
        };
        if si >= source.n_states() {
            continue;
        }
        for j in 0..n {
            let Some(sj) = mapping.source_of(j) else {
                continue;
            };
            if sj >= source.n_actions() {
                continue;
            }
            out.set(i, j, source.get(si, sj));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_transfer_copies_table() {
        let mut q = QTable::square(3);
        q.set(0, 1, 2.0);
        q.set(2, 0, -1.0);
        let t = transfer_q(&q, &StateMapping::identity(3));
        assert_eq!(t, q);
    }

    #[test]
    fn partial_mapping_zeroes_unmapped() {
        let mut q = QTable::square(3);
        q.set(0, 1, 5.0);
        q.set(1, 0, 7.0);
        // Target 0 → source 1, target 1 unmapped, target 2 → source 0.
        let m = StateMapping::new(vec![Some(1), None, Some(0)]);
        let t = transfer_q(&q, &m);
        assert_eq!(t.get(0, 2), 7.0); // Q_s(1, 0)
        assert_eq!(t.get(2, 0), 5.0); // Q_s(0, 1)
        assert_eq!(t.get(0, 1), 0.0);
        assert_eq!(t.get(1, 0), 0.0);
    }

    #[test]
    fn mapping_coverage() {
        let m = StateMapping::new(vec![Some(0), None, Some(2), None]);
        assert_eq!(m.coverage(), 0.5);
        assert_eq!(m.target_len(), 4);
        assert_eq!(m.source_of(2), Some(2));
        assert_eq!(m.source_of(1), None);
        assert_eq!(m.source_of(99), None);
        assert_eq!(StateMapping::new(vec![]).coverage(), 0.0);
    }

    #[test]
    fn out_of_range_sources_ignored() {
        let q = QTable::square(2);
        let m = StateMapping::new(vec![Some(5), Some(0)]);
        let t = transfer_q(&q, &m);
        assert_eq!(t.max_abs(), 0.0);
    }

    #[test]
    fn target_can_be_larger_than_source() {
        let mut q = QTable::square(2);
        q.set(0, 1, 3.0);
        let m = StateMapping::new(vec![Some(0), Some(1), None, None]);
        let t = transfer_q(&q, &m);
        assert_eq!(t.n_states(), 4);
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(t.get(2, 3), 0.0);
    }
}
