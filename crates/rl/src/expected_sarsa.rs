//! Expected SARSA: the lower-variance on-policy TD variant.
//!
//! Instead of bootstrapping from the *sampled* next action (SARSA) or the
//! *max* next action (Q-learning), Expected SARSA bootstraps from the
//! expectation under the ε-greedy behaviour policy:
//!
//! ```text
//! Q(s,a) ← Q(s,a) + α [ r + γ E_{a'~π}[Q(s',a')] − Q(s,a) ]
//! ```
//!
//! Included as a substrate-level comparison point for the paper's
//! on-policy choice; the TPP ablation benches pit it against SARSA(λ).

use crate::env::Environment;
use crate::policy::ActionSelector;
use crate::qtable::QTable;
use crate::sarsa::SarsaConfig;
use crate::stats::TrainStats;
use rand::Rng;

/// Expected-SARSA agent with a fixed behaviour ε (the expectation needs
/// the policy's action distribution in closed form, so the exploration
/// rate lives here rather than in the selector).
#[derive(Debug, Clone)]
pub struct ExpectedSarsaAgent {
    /// Learned action values.
    pub q: QTable,
    config: SarsaConfig,
    epsilon: f64,
}

impl ExpectedSarsaAgent {
    /// Creates an agent with a zero Q-table sized for `env` and the
    /// given behaviour ε.
    pub fn new<E: Environment>(env: &E, config: SarsaConfig, epsilon: f64) -> Self {
        ExpectedSarsaAgent {
            q: QTable::square(env.n_states()),
            config,
            epsilon: epsilon.clamp(0.0, 1.0),
        }
    }

    /// The ε-greedy expectation `E_{a~π}[Q(s, a)]` over `allowed`.
    fn expected_value(&self, s: usize, allowed: &[usize]) -> f64 {
        if allowed.is_empty() {
            return 0.0;
        }
        let best = self.q.best_value(s, allowed);
        let mean: f64 =
            allowed.iter().map(|&a| self.q.get(s, a)).sum::<f64>() / allowed.len() as f64;
        (1.0 - self.epsilon) * best + self.epsilon * mean
    }

    /// Trains for `config.episodes` episodes (same calling convention as
    /// [`crate::SarsaAgent::train`]).
    pub fn train<E, S, R, F>(
        &mut self,
        env: &mut E,
        selector: &S,
        rng: &mut R,
        mut start_of: F,
    ) -> TrainStats
    where
        E: Environment,
        S: ActionSelector,
        R: Rng + ?Sized,
        F: FnMut(usize, &mut R) -> usize,
    {
        let mut stats = TrainStats::with_capacity(self.config.episodes);
        let mut actions = Vec::with_capacity(env.n_states());
        for episode in 0..self.config.episodes {
            let alpha = self.config.alpha.at(episode);
            env.reset(start_of(episode, rng));
            let mut ep_return = 0.0;
            loop {
                let s = env.state();
                env.valid_actions(&mut actions);
                if actions.is_empty() {
                    break;
                }
                let a = selector.select(&self.q, s, &actions, rng);
                let out = env.step(a);
                ep_return += out.reward;
                if out.done {
                    self.q.td_update(s, a, alpha, out.reward);
                    break;
                }
                env.valid_actions(&mut actions);
                let target =
                    out.reward + self.config.gamma * self.expected_value(out.next_state, &actions);
                self.q.td_update(s, a, alpha, target);
            }
            stats.push(ep_return);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;
    use crate::policy::EpsilonGreedy;
    use crate::schedule::Schedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expected_sarsa_learns_chain_policy() {
        let mut env = ChainEnv::new(6, 5);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 500,
        };
        let mut agent = ExpectedSarsaAgent::new(&env, config, 0.2);
        let mut rng = StdRng::seed_from_u64(6);
        agent.train(&mut env, &EpsilonGreedy::new(0.2), &mut rng, |_, _| 0);
        for s in 1..5usize {
            assert!(agent.q.get(s, s + 1) > agent.q.get(s, s - 1), "state {s}");
        }
    }

    #[test]
    fn expectation_interpolates_best_and_mean() {
        let env = ChainEnv::new(3, 2);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 0,
        };
        let mut agent = ExpectedSarsaAgent::new(&env, config, 0.5);
        agent.q.set(0, 1, 4.0);
        agent.q.set(0, 2, 0.0);
        // best = 4, mean = 2, ε = 0.5 ⇒ 0.5·4 + 0.5·2 = 3.
        assert_eq!(agent.expected_value(0, &[1, 2]), 3.0);
        assert_eq!(agent.expected_value(0, &[]), 0.0);
    }

    #[test]
    fn epsilon_zero_reduces_to_greedy_bootstrap() {
        let env = ChainEnv::new(3, 2);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 0,
        };
        let mut agent = ExpectedSarsaAgent::new(&env, config, 0.0);
        agent.q.set(0, 1, 4.0);
        assert_eq!(agent.expected_value(0, &[1, 2]), 4.0);
    }
}
