//! Greedy rollouts: applying a learned policy.
//!
//! The paper's recommendation phase (Algorithm 1, lines 15–24) starts at
//! a given item and repeatedly walks to the unvisited item with the
//! maximum Q value until the sequence reaches `H` items.

use crate::budget::Budget;
use crate::env::Environment;
use crate::qtable::QTable;

/// Rolls an environment forward greedily under `q` from `start`.
///
/// Returns the visited state sequence (including `start`) and the total
/// (undiscounted) reward collected. Stops when the environment reports
/// `done` or no valid action remains.
pub fn greedy_rollout<E: Environment>(env: &mut E, q: &QTable, start: usize) -> (Vec<usize>, f64) {
    greedy_rollout_budgeted(env, q, start, &Budget::unlimited())
}

/// [`greedy_rollout`] under a cooperative [`Budget`]: the walk also
/// stops — cleanly, after a completed step — once the budget's deadline
/// or step limit is hit, so a pathological environment can never stall
/// a serving request forever.
pub fn greedy_rollout_budgeted<E: Environment>(
    env: &mut E,
    q: &QTable,
    start: usize,
    budget: &Budget,
) -> (Vec<usize>, f64) {
    env.reset(start);
    let mut seq = vec![env.state()];
    let mut total = 0.0;
    let mut actions = Vec::with_capacity(env.n_states());
    loop {
        if budget.check_step().is_some() {
            break;
        }
        let s = env.state();
        env.valid_actions(&mut actions);
        let Some(a) = q.best_action(s, &actions) else {
            break;
        };
        let out = env.step(a);
        seq.push(out.next_state);
        total += out.reward;
        if out.done {
            break;
        }
    }
    (seq, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;
    use crate::policy::EpsilonGreedy;
    use crate::sarsa::{SarsaAgent, SarsaConfig};
    use crate::schedule::Schedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rollout_follows_learned_policy() {
        let mut env = ChainEnv::new(6, 5);
        let config = SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 600,
        };
        let mut agent = SarsaAgent::new(&env, config);
        let mut rng = StdRng::seed_from_u64(8);
        agent.train(&mut env, &EpsilonGreedy::new(0.2), &mut rng, |_, _| 0);
        let mut env2 = ChainEnv::new(6, 5);
        let (seq, total) = greedy_rollout(&mut env2, &agent.q, 0);
        assert_eq!(seq, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(total, 5.0);
    }

    #[test]
    fn budgeted_rollout_stops_at_step_limit() {
        let mut env = ChainEnv::new(8, 7);
        let q = QTable::square(8);
        let budget = Budget::unlimited().with_step_limit(3);
        let (seq, _) = greedy_rollout_budgeted(&mut env, &q, 0, &budget);
        // start + 3 budgeted steps, then the clean stop.
        assert_eq!(seq.len(), 4);
        assert!(budget.expired());
    }

    #[test]
    fn rollout_on_untrained_q_still_terminates() {
        let mut env = ChainEnv::new(4, 10);
        let q = QTable::square(4);
        let (seq, _) = greedy_rollout(&mut env, &q, 1);
        assert!(!seq.is_empty());
        assert!(seq.len() <= 11);
    }
}
