//! Dynamic-programming solvers: value iteration and policy iteration.
//!
//! §III-C of the paper surveys the solution space — "value iteration and
//! policy iteration, which are iterative methods and could be solved
//! using Dynamic Programming" — before adopting model-free SARSA (the
//! TPP state space is exponential when histories matter, and there is no
//! explicit transition model). These solvers are implemented for
//! **explicit tabular MDPs** so the paper's argument can be verified on
//! small instances: on MDPs small enough to enumerate, all three methods
//! agree on the optimal policy, while only SARSA scales to TPP.

use crate::qtable::QTable;

/// An explicit, finite MDP: `transitions[s][a] = Some((s', r))` for a
/// deterministic legal action, `None` for an illegal one. Terminal
/// states have no legal actions.
#[derive(Debug, Clone)]
pub struct ExplicitMdp {
    /// `transitions[s][a]`.
    pub transitions: Vec<Vec<Option<(usize, f64)>>>,
    /// Discount factor.
    pub gamma: f64,
}

impl ExplicitMdp {
    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.transitions.len()
    }

    /// Number of action columns.
    pub fn n_actions(&self) -> usize {
        self.transitions.first().map_or(0, Vec::len)
    }

    /// Sanity checks: rectangular table, targets in range, γ in [0, 1).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.gamma) {
            return Err(format!("gamma must be in [0,1), got {}", self.gamma));
        }
        let na = self.n_actions();
        for (s, row) in self.transitions.iter().enumerate() {
            if row.len() != na {
                return Err(format!(
                    "state {s} has {} actions, expected {na}",
                    row.len()
                ));
            }
            for t in row.iter().flatten() {
                if t.0 >= self.n_states() {
                    return Err(format!("state {s} transitions to out-of-range {}", t.0));
                }
            }
        }
        Ok(())
    }
}

/// Result of a DP solve: state values, greedy policy (per-state action,
/// `None` at terminals), and iterations to convergence.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// `V*(s)`.
    pub values: Vec<f64>,
    /// Greedy policy.
    pub policy: Vec<Option<usize>>,
    /// Sweeps until convergence.
    pub iterations: usize,
}

/// Value iteration to tolerance `tol` (sup-norm), capped at `max_iter`
/// sweeps.
pub fn value_iteration(mdp: &ExplicitMdp, tol: f64, max_iter: usize) -> DpSolution {
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        let mut delta = 0.0f64;
        for s in 0..n {
            let best = mdp.transitions[s]
                .iter()
                .flatten()
                .map(|&(sn, r)| r + mdp.gamma * values[sn])
                .fold(f64::NEG_INFINITY, f64::max);
            let new_v = if best.is_finite() { best } else { 0.0 };
            delta = delta.max((new_v - values[s]).abs());
            values[s] = new_v;
        }
        if delta < tol {
            break;
        }
    }
    let policy = extract_policy(mdp, &values);
    DpSolution {
        values,
        policy,
        iterations,
    }
}

/// Policy iteration: iterative policy evaluation + greedy improvement.
/// The paper cites \[22\] for policy iteration converging in fewer
/// iterations than value iteration; the `iterations` fields let tests
/// check that claim on explicit MDPs.
pub fn policy_iteration(mdp: &ExplicitMdp, tol: f64, max_iter: usize) -> DpSolution {
    let n = mdp.n_states();
    // Initial policy: first legal action.
    let mut policy: Vec<Option<usize>> = (0..n)
        .map(|s| mdp.transitions[s].iter().position(Option::is_some))
        .collect();
    let mut values = vec![0.0; n];
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        // Policy evaluation (iterative, to tolerance).
        for _ in 0..max_iter {
            let mut delta = 0.0f64;
            for s in 0..n {
                let new_v = match policy[s] {
                    Some(a) => match mdp.transitions[s][a] {
                        Some((sn, r)) => r + mdp.gamma * values[sn],
                        None => 0.0,
                    },
                    None => 0.0,
                };
                delta = delta.max((new_v - values[s]).abs());
                values[s] = new_v;
            }
            if delta < tol {
                break;
            }
        }
        // Greedy improvement.
        let improved = extract_policy(mdp, &values);
        if improved == policy {
            break;
        }
        policy = improved;
    }
    DpSolution {
        values,
        policy,
        iterations,
    }
}

fn extract_policy(mdp: &ExplicitMdp, values: &[f64]) -> Vec<Option<usize>> {
    (0..mdp.n_states())
        .map(|s| {
            mdp.transitions[s]
                .iter()
                .enumerate()
                .filter_map(|(a, t)| t.map(|(sn, r)| (a, r + mdp.gamma * values[sn])))
                .max_by(|x, y| x.1.total_cmp(&y.1).then(y.0.cmp(&x.0)))
                .map(|(a, _)| a)
        })
        .collect()
}

/// Converts a DP value function into a Q-table (`Q(s,a) = r + γV(s')`),
/// so DP solutions can drive the same rollout machinery as the learners.
pub fn q_from_values(mdp: &ExplicitMdp, values: &[f64]) -> QTable {
    let mut q = QTable::zeros(mdp.n_states(), mdp.n_actions());
    for s in 0..mdp.n_states() {
        for (a, t) in mdp.transitions[s].iter().enumerate() {
            if let Some((sn, r)) = t {
                q.set(s, a, r + mdp.gamma * values[*sn]);
            }
        }
    }
    q
}

/// Builds the explicit MDP of a [`crate::env::ChainEnv`]-shaped chain:
/// states `0..n`, right = action 0 (+1, reward 1), left = action 1
/// (−1, reward −1), terminal at `n-1`.
pub fn chain_mdp(n: usize, gamma: f64) -> ExplicitMdp {
    let transitions = (0..n)
        .map(|s| {
            if s == n - 1 {
                vec![None, None]
            } else {
                let right = Some((s + 1, 1.0));
                let left = if s > 0 { Some((s - 1, -1.0)) } else { None };
                vec![right, left]
            }
        })
        .collect();
    ExplicitMdp { transitions, gamma }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_mdp_validates() {
        chain_mdp(6, 0.9).validate().unwrap();
        let mut bad = chain_mdp(3, 0.9);
        bad.gamma = 1.5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn value_iteration_solves_chain() {
        let mdp = chain_mdp(6, 0.9);
        let sol = value_iteration(&mdp, 1e-9, 1000);
        // Optimal: always go right (action 0).
        for s in 0..5 {
            assert_eq!(sol.policy[s], Some(0), "state {s}");
        }
        assert_eq!(sol.policy[5], None);
        // V(s) = Σ_{k<5-s} γ^k.
        let expect: f64 = (0..5).map(|k| 0.9f64.powi(k)).sum();
        assert!((sol.values[0] - expect).abs() < 1e-6, "{}", sol.values[0]);
    }

    #[test]
    fn policy_iteration_matches_value_iteration() {
        let mdp = chain_mdp(8, 0.95);
        let vi = value_iteration(&mdp, 1e-10, 10_000);
        let pi = policy_iteration(&mdp, 1e-10, 10_000);
        assert_eq!(vi.policy, pi.policy);
        for (a, b) in vi.values.iter().zip(&pi.values) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn policy_iteration_converges_in_fewer_sweeps() {
        // The paper's [22] claim, checkable here: PI's outer loop needs
        // far fewer iterations than VI's sweeps on the same MDP.
        let mdp = chain_mdp(20, 0.99);
        let vi = value_iteration(&mdp, 1e-10, 100_000);
        let pi = policy_iteration(&mdp, 1e-10, 100_000);
        assert!(
            pi.iterations < vi.iterations,
            "PI {} sweeps vs VI {}",
            pi.iterations,
            vi.iterations
        );
    }

    #[test]
    fn q_from_values_greedy_matches_policy() {
        let mdp = chain_mdp(6, 0.9);
        let sol = value_iteration(&mdp, 1e-9, 1000);
        let q = q_from_values(&mdp, &sol.values);
        for s in 0..5 {
            let legal: Vec<usize> = mdp.transitions[s]
                .iter()
                .enumerate()
                .filter_map(|(a, t)| t.map(|_| a))
                .collect();
            assert_eq!(q.best_action(s, &legal), sol.policy[s]);
        }
    }

    #[test]
    fn dp_agrees_with_sarsa_on_chain() {
        // The §III-C comparison in miniature: DP (planning with a model)
        // and SARSA (model-free) find the same greedy policy.
        use crate::env::ChainEnv;
        use crate::policy::EpsilonGreedy;
        use crate::sarsa::{SarsaAgent, SarsaConfig};
        use crate::schedule::Schedule;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mdp = chain_mdp(6, 0.9);
        let dp = value_iteration(&mdp, 1e-9, 1000);

        let mut env = ChainEnv::new(6, 5);
        let mut agent = SarsaAgent::new(
            &env,
            SarsaConfig {
                alpha: Schedule::Constant(0.5),
                gamma: 0.9,
                episodes: 800,
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        agent.train(&mut env, &EpsilonGreedy::new(0.2), &mut rng, |_, _| 0);
        // SARSA's action space is target states; DP's is {right, left}.
        for s in 1..5usize {
            let sarsa_right = agent.q.get(s, s + 1) > agent.q.get(s, s - 1);
            assert_eq!(sarsa_right, dp.policy[s] == Some(0), "state {s}");
        }
    }
}
