//! Mid-training snapshots.
//!
//! A [`TrainCheckpoint`] captures everything a deterministic training
//! loop needs to continue exactly where it stopped: the Q-table, the
//! episode counter, the exploration-schedule position, the [`TrainRng`]
//! state words, the visit counts some learners use for tie-breaking,
//! and the per-episode returns accumulated so far. Restoring all of it
//! makes an interrupted-and-resumed run bit-identical to an
//! uninterrupted one — the property the persistence layer's resume
//! tests assert.
//!
//! [`TrainRng`]: crate::rng::TrainRng

use crate::qtable::QTable;
use crate::stats::TrainStats;
use crate::visits::VisitTable;

/// A resumable snapshot of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// The Q-table at the snapshot point.
    pub q: QTable,
    /// Episodes completed so far (training resumes at this index).
    pub episode: u64,
    /// Position in the exploration schedule. Current learners keep this
    /// equal to `episode`, but it is stored separately so a future
    /// step-based schedule can checkpoint its own clock.
    pub sched_pos: u64,
    /// The four xoshiro256** state words of the training RNG.
    pub rng_state: [u64; 4],
    /// State-action visit counts ([`VisitTable::empty`] when the
    /// learner keeps none). Sparse at city scale, mirroring the Q-table.
    pub visits: VisitTable,
    /// Per-episode returns accumulated so far.
    pub returns: Vec<f64>,
}

impl TrainCheckpoint {
    /// Rebuilds the return statistics accumulated up to the snapshot.
    pub fn stats(&self) -> TrainStats {
        let mut stats = TrainStats::with_capacity(self.returns.len());
        for &r in &self.returns {
            stats.push(r);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_rebuilds_returns() {
        let ckpt = TrainCheckpoint {
            q: QTable::square(2),
            episode: 3,
            sched_pos: 3,
            rng_state: [1, 2, 3, 4],
            visits: VisitTable::empty(),
            returns: vec![1.0, 2.0, 3.0],
        };
        let stats = ckpt.stats();
        assert_eq!(stats.episodes(), 3);
        assert_eq!(stats.returns(), &[1.0, 2.0, 3.0]);
    }
}
