//! Action selection during learning.

use crate::qtable::QTable;
use rand::Rng;

/// Selects one action from the valid set, given the current Q-table.
pub trait ActionSelector {
    /// Picks an action index from `allowed` (non-empty) for state `s`.
    fn select<R: Rng + ?Sized>(
        &self,
        q: &QTable,
        s: usize,
        allowed: &[usize],
        rng: &mut R,
    ) -> usize;
}

/// Pure exploitation: `argmax_a Q(s, a)` with deterministic low-index
/// tie-breaking.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySelector;

impl ActionSelector for GreedySelector {
    fn select<R: Rng + ?Sized>(
        &self,
        q: &QTable,
        s: usize,
        allowed: &[usize],
        _rng: &mut R,
    ) -> usize {
        q.best_action(s, allowed)
            .expect("select requires a non-empty action set")
    }
}

/// ε-greedy: explore uniformly with probability `epsilon`, otherwise
/// exploit.
#[derive(Debug, Clone, Copy)]
pub struct EpsilonGreedy {
    /// Exploration probability in `[0, 1]`.
    pub epsilon: f64,
}

impl EpsilonGreedy {
    /// Creates an ε-greedy selector; `epsilon` is clamped into `[0, 1]`.
    pub fn new(epsilon: f64) -> Self {
        EpsilonGreedy {
            epsilon: epsilon.clamp(0.0, 1.0),
        }
    }
}

impl ActionSelector for EpsilonGreedy {
    fn select<R: Rng + ?Sized>(
        &self,
        q: &QTable,
        s: usize,
        allowed: &[usize],
        rng: &mut R,
    ) -> usize {
        assert!(
            !allowed.is_empty(),
            "select requires a non-empty action set"
        );
        if rng.random::<f64>() < self.epsilon {
            allowed[rng.random_range(0..allowed.len())]
        } else {
            q.best_action(s, allowed).expect("allowed is non-empty")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_picks_argmax() {
        let mut q = QTable::square(3);
        q.set(0, 2, 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(GreedySelector.select(&q, 0, &[1, 2], &mut rng), 2);
    }

    #[test]
    fn epsilon_zero_is_greedy() {
        let mut q = QTable::square(3);
        q.set(0, 1, 5.0);
        let sel = EpsilonGreedy::new(0.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(sel.select(&q, 0, &[1, 2], &mut rng), 1);
        }
    }

    #[test]
    fn epsilon_one_explores_all_actions() {
        let q = QTable::square(4);
        let sel = EpsilonGreedy::new(1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(sel.select(&q, 0, &[1, 2, 3], &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn epsilon_clamped() {
        assert_eq!(EpsilonGreedy::new(3.0).epsilon, 1.0);
        assert_eq!(EpsilonGreedy::new(-1.0).epsilon, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_action_set_panics() {
        let q = QTable::square(2);
        let mut rng = StdRng::seed_from_u64(0);
        EpsilonGreedy::new(0.5).select(&q, 0, &[], &mut rng);
    }
}
