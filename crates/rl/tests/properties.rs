//! Property tests for the RL substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpp_rl::env::ChainEnv;
use tpp_rl::{
    greedy_rollout, transfer_q, EpsilonGreedy, QTable, SarsaAgent, SarsaConfig, Schedule,
    StateMapping,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Q values stay bounded by the geometric series of the maximum
    /// absolute reward: |Q| ≤ r_max / (1 − γ).
    #[test]
    fn q_values_bounded(
        alpha in 0.05f64..1.0,
        gamma in 0.0f64..0.99,
        episodes in 1usize..300,
        seed in 0u64..1000,
    ) {
        let mut env = ChainEnv::new(6, 5);
        let config = SarsaConfig {
            alpha: Schedule::Constant(alpha),
            gamma,
            episodes,
        };
        let mut agent = SarsaAgent::new(&env, config);
        let mut rng = StdRng::seed_from_u64(seed);
        agent.train(&mut env, &EpsilonGreedy::new(0.3), &mut rng, |_, _| 0);
        let bound = 1.0 / (1.0 - gamma) + 1e-9;
        prop_assert!(agent.q.max_abs() <= bound, "{} > {bound}", agent.q.max_abs());
    }

    /// Training is a pure function of the seed.
    #[test]
    fn training_deterministic(seed in 0u64..500) {
        let run = || {
            let mut env = ChainEnv::new(5, 4);
            let mut agent = SarsaAgent::new(&env, SarsaConfig {
                alpha: Schedule::Constant(0.5),
                gamma: 0.9,
                episodes: 50,
            });
            let mut rng = StdRng::seed_from_u64(seed);
            agent.train(&mut env, &EpsilonGreedy::new(0.3), &mut rng, |_, _| 0);
            agent.q
        };
        prop_assert_eq!(run(), run());
    }

    /// Identity transfer is the identity; composing a mapping with the
    /// zero table stays zero.
    #[test]
    fn transfer_identity_and_zero(vals in prop::collection::vec(-100.0f64..100.0, 9)) {
        let q = QTable::from_raw(3, 3, vals);
        prop_assert_eq!(transfer_q(&q, &StateMapping::identity(3)), q.clone());
        let zero = QTable::square(3);
        let m = StateMapping::new(vec![Some(2), Some(0), None]);
        prop_assert_eq!(transfer_q(&zero, &m).max_abs(), 0.0);
    }

    /// Transfer never invents mass: every target entry equals some
    /// source entry or zero.
    #[test]
    fn transfer_entries_come_from_source(
        vals in prop::collection::vec(-10.0f64..10.0, 16),
        map in prop::collection::vec(prop::option::of(0usize..4), 4),
    ) {
        let q = QTable::from_raw(4, 4, vals.clone());
        let t = transfer_q(&q, &StateMapping::new(map));
        for &v in t.values() {
            prop_assert!(
                v == 0.0 || vals.iter().any(|&x| (x - v).abs() < 1e-12),
                "entry {v} not in source"
            );
        }
    }

    /// Greedy rollouts terminate and never exceed horizon + 1 states.
    #[test]
    fn rollout_terminates(n in 2usize..12, horizon in 1usize..15, seed in 0u64..100) {
        let mut env = ChainEnv::new(n, horizon);
        let mut agent = SarsaAgent::new(&env, SarsaConfig {
            alpha: Schedule::Constant(0.5),
            gamma: 0.9,
            episodes: 30,
        });
        let mut rng = StdRng::seed_from_u64(seed);
        agent.train(&mut env, &EpsilonGreedy::new(0.5), &mut rng, |_, _| 0);
        let (seq, _) = greedy_rollout(&mut ChainEnv::new(n, horizon), &agent.q, 0);
        prop_assert!(!seq.is_empty());
        prop_assert!(seq.len() <= horizon + 1);
        for &s in &seq {
            prop_assert!(s < n);
        }
    }

    /// Schedules never leave their defining ranges.
    #[test]
    fn schedules_stay_in_range(ep in 0usize..10_000) {
        let lin = Schedule::Linear { from: 1.0, to: 0.1, over: 500 };
        let v = lin.at(ep);
        prop_assert!((0.1..=1.0).contains(&v));
        let exp = Schedule::Exponential { from: 0.8, rate: 0.99, min: 0.05 };
        let v = exp.at(ep);
        prop_assert!((0.05..=0.8).contains(&v));
    }

    /// Value iteration's fixed point satisfies the Bellman optimality
    /// equation on random-reward chains.
    #[test]
    fn value_iteration_bellman_consistent(
        rewards in prop::collection::vec(-5.0f64..5.0, 5),
        gamma in 0.1f64..0.95,
    ) {
        use tpp_rl::{value_iteration, ExplicitMdp};
        // A forward chain with arbitrary rewards; terminal at the end.
        let n = rewards.len() + 1;
        let transitions = (0..n)
            .map(|s| {
                if s + 1 < n {
                    vec![Some((s + 1, rewards[s]))]
                } else {
                    vec![None]
                }
            })
            .collect();
        let mdp = ExplicitMdp { transitions, gamma };
        let sol = value_iteration(&mdp, 1e-12, 100_000);
        for (s, reward) in rewards.iter().enumerate() {
            let backup = reward + gamma * sol.values[s + 1];
            prop_assert!((sol.values[s] - backup).abs() < 1e-6);
        }
        prop_assert_eq!(sol.values[n - 1], 0.0);
    }
}
