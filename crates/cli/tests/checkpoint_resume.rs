//! Kill-and-resume integration tests: drive the `rl-planner` binary
//! through a checkpointed training run, "kill" it mid-flight with the
//! deterministic fault injector (`--fault-ops`), resume, and require the
//! final policy to be byte-identical to an uninterrupted run's.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rl-planner"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rl-planner-ckpt-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `train --checkpoint-dir` on the fast univ2 dataset (100 episodes).
fn train(dir: &Path, out: &str, extra: &[&str]) -> std::process::Output {
    let ckpt = dir.join("ckpt");
    bin()
        .args([
            "train",
            "--dataset",
            "univ2",
            "--seed",
            "9",
            "--out",
            dir.join(out).to_str().unwrap(),
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "20",
        ])
        .args(extra)
        .output()
        .expect("spawn rl-planner")
}

#[test]
fn killed_and_resumed_training_is_byte_identical() {
    let dir = tmp_dir("identical");

    // Uninterrupted reference run (separate checkpoint dir).
    let full_dir = tmp_dir("identical-full");
    let out = train(&full_dir, "full.qpol", &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // "Kill" the run at mutating filesystem op 12 — inside the second
    // checkpoint generation's write — then resume from what survived.
    let out = train(&dir, "crashed.qpol", &["--fault-ops", "12"]);
    assert!(!out.status.success(), "the injected crash must be fatal");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checkpoint failed"), "{stderr}");
    assert!(
        !dir.join("crashed.qpol").exists(),
        "a crashed run must not publish a final policy"
    );

    let out = train(&dir, "resumed.qpol", &["--resume"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("resuming from"), "{stderr}");

    let full = std::fs::read(full_dir.join("full.qpol")).unwrap();
    let resumed = std::fs::read(dir.join("resumed.qpol")).unwrap();
    assert_eq!(
        full, resumed,
        "interrupted+resumed policy differs from the uninterrupted one"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&full_dir).ok();
}

#[test]
fn recommend_falls_back_past_a_corrupt_newest_generation() {
    let dir = tmp_dir("fallback");
    let out = train(&dir, "p.qpol", &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Corrupt the newest generation in place (bit-rot, not truncation).
    let ckpt = dir.join("ckpt");
    let mut gens: Vec<PathBuf> = std::fs::read_dir(&ckpt)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "qpol"))
        .collect();
    gens.sort();
    assert!(gens.len() >= 2, "expected several generations: {gens:?}");
    let newest = gens.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(newest, &bytes).unwrap();

    let out = bin()
        .args([
            "recommend",
            "--dataset",
            "univ2",
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn rl-planner");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("plan:"),
        "fallback generation must still produce a plan"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recommend_with_empty_checkpoint_dir_is_a_clean_error() {
    let dir = tmp_dir("empty");
    let out = bin()
        .args([
            "recommend",
            "--dataset",
            "univ2",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn rl-planner");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no checkpoints"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_dataset_error_lists_valid_names() {
    let out = bin()
        .args(["plan", "--dataset", "univ3"])
        .output()
        .expect("spawn rl-planner");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown dataset"), "{stderr}");
    assert!(
        stderr.contains("ds-ct") && stderr.contains("paris"),
        "must list the valid datasets: {stderr}"
    );
}

#[test]
fn unknown_start_code_suggests_nearest_matches() {
    let out = bin()
        .args(["gold", "--dataset", "ds-ct", "--start", "CS 676"])
        .output()
        .expect("spawn rl-planner");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown item code"), "{stderr}");
    assert!(
        stderr.contains("nearest matches") && stderr.contains("CS 675"),
        "must suggest the near-miss code: {stderr}"
    );
}

#[test]
fn resume_without_checkpoint_dir_is_rejected() {
    let out = bin()
        .args([
            "train",
            "--dataset",
            "univ2",
            "--out",
            "/dev/null",
            "--resume",
        ])
        .output()
        .expect("spawn rl-planner");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume requires --checkpoint-dir"),
        "{stderr}"
    );
}
