//! End-to-end smoke for `rl-planner bench --load`: the real binary
//! hosts a TCP daemon in-process, storms it open-loop with mixed
//! traffic under chaos, and must exit 0 with a report proving the
//! serving invariants (zero connections closed without a terminal
//! response; daemon still accepting after the storm).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rl-planner"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rl-planner-load-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn load_bench_under_chaos_holds_the_serving_invariants() {
    let dir = temp_dir("chaos");
    let out = dir.join("BENCH_load.json");
    let output = bin()
        .args([
            "bench",
            "--load",
            "--rate",
            "80",
            "--duration-s",
            "2",
            "--episodes",
            "30",
            "--deadline-ms",
            "250",
            "--workers",
            "4",
            "--capacity",
            "64",
            "--chaos",
            "panic@5,stall@9:80,flaky@13,corrupt@17",
            "--profile",
            "hot=70,cold=15,malformed=10,slow=5",
            "--seed",
            "7",
            "-q",
        ])
        .arg("--out")
        .arg(&out)
        .output()
        .expect("run bench --load");
    assert!(
        output.status.success(),
        "bench --load failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let report = std::fs::read_to_string(&out).expect("report written");
    let v = tpp_obs::json::parse(report.trim()).expect("report parses");
    let num = |key: &str| -> f64 {
        v.get(key)
            .and_then(tpp_obs::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(num("closed_without_response"), 0.0, "report: {report}");
    assert_eq!(
        v.get("post_health_accepting"),
        Some(&tpp_obs::json::Json::Bool(true)),
        "report: {report}"
    );
    assert!(num("sent") > 0.0, "report: {report}");
    assert_eq!(num("answered") + num("client_timeouts"), num("sent"));
    assert!(
        num("bad_request") > 0.0,
        "malformed traffic must be rejected"
    );
    assert!(
        v.get("latency_ms").is_some() && v.get("server").is_some(),
        "report: {report}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_heavy_storm_forms_batches_and_amortizes_policy_resolutions() {
    let dir = temp_dir("batching");
    let out = dir.join("BENCH_load.json");
    // 92% of the traffic shares one policy key (the hot-heavy preset),
    // so with two workers and a short linger the dequeue path must form
    // real batches. --require-batching makes the binary itself exit 1
    // unless batches formed AND resolutions were actually amortized.
    let output = bin()
        .args([
            "bench",
            "--load",
            "--rate",
            "150",
            "--duration-s",
            "2",
            "--episodes",
            "100",
            "--deadline-ms",
            "500",
            "--workers",
            "2",
            "--capacity",
            "128",
            "--profile",
            "hot-heavy",
            "--batch-wait-us",
            "2000",
            "--seed",
            "7",
            "--require-batching",
            "-q",
        ])
        .arg("--out")
        .arg(&out)
        .output()
        .expect("run bench --load");
    assert!(
        output.status.success(),
        "batching bench --load failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let report = std::fs::read_to_string(&out).expect("report written");
    let v = tpp_obs::json::parse(report.trim()).expect("report parses");
    let num = |key: &str| -> f64 {
        v.get(key)
            .and_then(tpp_obs::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(num("closed_without_response"), 0.0, "report: {report}");
    assert_eq!(
        v.get("post_health_accepting"),
        Some(&tpp_obs::json::Json::Bool(true)),
        "report: {report}"
    );
    let b = v.get("batching").expect("batching object in report");
    let bn = |key: &str| -> f64 {
        b.get(key)
            .and_then(tpp_obs::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert!(bn("batches_formed") >= 1.0, "report: {report}");
    assert!(bn("amortized_loads") >= 1.0, "report: {report}");
    assert!(
        bn("batch_members") > bn("batches_formed"),
        "a batch has at least two members: {report}"
    );
    assert!(bn("batched_p99_ms") > 0.0, "report: {report}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_killing_storm_respawns_recovers_the_breaker_and_stays_available() {
    let dir = temp_dir("self-heal");
    let out = dir.join("BENCH_load.json");
    let flights = dir.join("flights");
    // kill@5/kill@25 take workers down mid-storm (the supervisor must
    // respawn them); flaky@40:25 is a consecutive transient-failure
    // burst long enough to trip the store breaker through the mixed
    // traffic. The --require flags make the binary itself fail unless
    // the pool respawned and the breaker tripped open *and* closed
    // again before the drain.
    let output = bin()
        .args([
            "bench",
            "--load",
            "--rate",
            "60",
            "--duration-s",
            "2",
            "--episodes",
            "10",
            "--deadline-ms",
            "100",
            "--workers",
            "4",
            "--capacity",
            "64",
            "--chaos",
            "kill@5,kill@25,wedge@15:300,flaky@40:25",
            "--profile",
            "hot=30,cold=10,recommend=40,malformed=10,slow=10",
            "--seed",
            "11",
            "--require-restarts",
            "--require-breaker-recovered",
            "-q",
        ])
        .arg("--flight-dir")
        .arg(&flights)
        .arg("--out")
        .arg(&out)
        .output()
        .expect("run bench --load");
    assert!(
        output.status.success(),
        "self-healing bench --load failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let report = std::fs::read_to_string(&out).expect("report written");
    let v = tpp_obs::json::parse(report.trim()).expect("report parses");
    let num = |key: &str| -> f64 {
        v.get(key)
            .and_then(tpp_obs::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(num("closed_without_response"), 0.0, "report: {report}");
    assert_eq!(
        v.get("post_health_accepting"),
        Some(&tpp_obs::json::Json::Bool(true)),
        "a daemon that lost workers mid-storm must still be accepting: {report}"
    );
    let sh = v.get("self_healing").expect("self_healing in report");
    let shn = |key: &str| -> f64 {
        sh.get(key)
            .and_then(tpp_obs::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert!(shn("worker_restarts") >= 1.0, "report: {report}");
    assert!(shn("worker_deaths") >= 1.0, "report: {report}");
    assert!(shn("breaker_opens") >= 1.0, "report: {report}");
    assert_eq!(
        sh.get("breaker_state")
            .and_then(tpp_obs::json::Json::as_str),
        Some("closed"),
        "the breaker must have recovered before the drain: {report}"
    );
    // Worker deaths dump the flight recorder: the post-mortems the
    // chaos-supervision CI job uploads as artifacts must exist.
    let dumps = std::fs::read_dir(&flights).map(|d| d.count()).unwrap_or(0);
    assert!(
        dumps >= 1,
        "worker deaths must leave flight-recorder post-mortems in {flights:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
