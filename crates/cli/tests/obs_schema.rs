//! Metrics/trace schema smoke at the process boundary: run the real
//! `rl-planner serve` binary with `--trace`, then assert every emitted
//! JSONL line parses, every serve-path event carries a `trace_id`
//! (including the ones emitted inside `catch_unwind` panic recovery),
//! each request keeps exactly one trace id, and the `--metrics`
//! snapshot re-renders as Prometheus text through `rl-planner obs`.
//! CI runs this suite as its metrics-schema gate.

use std::collections::BTreeMap;
use std::io::Write;
use std::process::{Command, Stdio};
use tpp_obs::json::{parse, Json};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rl-planner"))
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rl-planner-obs-{}-{name}", std::process::id()))
}

/// Serve-path event prefixes that always run under a request context
/// and therefore must be traced. (Session-scoped events such as
/// `serve.session_done` and `serve.listening` are deliberately not
/// request-scoped.)
const REQUEST_SCOPED: &[&str] = &[
    "serve.request",
    "serve.job",
    "serve.dequeued",
    "serve.answered",
    "serve.cache",
    "serve.retry",
    "serve.tier_failed",
    "serve.panic_isolated",
    "serve.chaos_stall",
    "serve.policy_loaded",
    "serve.shed",
    "serve.slow_request",
    "budget.expired",
];

#[test]
fn traced_daemon_run_emits_parseable_fully_traced_jsonl() {
    let trace_path = temp("trace.jsonl");
    let metrics_path = temp("metrics.json");
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);

    let mut child = bin()
        .args([
            "serve",
            "--workers",
            "2",
            "--chaos",
            "panic@2,stall@5:40",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
            "--quiet",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");

    let mut input = String::new();
    for i in 1..=12 {
        let line = match i % 4 {
            0 => r#"{"op":"stats","id":"ID"}"#,
            1 => r#"{"op":"recommend","dataset":"ds-ct","id":"ID"}"#,
            2 => r#"{"op":"plan","dataset":"ds-ct","episodes":15,"id":"ID"}"#,
            _ => r#"{"op":"health","id":"ID"}"#,
        };
        input.push_str(&line.replace("ID", &format!("q{i}")));
        input.push('\n');
    }
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon did not exit");
    assert!(
        out.status.success(),
        "daemon died: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count(),
        12
    );

    // Every trace line parses; every request-scoped serve event carries
    // the trace triplet with well-formed 16-hex ids.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(!text.is_empty(), "trace file must not be empty");
    let mut request_scoped = 0u32;
    let mut panic_recovery_traced = false;
    for line in text.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("invalid JSONL {line:?}: {e}"));
        for key in ["t_us", "level", "event", "fields"] {
            assert!(v.get(key).is_some(), "line lacks {key:?}: {line}");
        }
        let event = v.get("event").and_then(Json::as_str).unwrap();
        if !REQUEST_SCOPED.iter().any(|p| event.starts_with(p)) {
            continue;
        }
        request_scoped += 1;
        let fields = v.get("fields").unwrap();
        let trace_id = fields
            .get("trace_id")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("untraced serve event: {line}"));
        let span_id = fields
            .get("span_id")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("serve event without span_id: {line}"));
        for id in [trace_id, span_id] {
            assert!(
                id.len() == 16 && tpp_obs::trace::parse_hex(id).is_some(),
                "malformed id {id:?} in {line}"
            );
        }
        if event == "serve.panic_isolated" {
            panic_recovery_traced = true;
        }
    }
    assert!(request_scoped > 12, "expected traced serve events");
    assert!(
        panic_recovery_traced,
        "the injected panic's recovery events must carry a trace id"
    );

    // One trace id per request: every event that carries a request id's
    // span also belongs to exactly one trace — check via serve.job roots
    // (one per transported request, each with a distinct trace id).
    let mut job_traces: BTreeMap<String, u32> = BTreeMap::new();
    for line in text.lines() {
        let v = parse(line).unwrap();
        if v.get("event").and_then(Json::as_str) == Some("serve.job") {
            let t = v
                .get("fields")
                .and_then(|f| f.get("trace_id"))
                .and_then(Json::as_str)
                .unwrap()
                .to_owned();
            *job_traces.entry(t).or_insert(0) += 1;
        }
    }
    assert_eq!(job_traces.len(), 12, "one distinct trace per request");
    assert!(
        job_traces.values().all(|&n| n == 1),
        "a request must close its root span exactly once: {job_traces:?}"
    );

    // The span forest reconstructs: one complete tree per request.
    let trees = tpp_obs::trace::reconstruct_jsonl(text.lines());
    assert_eq!(trees.len(), 12);
    assert!(
        trees
            .iter()
            .all(|t| t.roots.iter().any(|r| r.name == "serve.job")),
        "every trace has its transport root span"
    );

    // The metrics snapshot re-renders as Prometheus text via `obs`.
    let obs = bin()
        .args(["obs", "metrics", metrics_path.to_str().unwrap()])
        .output()
        .expect("run obs metrics");
    assert!(obs.status.success());
    let prom = String::from_utf8(obs.stdout).unwrap();
    for series in [
        "serve_requests",
        "serve_queue_wait_us_bucket",
        "serve_op_plan_us_count",
    ] {
        assert!(
            prom.contains(series),
            "obs metrics output lacks {series}: {prom}"
        );
    }

    // And the trace file re-renders as span trees via `obs trace`.
    let obs_trace = bin()
        .args(["obs", "trace", trace_path.to_str().unwrap()])
        .output()
        .expect("run obs trace");
    assert!(obs_trace.status.success());
    let rendered = String::from_utf8(obs_trace.stdout).unwrap();
    assert!(rendered.contains("serve.request"), "{rendered}");

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);
}

#[test]
fn self_healing_fields_appear_in_stats_health_and_prometheus() {
    let metrics_path = temp("heal-metrics.json");
    let _ = std::fs::remove_file(&metrics_path);

    let mut child = bin()
        .args([
            "serve",
            "--workers",
            "2",
            "--metrics",
            metrics_path.to_str().unwrap(),
            "--quiet",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");

    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"{\"op\":\"health\",\"id\":\"h\"}\n{\"op\":\"stats\",\"id\":\"s\"}\n")
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon did not exit");
    assert!(
        out.status.success(),
        "daemon died: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let responses: BTreeMap<&str, Json> = stdout
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let v = parse(l).unwrap_or_else(|e| panic!("invalid response {l:?}: {e}"));
            let id = v.get("id").and_then(Json::as_str).unwrap().to_owned();
            (
                match id.as_str() {
                    "h" => "health",
                    _ => "stats",
                },
                v,
            )
        })
        .collect();

    // `health` reports pool liveness and breaker state alongside the
    // readiness bit.
    let health = &responses["health"];
    assert_eq!(health.get("accepting"), Some(&Json::Bool(true)));
    assert_eq!(
        health.get("workers_alive").and_then(Json::as_f64),
        Some(2.0)
    );
    assert_eq!(health.get("breaker").and_then(Json::as_str), Some("closed"));
    assert_eq!(
        health.get("quarantine_size").and_then(Json::as_f64),
        Some(0.0)
    );

    // `stats` carries the full supervisor/breaker/quarantine census.
    let stats = &responses["stats"];
    for (key, want) in [
        ("workers_configured", 2.0),
        ("workers_alive", 2.0),
        ("worker_restarts", 0.0),
        ("worker_deaths", 0.0),
        ("worker_wedged", 0.0),
        ("worker_rescued", 0.0),
        ("lock_recovered", 0.0),
        ("breaker_opens", 0.0),
        ("breaker_closes", 0.0),
        ("breaker_fast_fails", 0.0),
        ("quarantine_size", 0.0),
        ("quarantine_added", 0.0),
        ("quarantine_served", 0.0),
    ] {
        assert_eq!(
            stats.get(key).and_then(Json::as_f64),
            Some(want),
            "stats field {key:?} in {stats:?}"
        );
    }
    assert_eq!(
        stats.get("breaker_state").and_then(Json::as_str),
        Some("closed"),
        "{stats:?}"
    );

    // The gauges exist in the Prometheus exposition even before any
    // incident, so dashboards can alert on them from the first scrape.
    let obs = bin()
        .args(["obs", "metrics", metrics_path.to_str().unwrap()])
        .output()
        .expect("run obs metrics");
    assert!(obs.status.success());
    let prom = String::from_utf8(obs.stdout).unwrap();
    for series in [
        "serve_workers_alive",
        "serve_breaker_state",
        "serve_quarantine_size",
    ] {
        assert!(
            prom.contains(series),
            "obs metrics output lacks {series}: {prom}"
        );
    }

    let _ = std::fs::remove_file(&metrics_path);
}
