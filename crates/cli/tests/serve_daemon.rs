//! End-to-end daemon chaos smoke: drive the real `rl-planner serve`
//! process with hundreds of requests and injected faults, and assert
//! the availability contract holds at the process boundary — exit 0,
//! one response per request, no unanswered ids, honest degraded tags.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rl-planner"))
}

/// Builds an NDJSON request stream of `n` mixed requests with ids
/// `q1..qn`.
fn request_stream(n: usize) -> String {
    let mut input = String::new();
    for i in 1..=n {
        let line = match i % 5 {
            0 => r#"{"op":"stats","id":"ID"}"#,
            1 => r#"{"op":"health","id":"ID"}"#,
            2 => r#"{"op":"recommend","dataset":"ds-ct","id":"ID"}"#,
            3 => r#"{"op":"plan","dataset":"ds-ct","episodes":10,"deadline_ms":500,"id":"ID"}"#,
            _ => r#"{"op":"recommend","dataset":"nyc","id":"ID"}"#,
        };
        input.push_str(&line.replace("ID", &format!("q{i}")));
        input.push('\n');
    }
    input
}

#[test]
fn two_hundred_requests_with_fault_injection_all_answered() {
    const N: usize = 200;
    let mut child = bin()
        .args([
            "serve",
            "--workers",
            "4",
            "--capacity",
            "256",
            "--chaos",
            // Panics, stalls and (no-op without a checkpoint dir, but
            // still exercised) corruption sprinkled across the run.
            // All three panic ordinals hit planning requests (i%5 in
            // {2,3}), so each recovery is visible as a `fallbacks` tag.
            "panic@3,panic@77,panic@152,stall@10:50,stall@120:50,corrupt@55",
            // Chaos ordinals are keyed to dequeue order; batching pulls
            // same-key requests ahead of earlier arrivals, which would
            // re-map which request each fault hits. Run unbatched so
            // the panic ordinals stay pinned to the lines above.
            "--batch-max",
            "1",
            "--quiet",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");

    let input = request_stream(N);
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    // Dropping stdin closes it; the daemon drains the queue and exits.
    let out = child.wait_with_output().expect("daemon did not exit");

    // The process must survive every fault and exit cleanly.
    assert!(
        out.status.success(),
        "daemon died: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8(out.stdout).unwrap();
    let responses: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(responses.len(), N, "every request must be answered");

    // Every response parses as JSON and every id comes back exactly once.
    let mut ids = Vec::with_capacity(N);
    let mut isolated_panics = 0;
    for line in &responses {
        let v = tpp_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("invalid response json {line:?}: {e}"));
        let id = v
            .get("id")
            .and_then(|i| i.as_str())
            .unwrap_or_else(|| panic!("response without id: {line}"));
        ids.push(id.to_owned());
        if let Some(tpp_obs::json::Json::Arr(fallbacks)) = v.get("fallbacks") {
            if fallbacks
                .iter()
                .any(|f| f.as_str().is_some_and(|s| s.contains("panicked")))
            {
                isolated_panics += 1;
            }
        }
    }
    ids.sort();
    let mut expected: Vec<String> = (1..=N).map(|i| format!("q{i}")).collect();
    expected.sort();
    assert_eq!(ids, expected, "no unanswered or duplicated ids");

    // All three injected panics were isolated and answered degraded.
    assert_eq!(isolated_panics, 3, "stdout: {stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("3 panic(s) isolated"),
        "exit summary should count isolated panics: {stderr}"
    );
}

#[test]
fn max_requests_bounds_a_smoke_session() {
    let mut child = bin()
        .args(["serve", "--max-requests", "3", "--quiet"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(request_stream(10).as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon did not exit");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().filter(|l| !l.trim().is_empty()).count(), 3);
}

#[test]
fn serve_answers_over_a_unix_socket() {
    use std::io::{BufRead, BufReader};
    let socket =
        std::env::temp_dir().join(format!("rl-planner-daemon-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut child = bin()
        .args(["serve", "--socket", socket.to_str().unwrap(), "--quiet"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");

    let mut stream = None;
    for _ in 0..200 {
        if let Ok(s) = std::os::unix::net::UnixStream::connect(&socket) {
            stream = Some(s);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let mut stream = stream.expect("daemon socket never came up");
    stream
        .write_all(b"{\"op\":\"health\",\"id\":\"sock1\"}\n")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    BufReader::new(&stream).read_line(&mut response).unwrap();
    let v = tpp_obs::json::parse(response.trim()).unwrap();
    assert_eq!(v.get("ok"), Some(&tpp_obs::json::Json::Bool(true)));
    assert_eq!(v.get("id").unwrap().as_str(), Some("sock1"));

    // The daemon listens forever; the test is done with it.
    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_file(&socket);
}
