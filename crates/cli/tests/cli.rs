//! CLI smoke tests: drive the `rl-planner` binary end to end.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rl-planner"))
}

#[test]
fn list_prints_experiments_and_datasets() {
    let out = bin().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for id in ["fig1", "table9", "table16", "fig2"] {
        assert!(stdout.contains(id), "missing {id} in: {stdout}");
    }
    assert!(stdout.contains("ds-ct"));
}

#[test]
fn plan_subcommand_produces_a_plan() {
    let out = bin()
        .args([
            "plan",
            "--dataset",
            "ds-ct",
            "--episodes",
            "60",
            "--seed",
            "1",
        ])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Exit 0 = clean plan, exit 2 = plan emitted but violates a hard
    // constraint; both mean the planner itself worked, and the code
    // must agree with what stdout reports.
    let code = out.status.code().expect("no exit code");
    assert!(
        code == 0 || code == 2,
        "exit {code}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        code == 2,
        stdout.contains("violation:"),
        "exit code must match stdout: exit {code}, stdout: {stdout}"
    );
    assert!(stdout.contains("plan:"), "{stdout}");
    assert!(stdout.contains("score:"), "{stdout}");
    assert!(
        stdout.contains("CS 675"),
        "starts from the default start: {stdout}"
    );
}

#[test]
fn help_documents_the_exit_code_table() {
    let out = bin().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("exit codes:"), "{stdout}");
    assert!(stdout.contains("violates a hard constraint"), "{stdout}");
    assert!(stdout.contains("serve"), "{stdout}");
}

#[test]
fn train_with_zero_second_budget_still_saves_a_policy() {
    let dir = std::env::temp_dir().join(format!("rl-planner-cli-budget-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let policy = dir.join("budget.qpol");
    let out = bin()
        .args([
            "train",
            "--dataset",
            "ds-ct",
            "--episodes",
            "5000",
            "--max-seconds",
            "0",
            "--out",
            policy.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The budget stopped training immediately, but the run still
    // completed and persisted what it had.
    assert!(policy.exists());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("trained 0 episodes"), "{stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("training budget expired"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_then_recommend_via_policy_file() {
    let dir = std::env::temp_dir().join(format!("rl-planner-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let policy = dir.join("p.qpol");
    let out = bin()
        .args([
            "train",
            "--dataset",
            "nyc",
            "--out",
            policy.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(policy.exists());

    let out = bin()
        .args([
            "recommend",
            "--dataset",
            "nyc",
            "--policy",
            policy.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("score:"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn datagen_writes_dataset_json() {
    let dir = std::env::temp_dir().join(format!("rl-planner-cli-dg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("univ2.json");
    let out = bin()
        .args([
            "datagen",
            "--dataset",
            "univ2",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let data = std::fs::read_to_string(&file).unwrap();
    assert!(data.contains("STATS 263"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_arguments_fail_with_usage() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = bin()
        .args(["plan", "--dataset", "nope"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());

    let out = bin().args(["exp", "table99"]).output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn gold_subcommand_prints_perfect_course_plan() {
    let out = bin()
        .args(["gold", "--dataset", "ds-ct"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("score:     10"), "{stdout}");
}

#[test]
fn compare_subcommand_lists_all_methods() {
    let out = bin()
        .args(["compare", "--dataset", "univ2", "--runs", "2"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    for m in ["RL-Planner", "EDA", "OMEGA", "Gold"] {
        assert!(stdout.contains(m), "missing {m}: {stdout}");
    }
}
