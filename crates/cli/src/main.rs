//! `rl-planner` — command-line driver for the RL-Planner reproduction.
//!
//! ```text
//! rl-planner list
//! rl-planner exp <id>|all [--csv DIR] [--md FILE]
//! rl-planner plan --dataset <name> [--start CODE] [--seed N] [--episodes N] [--min-sim]
//! rl-planner compare --dataset <name> [--runs N]
//! rl-planner gold --dataset <name> [--start CODE]
//! rl-planner train --dataset <name> --out policy.qpol [--seed N]
//!   [--checkpoint-dir DIR] [--checkpoint-every N] [--keep K] [--resume]
//! rl-planner recommend --dataset <name> (--policy policy.qpol | --checkpoint-dir DIR) [--start CODE]
//! rl-planner serve [--checkpoint-dir DIR] [--socket PATH] [--tcp HOST:PORT] [...]
//! rl-planner datagen --dataset <name> --out dataset.json
//! rl-planner bench [--dataset <name>] [--episodes N] [--seed N]
//!   [--max-q-bytes N] [--out BENCH_train.json]
//! rl-planner bench --load [--rate N] [--duration-s S] [--chaos SPEC] [...]
//! ```
//!
//! `bench` times full training runs (episodes/second) on each benchmark
//! dataset twice — once with the incremental hot-path engine, once with
//! the naive pre-incremental engine (`naive_hot_path`) — and writes the
//! comparison as JSON. Both engines are bit-identical in their outputs
//! (the golden equivalence suite pins this), so the speedup column is a
//! pure like-for-like measurement.
//!
//! With `--checkpoint-dir` the trainer persists a crash-safe snapshot
//! every N episodes (generational, keep-last-K, atomic writes) and
//! `--resume` continues from the newest valid one — bit-identical to a
//! run that never stopped. `recommend --checkpoint-dir` serves the
//! newest valid generation, falling back past corrupt ones.
//!
//! `serve` runs the long-lived planning daemon from `tpp-serve`:
//! newline-delimited JSON requests on stdin, a Unix socket, or TCP
//! (`--tcp`, with admission control, per-connection timeouts and
//! graceful drain on a `shutdown` request), one guaranteed response per
//! request, graceful degradation on faults. `bench --load` storms a
//! daemon open-loop with mixed hot/cold/malformed/slow-client traffic
//! and verifies nothing closes without a terminal response.
//!
//! Exit codes: `0` success, `1` usage or runtime error, `2` the
//! emitted plan violates a hard constraint (`plan` / `recommend`).
//!
//! Global observability flags, accepted anywhere on the command line:
//! `--trace FILE` (structured JSONL event log), `--metrics FILE|-`
//! (metrics registry as JSON, or text on stdout with `-`), `-v/--verbose`
//! (pretty per-episode events on stderr), `-q/--quiet` (suppress the
//! post-command metrics summary).
//!
//! Datasets: `ds-ct`, `cyber`, `cs`, `univ2`, `nyc`, `paris`.

use std::process::ExitCode;
use std::sync::Arc;
use tpp_core::{plan_violations, score_plan, PlannerParams, RlPlanner};
use tpp_model::PlanningInstance;
use tpp_obs::Level;

/// How a successful command run ends, mapped to the exit-code table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Everything satisfied: exit 0.
    Clean,
    /// The emitted plan violates a hard constraint: exit 2, so scripts
    /// can tell "planner ran but the plan is unusable" from "planner
    /// failed" (exit 1) without scraping stdout.
    HardViolation,
}

/// Exit code for plans that violate a hard constraint.
const EXIT_HARD_VIOLATION: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsOptions::extract(args) {
        Ok(v) => v,
        Err(msg) => return usage_error(&msg),
    };
    if let Err(msg) = obs.install() {
        return usage_error(&msg);
    }
    let result = run(&args, &obs);
    let finished = obs.finish();
    tpp_obs::flush();
    match (result, finished) {
        (Ok(Outcome::Clean), Ok(())) => ExitCode::SUCCESS,
        (Ok(Outcome::HardViolation), Ok(())) => ExitCode::from(EXIT_HARD_VIOLATION),
        (Err(msg), _) | (_, Err(msg)) => usage_error(&msg),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!();
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// Every dataset name `dataset()` accepts, for usage and error text.
const DATASETS: &str = tpp_serve::DATASET_NAMES;

const USAGE: &str = "usage:
  rl-planner list
  rl-planner exp <id>|all [--csv DIR] [--md FILE]
  rl-planner plan --dataset <name> [--start CODE] [--seed N] [--episodes N] [--min-sim]
  rl-planner compare --dataset <name> [--runs N]
  rl-planner gold --dataset <name> [--start CODE]
  rl-planner train --dataset <name> --out policy.qpol [--seed N] [--episodes N]
                   [--max-seconds S] [--checkpoint-dir DIR] [--checkpoint-every N]
                   [--keep K] [--resume]
  rl-planner recommend --dataset <name> (--policy policy.qpol | --checkpoint-dir DIR)
                       [--start CODE]
  rl-planner serve [--checkpoint-dir DIR] [--socket PATH] [--tcp HOST:PORT]
                   [--deadline-ms N] [--max-episodes N] [--capacity N] [--workers N]
                   [--max-requests N] [--chaos SPEC]
                   [--max-conns N] [--read-timeout-ms N] [--idle-timeout-ms N]
                   [--max-line-bytes N] [--accept-limit N]
                   [--cache-entries N] [--cache-mb N] [--no-cache]
                   [--flight-dir DIR] [--flight-events N] [--slow-ms N]
                   [--no-supervise] [--wedge-ms N] [--max-restarts N]
                   [--breaker-threshold N] [--breaker-cooldown-ms N]
                   [--quarantine-after N] [--quarantine-ttl-ms N]
                   [--batch-max N] [--batch-wait-us N]
  rl-planner obs metrics SNAPSHOT.json [--format prom|text|json]
  rl-planner obs trace TRACE.jsonl [--trace-id HEX]
  rl-planner datagen --dataset <name> --out dataset.json
  rl-planner bench [--dataset <name>] [--episodes N] [--seed N]
                   [--max-q-bytes N] [--out BENCH_train.json]
  rl-planner bench --serve [--dataset <name>] [--requests N] [--episodes N]
                   [--seed N] [--out BENCH_serve.json]
  rl-planner bench --load [--addr HOST:PORT] [--rate N] [--duration-s S]
                   [--profile hot=80,cold=10,recommend=0,malformed=5,slow=5]
                   [--chaos SPEC] [--flight-dir DIR]
                   [--dataset <name>] [--episodes N] [--deadline-ms N] [--seed N]
                   [--capacity N] [--workers N] [--max-conns N]
                   [--require-restarts] [--require-breaker-recovered]
                   [--batch-max N] [--batch-wait-us N]
                   [--compare-batching] [--require-batching]
                   [--out BENCH_load.json]
exit codes:
  0   success
  1   usage or runtime error
  2   the emitted plan violates a hard constraint (plan / recommend)
checkpointing (train):
  --checkpoint-dir DIR    write crash-safe generational checkpoints to DIR
  --checkpoint-every N    snapshot every N episodes (default 100, 0 = off)
  --keep K                retain the newest K generations (default 3)
  --resume                continue from the newest valid checkpoint in DIR
  --max-seconds S         wall-clock training budget (stops cleanly, saves what it has)
serving (serve):
  --checkpoint-dir DIR    serve `recommend` from the newest valid checkpoint in DIR
  --socket PATH           listen on a Unix socket instead of stdin/stdout
  --deadline-ms N         default per-request deadline budget
  --max-episodes N        cap per-request training episodes (default 2000)
  --capacity N            bounded request queue size; excess sheds `overloaded` (default 64)
  --workers N             worker threads (default 2)
  --max-requests N        exit after N requests (smoke tests)
  --chaos SPEC            inject faults, e.g. 'panic@3,stall@5:200,corrupt@7,flaky@9'
  --cache-entries N       policy cache entry bound (default 32)
  --cache-mb N            policy cache byte bound in MiB (default 64)
  --no-cache              disable the policy cache and single-flight coalescing
  --flight-dir DIR        dump the flight-recorder ring to DIR on panic/shed/
                          deadline-overrun/slow incidents (JSONL post-mortems)
  --flight-events N       flight-recorder ring capacity in events (default 256)
  --slow-ms N             requests slower than N ms also trigger a flight dump
self-healing (serve):
  --no-supervise          disable the worker supervisor (a dead worker stays dead)
  --wedge-ms N            replace workers stuck on one request > N ms (0 = off,
                          default 30000)
  --max-restarts N        total worker respawns the supervisor may spend (default 16)
  --breaker-threshold N   consecutive transient checkpoint-load failures that trip
                          the store circuit breaker open (default 3)
  --breaker-cooldown-ms N breaker open-state cooldown before a half-open probe
                          (default 1000)
  --quarantine-after N    panics on one request key before it is quarantined
                          (default 3)
  --quarantine-ttl-ms N   quarantine cooldown; identical requests get a degraded
                          answer until it expires (default 10000)
batching (serve, bench --load):
  --batch-max N           max same-key jobs answered per dequeue from one policy
                          resolution (default 16; 1 disables batching)
  --batch-wait-us N       linger this long for more same-key jobs when below the
                          cap (default 0: batch only from existing backlog)
observability (obs):
  obs metrics FILE        re-render a --metrics JSON snapshot (prom, text or json)
  obs trace FILE          reconstruct span trees from a --trace JSONL file
  --trace-id HEX          show only the trace with this 16-hex id
serving over TCP (serve --tcp):
  --tcp HOST:PORT         listen on TCP (use 127.0.0.1:0 for an ephemeral port)
  --max-conns N           admitted-connection limit; excess is shed (default 256)
  --read-timeout-ms N     per-read socket timeout / drain poll period (default 100)
  --idle-timeout-ms N     close connections that complete no line in N ms (default 10000)
  --max-line-bytes N      per-line byte cap; longer lines get bad_request (default 262144)
  --accept-limit N        stop after accepting N connections (smoke tests)
  a `shutdown` request begins a graceful drain: stop accepting, answer
  every in-flight request, then exit
serve bench (bench --serve):
  --requests N            requests per dataset, first one cold (default 50)
  --episodes N            training episodes per plan request (default 300)
load bench (bench --load):
  --addr HOST:PORT        storm a running daemon (default: host one in-process)
  --rate N                arrivals per second, open loop (default 200)
  --duration-s S          arrival window in seconds (default 3)
  --profile SPEC          traffic mix weights hot/cold/recommend/malformed/slow
  --chaos SPEC            fault plan for the in-process daemon (kill@N and
                          wedge@N:MS exercise the worker supervisor;
                          flaky@N:K bursts trip the store breaker)
  --flight-dir DIR        in-process daemon dumps flight-recorder post-mortems here
  --deadline-ms N         plan-request deadline budget (default 250)
  --require-restarts      fail unless the supervisor respawned >= 1 worker
                          (in-process daemon only)
  --require-breaker-recovered
                          disable the policy cache so recommend traffic hits the
                          store, then fail unless the breaker tripped open and
                          closed again before the drain (in-process daemon only)
  --profile hot-heavy     named preset (hot=92,cold=6,malformed=1,slow=1): a
                          near-pure same-key storm built to form batches
  --compare-batching      run an unbatched (--batch-max 1) baseline storm first
                          and record both p99s in the report's batching object
  --require-batching      fail unless the storm formed >= 1 batch and amortized
                          >= 1 policy resolution (in-process daemon only)
  fails unless zero connections closed without a terminal response and
  the daemon still answers health with accepting:true after the storm
global flags (anywhere on the line):
  --trace FILE    write structured JSONL events to FILE
  --metrics OUT   write the metrics registry to OUT as JSON ('-' = text on stdout)
  -v, --verbose   pretty-print events on stderr (per-episode detail)
  -q, --quiet     suppress the post-command metrics summary
datasets: ds-ct cyber cs univ2 nyc paris city-1k city-10k city-100k";

/// Global observability options, extracted before subcommand dispatch.
struct ObsOptions {
    trace: Option<String>,
    metrics_out: Option<String>,
    verbose: bool,
    quiet: bool,
}

impl ObsOptions {
    /// Splits the obs flags out of `args`, returning the remainder.
    fn extract(args: Vec<String>) -> Result<(ObsOptions, Vec<String>), String> {
        let mut obs = ObsOptions {
            trace: None,
            metrics_out: None,
            verbose: false,
            quiet: false,
        };
        let mut rest = Vec::with_capacity(args.len());
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => {
                    obs.trace = Some(it.next().ok_or("--trace needs a file path")?);
                }
                "--metrics" => {
                    obs.metrics_out = Some(it.next().ok_or("--metrics needs a file path or '-'")?);
                }
                "-v" | "--verbose" => obs.verbose = true,
                "-q" | "--quiet" => obs.quiet = true,
                _ => rest.push(a),
            }
        }
        if obs.verbose && obs.quiet {
            return Err("--verbose and --quiet are mutually exclusive".into());
        }
        Ok((obs, rest))
    }

    /// Installs the requested sinks. With neither `--trace` nor `-v`
    /// the observability layer stays disabled (near-zero overhead).
    fn install(&self) -> Result<(), String> {
        if let Some(path) = &self.trace {
            let sink = tpp_obs::JsonlSink::create(path, Level::Trace)
                .map_err(|e| format!("cannot create trace file {path:?}: {e}"))?;
            tpp_obs::add_sink(Arc::new(sink));
        }
        if self.verbose {
            tpp_obs::add_sink(Arc::new(tpp_obs::PrettySink::stderr(Level::Debug)));
        }
        Ok(())
    }

    /// Writes the `--metrics` output, if requested.
    fn finish(&self) -> Result<(), String> {
        match self.metrics_out.as_deref() {
            None => Ok(()),
            Some("-") => {
                print!("{}", tpp_obs::metrics().render_text());
                Ok(())
            }
            Some(path) => std::fs::write(path, tpp_obs::metrics().render_json())
                .map_err(|e| format!("cannot write metrics file {path:?}: {e}")),
        }
    }

    /// Prints the post-command metrics summary to stderr (skipped with
    /// `--quiet`, and when it would duplicate `--metrics -`).
    fn summary(&self) {
        if self.quiet || self.metrics_out.as_deref() == Some("-") {
            return;
        }
        let text = tpp_obs::metrics().render_text();
        if !text.is_empty() {
            eprintln!("--- metrics ---");
            eprint!("{text}");
        }
    }
}

/// A tiny flag parser: `--key value` pairs plus boolean switches.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    switches: Vec<&'a str>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(key) = a.strip_prefix("--") {
                if matches!(
                    key,
                    "min-sim"
                        | "resume"
                        | "serve"
                        | "no-cache"
                        | "load"
                        | "no-supervise"
                        | "require-restarts"
                        | "require-breaker-recovered"
                        | "require-batching"
                        | "compare-batching"
                ) {
                    switches.push(key);
                    i += 1;
                } else {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{key} needs a value"))?;
                    pairs.push((key, v.as_str()));
                    i += 2;
                }
            } else {
                return Err(format!("unexpected argument {a:?}"));
            }
        }
        Ok(Flags { pairs, switches })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn has(&self, key: &str) -> bool {
        self.switches.contains(&key)
    }
}

/// Dataset resolution lives in `tpp-serve` so the daemon and the CLI
/// can never disagree about what a name means.
fn dataset(name: &str) -> Result<(PlanningInstance, PlannerParams), String> {
    tpp_serve::resolve_dataset(name)
}

/// Edit distance for near-miss suggestions on `--start` codes.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = Vec::with_capacity(b.len() + 1);
        cur.push(i + 1);
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The `k` catalog codes closest to `code` by case-insensitive edit
/// distance, for "unknown item code" error messages.
fn nearest_codes(catalog: &tpp_model::Catalog, code: &str, k: usize) -> Vec<String> {
    let needle = code.to_lowercase();
    let mut scored: Vec<(usize, &str)> = catalog
        .items()
        .iter()
        .map(|i| {
            (
                levenshtein(&i.code.to_lowercase(), &needle),
                i.code.as_str(),
            )
        })
        .collect();
    scored.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(b.1)));
    scored
        .into_iter()
        .take(k)
        .map(|(_, c)| c.to_owned())
        .collect()
}

fn resolve_start(
    instance: &PlanningInstance,
    flag: Option<&str>,
) -> Result<tpp_model::ItemId, String> {
    match flag {
        Some(code) => instance.catalog.by_code(code).map(|i| i.id).ok_or_else(|| {
            let near = nearest_codes(&instance.catalog, code, 3);
            if near.is_empty() {
                format!("unknown item code {code:?}")
            } else {
                format!(
                    "unknown item code {code:?}; nearest matches: {}",
                    near.join(", ")
                )
            }
        }),
        None => instance
            .default_start
            .ok_or_else(|| "dataset has no default start; pass --start".to_owned()),
    }
}

fn run(args: &[String], obs: &ObsOptions) -> Result<Outcome, String> {
    let Some(cmd) = args.first() else {
        return Err("no subcommand".into());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(Outcome::Clean)
        }
        "list" => {
            println!("experiments:");
            for e in tpp_eval::all_experiments() {
                println!("  {}", e.as_str());
            }
            println!("datasets: {DATASETS}");
            Ok(Outcome::Clean)
        }
        "exp" => {
            let id = args.get(1).ok_or("exp needs an experiment id or 'all'")?;
            let flags = Flags::parse(&args[2..])?;
            let csv_dir = flags.get("csv");
            let md_path = flags.get("md");
            let ids: Vec<String> = if id == "all" {
                tpp_eval::all_experiments()
                    .map(|e| e.as_str().to_owned())
                    .collect()
            } else {
                vec![id.clone()]
            };
            let mut reports = Vec::with_capacity(ids.len());
            for id in ids {
                let exp = tpp_eval::ExperimentId::parse(&id)
                    .ok_or_else(|| format!("unknown experiment {id:?}"))?;
                let (report, elapsed) = exp.run_timed();
                println!("{}", report.render_ascii());
                if !obs.quiet {
                    println!(
                        "({} finished in {:.1} s)",
                        exp.as_str(),
                        elapsed.as_secs_f64()
                    );
                }
                if let Some(dir) = csv_dir {
                    report.write_csvs(dir).map_err(|e| e.to_string())?;
                    println!("(csv written to {dir})");
                }
                reports.push(report);
            }
            if let Some(path) = md_path {
                tpp_eval::write_markdown_bundle(path, "RL-Planner experiments", &reports)
                    .map_err(|e| e.to_string())?;
                println!("(markdown bundle written to {path})");
            }
            obs.summary();
            Ok(Outcome::Clean)
        }
        "plan" => {
            let flags = Flags::parse(&args[1..])?;
            let (instance, mut params) = dataset(flags.required("dataset")?)?;
            if let Some(n) = flags.get("episodes") {
                params.episodes = n.parse().map_err(|_| "bad --episodes")?;
            }
            if flags.has("min-sim") {
                params.sim = tpp_core::SimAggregate::Minimum;
            }
            let seed: u64 = flags
                .get("seed")
                .unwrap_or("0")
                .parse()
                .map_err(|_| "bad --seed")?;
            let start = resolve_start(&instance, flags.get("start"))?;
            let params = params.with_start(start);
            let (policy, stats) = RlPlanner::learn(&instance, &params, seed);
            let plan = RlPlanner::recommend(&policy, &instance, &params, start);
            println!("plan:  {}", plan.render(&instance.catalog));
            println!("score: {}", score_plan(&instance, &plan));
            let violations = plan_violations(&instance, &plan);
            let outcome = if violations.is_empty() {
                println!("all hard constraints satisfied");
                Outcome::Clean
            } else {
                for v in violations {
                    println!("violation: {v}");
                }
                Outcome::HardViolation
            };
            let s = stats.summary();
            println!(
                "training: {} episodes, return mean {:.3} / p50 {:.3} / p95 {:.3}",
                s.episodes, s.mean, s.p50, s.p95
            );
            obs.summary();
            Ok(outcome)
        }
        "compare" => {
            let flags = Flags::parse(&args[1..])?;
            let name = flags.required("dataset")?;
            let (instance, params) = dataset(name)?;
            let runs: u64 = flags
                .get("runs")
                .unwrap_or("5")
                .parse()
                .map_err(|_| "bad --runs")?;
            let start = resolve_start(&instance, flags.get("start"))?;
            let params = params.with_start(start);
            let avg =
                |f: &dyn Fn(u64) -> f64| -> f64 { (0..runs).map(f).sum::<f64>() / runs as f64 };
            let rl = avg(&|seed| {
                let (policy, _) = RlPlanner::learn(&instance, &params, seed);
                score_plan(
                    &instance,
                    &RlPlanner::recommend(&policy, &instance, &params, start),
                )
            });
            let eda = avg(&|seed| {
                score_plan(
                    &instance,
                    &tpp_baselines::eda_plan(&instance, &params, start, seed),
                )
            });
            let omega = score_plan(
                &instance,
                &tpp_baselines::omega_plan(
                    &instance,
                    &tpp_baselines::OmegaConfig::paper_adaptation(instance.horizon()),
                    None,
                ),
            );
            let gold = score_plan(&instance, &tpp_baselines::gold_plan(&instance, Some(start)));
            println!("{name} ({} runs averaged):", runs);
            println!("  RL-Planner  {rl:.2}");
            println!("  EDA         {eda:.2}");
            println!("  OMEGA       {omega:.2}");
            println!("  Gold        {gold:.2}");
            Ok(Outcome::Clean)
        }
        "gold" => {
            let flags = Flags::parse(&args[1..])?;
            let (instance, _) = dataset(flags.required("dataset")?)?;
            let start = flags
                .get("start")
                .map(|code| resolve_start(&instance, Some(code)))
                .transpose()?;
            let plan = tpp_baselines::gold_plan(&instance, start);
            println!("gold plan: {}", plan.render(&instance.catalog));
            println!("score:     {}", score_plan(&instance, &plan));
            Ok(Outcome::Clean)
        }
        "train" => {
            let flags = Flags::parse(&args[1..])?;
            let (instance, mut params) = dataset(flags.required("dataset")?)?;
            let out = flags.required("out")?;
            if let Some(n) = flags.get("episodes") {
                params.episodes = n.parse().map_err(|_| "bad --episodes")?;
            }
            let seed: u64 = flags
                .get("seed")
                .unwrap_or("0")
                .parse()
                .map_err(|_| "bad --seed")?;
            let start = resolve_start(&instance, flags.get("start"))?;
            let params = params.with_start(start);
            if flags.has("resume") && flags.get("checkpoint-dir").is_none() {
                return Err("--resume requires --checkpoint-dir".into());
            }
            // A wall-clock budget makes long runs interruptible by
            // design: the loop stops cleanly at an episode boundary and
            // saves whatever it has.
            let budget = match flags.get("max-seconds") {
                Some(s) => {
                    let secs: f64 = s.parse().map_err(|_| "bad --max-seconds")?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err("bad --max-seconds".into());
                    }
                    tpp_core::Budget::unlimited()
                        .with_deadline(std::time::Duration::from_secs_f64(secs))
                }
                None => tpp_core::Budget::unlimited(),
            };
            let (policy, stats) = match flags.get("checkpoint-dir") {
                None => {
                    RlPlanner::learn_budgeted(&instance, &params, seed, None, 0, &budget, |_| {
                        Ok(())
                    })?
                }
                Some(dir) => {
                    let every: usize = flags
                        .get("checkpoint-every")
                        .unwrap_or("100")
                        .parse()
                        .map_err(|_| "bad --checkpoint-every")?;
                    let keep: usize = flags
                        .get("keep")
                        .unwrap_or("3")
                        .parse()
                        .map_err(|_| "bad --keep")?;
                    // `--fault-ops N` wraps the checkpoint filesystem in
                    // the fault injector and simulates a hard crash at
                    // mutating operation N — the integration tests'
                    // deterministic "kill" switch.
                    let fault = flags
                        .get("fault-ops")
                        .map(|v| v.parse::<u64>().map_err(|_| "bad --fault-ops"))
                        .transpose()?
                        .map(|n| {
                            tpp_store::FaultFs::new(
                                tpp_store::RealFs,
                                n,
                                tpp_store::FaultKind::Crash,
                            )
                        });
                    let real = tpp_store::RealFs;
                    let fs: &dyn tpp_store::Vfs = match &fault {
                        Some(f) => f,
                        None => &real,
                    };
                    let set = tpp_store::CheckpointSet::new(fs, dir, keep);
                    let resume = if flags.has("resume") {
                        match set.load_latest().map_err(|e| e.to_string())? {
                            Some((generation, ckpt)) => {
                                eprintln!(
                                    "resuming from {} (episode {})",
                                    set.generation_path(generation).display(),
                                    ckpt.episode
                                );
                                Some(ckpt)
                            }
                            None => None, // empty set: start fresh
                        }
                    } else {
                        None
                    };
                    RlPlanner::learn_budgeted(
                        &instance,
                        &params,
                        seed,
                        resume.as_ref(),
                        every,
                        &budget,
                        |ckpt| {
                            set.save(ckpt)
                                .map(|_| ())
                                .map_err(|e| format!("checkpoint failed: {e}"))
                        },
                    )?
                }
            };
            tpp_store::save_qtable(out, &policy.q).map_err(|e| e.to_string())?;
            if budget.expired() {
                eprintln!(
                    "training budget expired after {} episodes (target {})",
                    stats.episodes(),
                    params.episodes
                );
            }
            println!(
                "trained {} episodes on {}; policy saved to {out}",
                stats.episodes(),
                instance.catalog.name()
            );
            obs.summary();
            Ok(Outcome::Clean)
        }
        "recommend" => {
            let flags = Flags::parse(&args[1..])?;
            let (instance, params) = dataset(flags.required("dataset")?)?;
            let q = match (flags.get("policy"), flags.get("checkpoint-dir")) {
                (Some(path), _) => tpp_store::load_qtable(path).map_err(|e| e.to_string())?,
                (None, Some(dir)) => {
                    // Degrade gracefully: serve the newest generation
                    // that decodes cleanly, skipping corrupt ones.
                    let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, dir, 1);
                    match set.load_latest().map_err(|e| e.to_string())? {
                        Some((generation, ckpt)) => {
                            eprintln!(
                                "using checkpoint generation {generation} (episode {})",
                                ckpt.episode
                            );
                            ckpt.q
                        }
                        None => return Err(format!("no checkpoints in {dir}")),
                    }
                }
                (None, None) => {
                    return Err("recommend needs --policy FILE or --checkpoint-dir DIR".into())
                }
            };
            if q.n_states() != instance.catalog.len() {
                return Err(format!(
                    "policy has {} states, dataset has {} items",
                    q.n_states(),
                    instance.catalog.len()
                ));
            }
            let start = resolve_start(&instance, flags.get("start"))?;
            let plan = RlPlanner::recommend_with_q(&q, &instance, &params.with_start(start), start);
            println!("plan:  {}", plan.render(&instance.catalog));
            println!("score: {}", score_plan(&instance, &plan));
            let violations = plan_violations(&instance, &plan);
            if violations.is_empty() {
                println!("all hard constraints satisfied");
                Ok(Outcome::Clean)
            } else {
                for v in violations {
                    println!("violation: {v}");
                }
                Ok(Outcome::HardViolation)
            }
        }
        "serve" => {
            let flags = Flags::parse(&args[1..])?;
            let parse_u64 = |key: &str| -> Result<Option<u64>, String> {
                flags
                    .get(key)
                    .map(|v| v.parse::<u64>().map_err(|_| format!("bad --{key}")))
                    .transpose()
            };
            let mut config = tpp_serve::ServeConfig {
                checkpoint_dir: flags.get("checkpoint-dir").map(std::path::PathBuf::from),
                default_deadline_ms: parse_u64("deadline-ms")?,
                ..tpp_serve::ServeConfig::default()
            };
            if let Some(n) = parse_u64("max-episodes")? {
                config.max_episodes = n;
            }
            if let Some(spec) = flags.get("chaos") {
                config.chaos = spec.parse().map_err(|e| format!("bad --chaos: {e}"))?;
            }
            if flags.has("no-cache") {
                config.cache.enabled = false;
            }
            if let Some(n) = parse_u64("cache-entries")? {
                config.cache.max_entries = n as usize;
            }
            if let Some(n) = parse_u64("cache-mb")? {
                config.cache.max_bytes = (n as usize) << 20;
            }
            config.flight_dir = flags.get("flight-dir").map(std::path::PathBuf::from);
            if let Some(n) = parse_u64("flight-events")? {
                config.flight_capacity = n as usize;
            }
            config.slow_request_ms = parse_u64("slow-ms")?;
            if let Some(n) = parse_u64("breaker-threshold")? {
                config.breaker.failure_threshold = n as u32;
            }
            if let Some(n) = parse_u64("breaker-cooldown-ms")? {
                config.breaker.cooldown = std::time::Duration::from_millis(n);
            }
            if let Some(n) = parse_u64("quarantine-after")? {
                config.quarantine.strikes = n as u32;
            }
            if let Some(n) = parse_u64("quarantine-ttl-ms")? {
                config.quarantine.cooldown = std::time::Duration::from_millis(n);
            }
            let mut supervisor = tpp_serve::SupervisorConfig::default();
            if flags.has("no-supervise") {
                supervisor.enabled = false;
            }
            if let Some(n) = parse_u64("wedge-ms")? {
                supervisor.wedge_budget = (n > 0).then(|| std::time::Duration::from_millis(n));
            }
            if let Some(n) = parse_u64("max-restarts")? {
                supervisor.max_restarts = n as u32;
            }
            let batch = tpp_serve::BatchConfig {
                max: parse_u64("batch-max")?.unwrap_or(16).max(1) as usize,
                linger: std::time::Duration::from_micros(parse_u64("batch-wait-us")?.unwrap_or(0)),
            };
            let server = tpp_serve::ServerConfig {
                capacity: parse_u64("capacity")?.unwrap_or(64) as usize,
                workers: parse_u64("workers")?.unwrap_or(2) as usize,
                max_requests: parse_u64("max-requests")?,
                max_line_bytes: parse_u64("max-line-bytes")?.unwrap_or(256 * 1024) as usize,
                supervisor: supervisor.clone(),
                batch: batch.clone(),
            };
            let engine = Arc::new(tpp_serve::ServeEngine::new(config));
            match (flags.get("tcp"), flags.get("socket")) {
                (Some(addr), _) => {
                    let tcp = tpp_serve::TcpConfig {
                        max_connections: parse_u64("max-conns")?.unwrap_or(256) as usize,
                        max_line_bytes: server.max_line_bytes,
                        read_timeout: std::time::Duration::from_millis(
                            parse_u64("read-timeout-ms")?.unwrap_or(100),
                        ),
                        idle_timeout: std::time::Duration::from_millis(
                            parse_u64("idle-timeout-ms")?.unwrap_or(10_000),
                        ),
                        capacity: server.capacity,
                        workers: server.workers,
                        accept_limit: parse_u64("accept-limit")?,
                        supervisor,
                        batch,
                    };
                    let srv = tpp_serve::TcpServer::bind(Arc::clone(&engine), addr, tcp)
                        .map_err(|e| format!("tcp bind {addr} failed: {e}"))?;
                    eprintln!("listening on tcp {}", srv.local_addr());
                    let summary = srv.run();
                    eprintln!(
                        "tcp serve done: {} accepted, {} admitted, {} shed, {} idle timeout(s), {} undeliverable, drained {}",
                        summary.accepted,
                        summary.admitted,
                        summary.shed,
                        summary.timeouts,
                        summary.undeliverable_responses,
                        summary.drained,
                    );
                }
                (None, Some(path)) => {
                    tpp_serve::serve_unix(engine, std::path::Path::new(path), &server, None)
                        .map_err(|e| format!("socket serve failed: {e}"))?;
                }
                (None, None) => {
                    let summary = tpp_serve::serve_lines(
                        Arc::clone(&engine),
                        std::io::stdin().lock(),
                        std::io::stdout(),
                        &server,
                    );
                    let c = &engine.counters;
                    eprintln!(
                        "served {} request(s): {} shed, {} panic(s) isolated, {} degraded",
                        summary.received,
                        summary.overloaded,
                        c.panics.load(std::sync::atomic::Ordering::Relaxed),
                        c.degraded.load(std::sync::atomic::Ordering::Relaxed),
                    );
                }
            }
            obs.summary();
            Ok(Outcome::Clean)
        }
        "obs" => {
            // Positional layout (`obs <mode> <file> [flags]`) is parsed
            // by hand before the flag parser sees the remainder.
            let mode = args.get(1).ok_or("obs needs a mode: metrics|trace")?;
            match mode.as_str() {
                "metrics" => {
                    let path = args
                        .get(2)
                        .ok_or("obs metrics needs a snapshot file (written by --metrics FILE)")?;
                    let flags = Flags::parse(&args[3..])?;
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path:?}: {e}"))?;
                    let v = tpp_obs::json::parse(text.trim())
                        .map_err(|e| format!("{path}: invalid json: {e}"))?;
                    let m = tpp_obs::Metrics::from_snapshot(&v)
                        .map_err(|e| format!("{path}: not a metrics snapshot: {e}"))?;
                    match flags.get("format").unwrap_or("prom") {
                        "prom" | "prometheus" => print!("{}", m.render_prometheus()),
                        "text" => print!("{}", m.render_text()),
                        "json" => println!("{}", m.render_json()),
                        other => {
                            return Err(format!("unknown --format {other:?} (prom|text|json)"))
                        }
                    }
                    Ok(Outcome::Clean)
                }
                "trace" => {
                    let path = args
                        .get(2)
                        .ok_or("obs trace needs a JSONL file (written by --trace FILE)")?;
                    let flags = Flags::parse(&args[3..])?;
                    let filter = flags
                        .get("trace-id")
                        .map(|s| {
                            tpp_obs::trace::parse_hex(s)
                                .ok_or_else(|| format!("bad --trace-id {s:?} (want 16 hex digits)"))
                        })
                        .transpose()?;
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path:?}: {e}"))?;
                    let trees = tpp_obs::trace::reconstruct_jsonl(text.lines());
                    let total = trees.len();
                    let mut shown = 0usize;
                    for tree in &trees {
                        if filter.is_some_and(|id| tree.trace_id != id) {
                            continue;
                        }
                        print!("{}", tree.render_ascii());
                        shown += 1;
                    }
                    if filter.is_some() && shown == 0 {
                        return Err(format!("no trace with that id among {total} trace(s)"));
                    }
                    eprintln!("({shown} of {total} trace(s) shown from {path})");
                    Ok(Outcome::Clean)
                }
                other => Err(format!("unknown obs mode {other:?} (metrics|trace)")),
            }
        }
        "datagen" => {
            let flags = Flags::parse(&args[1..])?;
            let (instance, _) = dataset(flags.required("dataset")?)?;
            let out = flags.required("out")?;
            tpp_store::save_json(out, &instance).map_err(|e| e.to_string())?;
            println!(
                "{} ({} items, {} topics) written to {out}",
                instance.catalog.name(),
                instance.catalog.len(),
                instance.catalog.vocabulary().len()
            );
            Ok(Outcome::Clean)
        }
        "bench" => {
            let flags = Flags::parse(&args[1..])?;
            if flags.has("load") {
                return bench_load(&flags, obs);
            }
            if flags.has("serve") {
                return bench_serve(&flags, obs);
            }
            let episodes: Option<usize> = flags
                .get("episodes")
                .map(|n| n.parse().map_err(|_| "bad --episodes"))
                .transpose()?;
            let seed: u64 = flags
                .get("seed")
                .unwrap_or("0")
                .parse()
                .map_err(|_| "bad --seed")?;
            let max_q_bytes: Option<usize> = flags
                .get("max-q-bytes")
                .map(|n| n.parse().map_err(|_| "bad --max-q-bytes"))
                .transpose()?;
            let out = flags.get("out").unwrap_or("BENCH_train.json");
            let names: Vec<&str> = match flags.get("dataset") {
                Some(d) => vec![d],
                None => vec!["ds-ct", "univ2", "nyc", "paris", "city-1k", "city-10k"],
            };
            let mut rows = Vec::with_capacity(names.len());
            for name in names {
                let (instance, mut params) = dataset(name)?;
                // City-scale catalogs: the naive engine's full prefix
                // rescans are quadratic in |I| and would dominate the
                // whole bench, so large rows measure the incremental
                // engine only, with a bounded default episode budget.
                let large = instance.catalog.len() > tpp_core::DENSE_AUTO_MAX;
                params.episodes = match episodes {
                    Some(n) => n,
                    None if large => 300,
                    None => params.episodes,
                };
                let start = resolve_start(&instance, flags.get("start"))?;
                let params = params.with_start(start);
                let run = |params: &PlannerParams| -> (f64, f64, usize, bool) {
                    let t0 = std::time::Instant::now();
                    let (policy, _) = RlPlanner::learn(&instance, params, seed);
                    let secs = t0.elapsed().as_secs_f64().max(1e-9);
                    let score = score_plan(
                        &instance,
                        &RlPlanner::recommend(&policy, &instance, params, start),
                    );
                    (
                        params.episodes as f64 / secs,
                        score,
                        policy.q.approx_bytes(),
                        policy.q.is_sparse(),
                    )
                };
                // Warm up caches/allocator on the incremental engine so
                // neither measured run pays first-touch costs.
                let mut warm = params.clone();
                warm.episodes = warm.episodes.min(5);
                let _ = run(&warm);
                let (incremental_eps, score, q_approx_bytes, sparse) = run(&params);
                let (naive_eps, naive_score) = if large {
                    (None, None)
                } else {
                    let (eps, s, _, _) = run(&params.clone().with_naive_hot_path(true));
                    (Some(eps), Some(s))
                };
                let row = BenchRow {
                    dataset: name.to_owned(),
                    items: instance.catalog.len(),
                    episodes: params.episodes,
                    incremental_episodes_per_sec: incremental_eps,
                    naive_episodes_per_sec: naive_eps,
                    speedup: naive_eps.map(|n| incremental_eps / n),
                    score,
                    scores_match: naive_score
                        .map(|n| score.to_bits() == n.to_bits())
                        .unwrap_or(true),
                    q_approx_bytes,
                    sparse,
                };
                match (row.naive_episodes_per_sec, row.speedup) {
                    (Some(naive), Some(speedup)) => println!(
                        "{:8} {:6} items  {:5} episodes  incremental {:9.1} ep/s  naive {:9.1} ep/s  speedup {:.2}x  q {} bytes",
                        row.dataset,
                        row.items,
                        row.episodes,
                        row.incremental_episodes_per_sec,
                        naive,
                        speedup,
                        row.q_approx_bytes
                    ),
                    _ => println!(
                        "{:8} {:6} items  {:5} episodes  incremental {:9.1} ep/s  (naive skipped at this scale)  q {} bytes ({})",
                        row.dataset,
                        row.items,
                        row.episodes,
                        row.incremental_episodes_per_sec,
                        row.q_approx_bytes,
                        if row.sparse { "sparse" } else { "dense" }
                    ),
                }
                if !row.scores_match {
                    eprintln!(
                        "warning: {name} scores diverge (incremental {score}, naive {naive_score:?})"
                    );
                }
                if let Some(cap) = max_q_bytes {
                    if row.q_approx_bytes > cap {
                        return Err(format!(
                            "{name}: resident Q-table is {} bytes, over the --max-q-bytes cap of {cap} \
                             (a dense allocation leaked into the sparse path?)",
                            row.q_approx_bytes
                        ));
                    }
                }
                rows.push(row);
            }
            let report = BenchReport { seed, rows };
            tpp_store::save_json(out, &report).map_err(|e| e.to_string())?;
            println!("(benchmark report written to {out})");
            obs.summary();
            Ok(Outcome::Clean)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// `bench --serve`: daemon throughput with the policy cache — one cold
/// request per dataset (trains and fills the cache), then identical
/// warm requests that must hit. Verifies cached plans/scores are
/// bit-identical to the cold (uncached) answer and writes the report
/// (default `BENCH_serve.json`).
fn bench_serve(flags: &Flags, obs: &ObsOptions) -> Result<Outcome, String> {
    use std::sync::atomic::Ordering::Relaxed;
    use tpp_obs::json::{parse, Json};

    let requests: usize = flags
        .get("requests")
        .unwrap_or("50")
        .parse()
        .map_err(|_| "bad --requests")?;
    if requests < 2 {
        return Err("--requests must be at least 2 (one cold + warm repeats)".into());
    }
    let episodes: u64 = flags
        .get("episodes")
        .unwrap_or("300")
        .parse()
        .map_err(|_| "bad --episodes")?;
    let seed: u64 = flags
        .get("seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --seed")?;
    let out = flags.get("out").unwrap_or("BENCH_serve.json");
    let names: Vec<&str> = match flags.get("dataset") {
        Some(d) => vec![d],
        None => vec!["ds-ct", "univ2", "nyc", "paris"],
    };

    // Pulls (plan, score bits, cached flag) out of a response line.
    let plan_of = |resp: &str| -> Result<(Vec<String>, u64, bool), String> {
        let v = parse(resp).map_err(|e| format!("unparsable response: {e}"))?;
        if v.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("plan request failed: {resp}"));
        }
        let plan = match v.get("plan") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|j| {
                    j.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "non-string plan item".to_owned())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(format!("response without a plan: {resp}")),
        };
        let score = v
            .get("score")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("response without a score: {resp}"))?;
        let cached = v.get("cached") == Some(&Json::Bool(true));
        Ok((plan, score.to_bits(), cached))
    };

    let mut rows = Vec::with_capacity(names.len());
    for name in names {
        let (instance, _) = tpp_serve::resolve_dataset(name)?;
        let engine = tpp_serve::ServeEngine::new(tpp_serve::ServeConfig::default());
        let line =
            format!(r#"{{"op":"plan","dataset":"{name}","episodes":{episodes},"seed":{seed}}}"#);

        let t0 = std::time::Instant::now();
        let cold_resp = engine.handle_line(&line);
        let cold_secs = t0.elapsed().as_secs_f64().max(1e-9);
        let (cold_plan, cold_bits, _) = plan_of(&cold_resp)?;

        let warm_n = requests - 1;
        let mut warm_resps = Vec::with_capacity(warm_n);
        let t1 = std::time::Instant::now();
        for _ in 0..warm_n {
            warm_resps.push(engine.handle_line(&line));
        }
        let warm_secs = t1.elapsed().as_secs_f64().max(1e-9);

        let mut scores_match = true;
        let mut warm_cached = 0usize;
        for resp in &warm_resps {
            let (plan, bits, cached) = plan_of(resp)?;
            scores_match &= plan == cold_plan && bits == cold_bits;
            warm_cached += cached as usize;
        }

        let c = &engine.cache.counters;
        let row = ServeBenchRow {
            dataset: name.to_owned(),
            items: instance.catalog.len(),
            episodes,
            requests,
            cold_requests_per_sec: 1.0 / cold_secs,
            warm_requests_per_sec: warm_n as f64 / warm_secs,
            speedup: (warm_n as f64 / warm_secs) * cold_secs,
            scores_match,
            warm_cached,
            score: f64::from_bits(cold_bits),
            cache_hits: c.hits.load(Relaxed),
            cache_misses: c.misses.load(Relaxed),
            cache_coalesced: c.coalesced.load(Relaxed),
        };
        println!(
            "{:8} {:4} items  {:5} episodes  cold {:8.1} req/s  warm {:9.1} req/s  speedup {:.1}x  scores_match {}",
            row.dataset,
            row.items,
            row.episodes,
            row.cold_requests_per_sec,
            row.warm_requests_per_sec,
            row.speedup,
            row.scores_match
        );
        if !row.scores_match {
            eprintln!("warning: {name} cached responses diverge from the cold answer");
        }
        rows.push(row);
    }
    // End-to-end plan latency percentiles come from the same
    // `serve.op.plan_us` histogram the daemon's `metrics` op exposes —
    // the bench is just another reader of the registry.
    let s = tpp_obs::metrics().histogram("serve.op.plan_us").summary();
    let plan_latency_us = LatencySummary {
        count: s.count,
        mean: s.mean,
        p50: s.p50,
        p95: s.p95,
        p99: s.p99,
        p999: s.p999,
        max: s.max,
    };
    println!(
        "plan latency (all datasets): p50 {} us  p95 {} us  p99 {} us  p999 {} us  max {} us",
        plan_latency_us.p50,
        plan_latency_us.p95,
        plan_latency_us.p99,
        plan_latency_us.p999,
        plan_latency_us.max
    );
    let report = ServeBenchReport {
        seed,
        requests,
        rows,
        plan_latency_us,
    };
    tpp_store::save_json(out, &report).map_err(|e| e.to_string())?;
    println!("(serve benchmark report written to {out})");
    obs.summary();
    Ok(Outcome::Clean)
}

/// `bench --load`: open-loop TCP load/chaos harness. Starts an
/// in-process [`tpp_serve::TcpServer`] (or targets `--addr`), drives a
/// fixed-arrival-rate storm of mixed hot/cold/malformed/slow-client
/// connections, and writes exact p50/p99/p999 latency, shed rate,
/// timeout counts and the closed-without-response invariant (must be
/// zero) to the report (default `BENCH_load.json`).
fn bench_load(flags: &Flags, obs: &ObsOptions) -> Result<Outcome, String> {
    let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
        flags
            .get(key)
            .map(|v| v.parse::<u64>().map_err(|_| format!("bad --{key}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let rate: f64 = flags
        .get("rate")
        .unwrap_or("200")
        .parse()
        .map_err(|_| "bad --rate")?;
    let duration_s: f64 = flags
        .get("duration-s")
        .unwrap_or("3")
        .parse()
        .map_err(|_| "bad --duration-s")?;
    let out = flags.get("out").unwrap_or("BENCH_load.json");
    let profile: tpp_serve::LoadProfile = flags
        .get("profile")
        .unwrap_or("hot=80,cold=10,malformed=5,slow=5")
        .parse()
        .map_err(|e| format!("bad --profile: {e}"))?;
    let require_restarts = flags.has("require-restarts");
    let require_breaker = flags.has("require-breaker-recovered");
    let require_batching = flags.has("require-batching");
    let compare_batching = flags.has("compare-batching");
    if (require_restarts || require_breaker || require_batching || compare_batching)
        && flags.get("addr").is_some()
    {
        return Err(
            "--require-restarts / --require-breaker-recovered / --require-batching / \
             --compare-batching need the in-process daemon (drop --addr)"
                .into(),
        );
    }
    let batch_max = parse_u64("batch-max", 16)?.max(1);
    let batch_wait_us = parse_u64("batch-wait-us", 0)?;
    let batch = tpp_serve::BatchConfig {
        max: batch_max as usize,
        linger: std::time::Duration::from_micros(batch_wait_us),
    };
    if require_breaker && profile.recommend == 0 {
        return Err(
            "--require-breaker-recovered needs recommend traffic: add recommend=N to --profile"
                .into(),
        );
    }
    let load = tpp_serve::LoadConfig {
        rate,
        duration: std::time::Duration::from_secs_f64(duration_s),
        dataset: flags.get("dataset").unwrap_or("ds-ct").to_string(),
        episodes: parse_u64("episodes", 60)?,
        deadline_ms: parse_u64("deadline-ms", 250)?,
        seed: parse_u64("seed", 0)?,
        profile,
        response_timeout: std::time::Duration::from_millis(parse_u64(
            "response-timeout-ms",
            10_000,
        )?),
    };
    tpp_serve::resolve_dataset(&load.dataset)?; // fail fast on a typo

    // Recommend traffic needs a checkpoint to load: train a small
    // policy into a scratch dir every in-process daemon (the baseline
    // and the main one) serves from.
    let checkpoint_dir: Option<std::path::PathBuf> =
        if flags.get("addr").is_none() && profile.recommend > 0 {
            let dir = std::env::temp_dir().join(format!(
                "tpp-load-ckpt-{}-{}",
                std::process::id(),
                load.seed
            ));
            std::fs::create_dir_all(&dir).map_err(|e| format!("checkpoint dir: {e}"))?;
            let dir_s = dir.to_string_lossy().into_owned();
            let (instance, mut params) = dataset(&load.dataset)?;
            params.episodes = 40;
            let set = tpp_store::CheckpointSet::new(&tpp_store::RealFs, &dir_s, 2);
            let budget = tpp_core::Budget::unlimited();
            RlPlanner::learn_budgeted(&instance, &params, load.seed, None, 20, &budget, |c| {
                set.save(c)
                    .map(|_| ())
                    .map_err(|e| format!("seed checkpoint failed: {e}"))
            })?;
            Some(dir)
        } else {
            None
        };
    // Engine/transport configs are rebuilt per storm so the baseline
    // and the main run start from identical cold state.
    let build_config = |with_flight_dir: bool| -> Result<tpp_serve::ServeConfig, String> {
        let mut config = tpp_serve::ServeConfig::default();
        if let Some(spec) = flags.get("chaos") {
            config.chaos = spec.parse().map_err(|e| format!("bad --chaos: {e}"))?;
        }
        if with_flight_dir {
            config.flight_dir = flags.get("flight-dir").map(std::path::PathBuf::from);
        }
        if require_breaker {
            // Cache hits bypass checkpoint loads entirely; proving
            // the breaker needs every recommend to touch the store.
            config.cache.enabled = false;
        }
        config.checkpoint_dir = checkpoint_dir.clone();
        Ok(config)
    };
    let build_tcp = |batch: tpp_serve::BatchConfig| -> Result<tpp_serve::TcpConfig, String> {
        Ok(tpp_serve::TcpConfig {
            max_connections: parse_u64("max-conns", 512)? as usize,
            capacity: parse_u64("capacity", 128)? as usize,
            workers: parse_u64("workers", 4)? as usize,
            read_timeout: std::time::Duration::from_millis(50),
            idle_timeout: std::time::Duration::from_millis(parse_u64("idle-timeout-ms", 500)?),
            batch,
            ..tpp_serve::TcpConfig::default()
        })
    };

    // `--compare-batching`: storm a fresh unbatched daemon first under
    // the identical load, so the report carries both p99s. The baseline
    // keeps its flight dumps to itself (no flight dir) so the main
    // storm's post-mortems stay attributable.
    let unbatched_p99_ms = if compare_batching {
        let engine = Arc::new(tpp_serve::ServeEngine::new(build_config(false)?));
        let tcp = build_tcp(tpp_serve::BatchConfig {
            max: 1,
            linger: std::time::Duration::ZERO,
        })?;
        let server = tpp_serve::TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0", tcp)
            .map_err(|e| format!("baseline tcp bind failed: {e}"))?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        println!("baseline storm (unbatched, batch-max 1) at {addr} for --compare-batching");
        let base = tpp_serve::run_load(addr, &load);
        use std::io::Write as _;
        let mut stream = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("baseline drain connect: {e}"))?;
        stream
            .write_all(b"{\"op\":\"shutdown\",\"id\":\"drain\"}\n")
            .map_err(|e| format!("baseline drain write: {e}"))?;
        handle
            .join()
            .map_err(|_| "baseline server thread panicked".to_string())?;
        println!(
            "baseline (unbatched) p99 {:.1} ms  ok-only p99 {:.1} ms",
            base.latency.p99_ms, base.latency_ok.p99_ms
        );
        Some(base.latency_ok.p99_ms)
    } else {
        None
    };

    // Either storm an already-running daemon (--addr) or host one
    // in-process and drain it afterwards. The in-process engine handle
    // stays out here so the self-healing verdicts (restarts, breaker
    // state, quarantine) can be read after the storm.
    let mut engine_handle: Option<Arc<tpp_serve::ServeEngine>> = None;
    let (addr, server_thread) = match flags.get("addr") {
        Some(addr) => (
            addr.parse()
                .map_err(|_| format!("bad --addr {addr:?} (want HOST:PORT)"))?,
            None,
        ),
        None => {
            let engine = Arc::new(tpp_serve::ServeEngine::new(build_config(true)?));
            engine_handle = Some(Arc::clone(&engine));
            let tcp = build_tcp(batch.clone())?;
            let server = tpp_serve::TcpServer::bind(engine, "127.0.0.1:0", tcp)
                .map_err(|e| format!("tcp bind failed: {e}"))?;
            let addr = server.local_addr();
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };
    println!(
        "storming {addr}: {rate:.0} conn/s for {duration_s:.1}s (profile {})",
        flags
            .get("profile")
            .unwrap_or("hot=80,cold=10,malformed=5,slow=5")
    );
    let r = tpp_serve::run_load(addr, &load);

    // Post-storm recovery: with the flaky burst over, drive recommend
    // probes until the breaker's half-open probe succeeds and it closes
    // again — recovery must be observable *before* the drain, on the
    // same daemon the storm hit.
    if require_breaker {
        let engine = engine_handle.as_ref().expect("in-process daemon");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.breaker.state_name() != "closed" && std::time::Instant::now() < deadline {
            let probe = format!(
                r#"{{"op":"recommend","dataset":"{}","id":"breaker-probe"}}"#,
                load.dataset
            );
            if let Ok(mut stream) = std::net::TcpStream::connect(addr) {
                use std::io::{BufRead as _, Write as _};
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                if writeln!(stream, "{probe}")
                    .and_then(|()| stream.flush())
                    .is_ok()
                {
                    let mut line = String::new();
                    let _ = std::io::BufReader::new(stream).read_line(&mut line);
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }

    // The in-process daemon is drained with the same `shutdown` op an
    // operator would use, proving the drain path after the storm.
    let server_summary = server_thread.map(|handle| {
        let mut stream = std::net::TcpStream::connect(addr).expect("drain connect");
        use std::io::Write as _;
        stream
            .write_all(b"{\"op\":\"shutdown\",\"id\":\"drain\"}\n")
            .expect("drain write");
        let summary = handle.join().expect("server thread");
        LoadServerSummary {
            accepted: summary.accepted,
            admitted: summary.admitted,
            shed_connections: summary.shed,
            idle_timeouts: summary.timeouts,
            undeliverable_responses: summary.undeliverable_responses,
            drained: summary.drained,
        }
    });

    // Self-healing verdicts, read off the drained in-process engine.
    let self_healing = engine_handle.as_ref().map(|engine| {
        use std::sync::atomic::Ordering;
        let t = &engine.transport;
        SelfHealingSummary {
            worker_restarts: t.worker_restarts.load(Ordering::Relaxed),
            worker_deaths: t.worker_deaths.load(Ordering::Relaxed),
            worker_wedged: t.worker_wedged.load(Ordering::Relaxed),
            worker_rescued: t.worker_rescued.load(Ordering::Relaxed),
            breaker_opens: engine.breaker.opens(),
            breaker_closes: engine.breaker.closes(),
            breaker_state: engine.breaker.state_name().to_string(),
            quarantine_size: engine.quarantine.len(),
        }
    });

    // Turn-level batching outcome, read off the drained engine; the
    // batched p99 is this storm's ok-only p99 so the comparison against
    // the baseline is like-for-like.
    let batching = engine_handle.as_ref().map(|engine| {
        use std::sync::atomic::Ordering;
        let t = &engine.transport;
        BatchingSummary {
            batch_max,
            batch_wait_us,
            batches_formed: t.batches_formed.load(Ordering::Relaxed),
            batch_members: t.batch_members.load(Ordering::Relaxed),
            amortized_loads: t.amortized_loads.load(Ordering::Relaxed),
            batched_p99_ms: r.latency_ok.p99_ms,
            unbatched_p99_ms,
        }
    });

    let lat = |p: tpp_serve::Percentiles| LoadLatency {
        p50_ms: p.p50_ms,
        p99_ms: p.p99_ms,
        p999_ms: p.p999_ms,
        max_ms: p.max_ms,
    };
    let report = LoadBenchReport {
        rate,
        duration_s: r.duration_s,
        achieved_rate: r.achieved_rate,
        dataset: load.dataset.clone(),
        episodes: load.episodes,
        deadline_ms: load.deadline_ms,
        seed: load.seed,
        profile: flags
            .get("profile")
            .unwrap_or("hot=80,cold=10,malformed=5,slow=5")
            .to_string(),
        chaos: flags.get("chaos").unwrap_or("").to_string(),
        arrivals: r.arrivals,
        sent: r.sent,
        answered: r.answered,
        ok: r.ok,
        overloaded: r.overloaded,
        bad_request: r.bad_request,
        other_errors: r.other_errors,
        client_timeouts: r.client_timeouts,
        closed_without_response: r.closed_without_response,
        connect_failures: r.connect_failures,
        slow_conns: r.slow_conns,
        slow_closed_by_server: r.slow_closed_by_server,
        shed_rate: r.shed_rate,
        latency_ms: lat(r.latency),
        latency_ok_ms: lat(r.latency_ok),
        post_health_accepting: r.post_health_accepting,
        server: server_summary,
        self_healing,
        batching,
    };
    println!(
        "answered {}/{} (ok {}, overloaded {}, bad_request {})  shed_rate {:.3}",
        report.answered,
        report.sent,
        report.ok,
        report.overloaded,
        report.bad_request,
        report.shed_rate
    );
    println!(
        "latency p50 {:.1} ms  p99 {:.1} ms  p999 {:.1} ms  max {:.1} ms",
        report.latency_ms.p50_ms,
        report.latency_ms.p99_ms,
        report.latency_ms.p999_ms,
        report.latency_ms.max_ms
    );
    println!(
        "slow conns {} ({} closed by server)  client timeouts {}  closed_without_response {}  post-storm accepting {}",
        report.slow_conns,
        report.slow_closed_by_server,
        report.client_timeouts,
        report.closed_without_response,
        report.post_health_accepting
    );
    if let Some(b) = &report.batching {
        match b.unbatched_p99_ms {
            Some(base) => println!(
                "batching: {} batch(es), {} member(s), {} amortized load(s)  p99 {:.1} ms batched vs {:.1} ms unbatched",
                b.batches_formed, b.batch_members, b.amortized_loads, b.batched_p99_ms, base
            ),
            None => println!(
                "batching: {} batch(es), {} member(s), {} amortized load(s)",
                b.batches_formed, b.batch_members, b.amortized_loads
            ),
        }
    }
    if let Some(sh) = &report.self_healing {
        println!(
            "self-healing: {} restart(s) ({} death(s), {} wedged, {} rescued)  breaker {} ({} open(s), {} close(s))  quarantine {}",
            sh.worker_restarts,
            sh.worker_deaths,
            sh.worker_wedged,
            sh.worker_rescued,
            sh.breaker_state,
            sh.breaker_opens,
            sh.breaker_closes,
            sh.quarantine_size
        );
    }
    tpp_store::save_json(out, &report).map_err(|e| e.to_string())?;
    println!("(load report written to {out})");
    obs.summary();
    if report.closed_without_response > 0 {
        return Err(format!(
            "{} connection(s) closed without a terminal response",
            report.closed_without_response
        ));
    }
    if !report.post_health_accepting {
        return Err("daemon not accepting after the storm".into());
    }
    if require_restarts {
        let restarts = report
            .self_healing
            .as_ref()
            .map_or(0, |sh| sh.worker_restarts);
        if restarts == 0 {
            return Err("--require-restarts: the supervisor respawned no workers".into());
        }
    }
    if require_breaker {
        let sh = report
            .self_healing
            .as_ref()
            .expect("in-process daemon has self-healing stats");
        if sh.breaker_opens == 0 {
            return Err("--require-breaker-recovered: the breaker never tripped open".into());
        }
        if sh.breaker_state != "closed" {
            return Err(format!(
                "--require-breaker-recovered: breaker still {} after recovery probes",
                sh.breaker_state
            ));
        }
    }
    if require_batching {
        let b = report
            .batching
            .as_ref()
            .expect("in-process daemon has batching stats");
        if b.batches_formed == 0 {
            return Err("--require-batching: the storm formed no batches".into());
        }
        if b.amortized_loads == 0 {
            return Err("--require-batching: no policy resolutions were amortized".into());
        }
    }
    Ok(Outcome::Clean)
}

/// One dataset's timing comparison in the `bench` report. City-scale
/// rows skip the naive engine (quadratic rescans don't finish at that
/// scale), so the naive/speedup columns are `null` there.
#[derive(serde::Serialize)]
struct BenchRow {
    dataset: String,
    items: usize,
    episodes: usize,
    incremental_episodes_per_sec: f64,
    /// `null` on city-scale rows (naive engine skipped).
    naive_episodes_per_sec: Option<f64>,
    /// `null` on city-scale rows (naive engine skipped).
    speedup: Option<f64>,
    score: f64,
    /// Sanity bit: the two engines produced bit-identical final scores
    /// (they always should; the equivalence suite enforces it).
    /// Vacuously true when the naive engine was skipped.
    scores_match: bool,
    /// Resident bytes of the learned Q-table — the no-dense-allocation
    /// gate for city-scale rows (`--max-q-bytes`).
    q_approx_bytes: usize,
    /// Whether the learned table used the sparse representation.
    sparse: bool,
}

/// The JSON document `rl-planner bench` writes (`BENCH_train.json`).
#[derive(serde::Serialize)]
struct BenchReport {
    seed: u64,
    rows: Vec<BenchRow>,
}

/// One dataset's cold-vs-warm throughput in the `bench --serve` report.
#[derive(serde::Serialize)]
struct ServeBenchRow {
    dataset: String,
    items: usize,
    episodes: u64,
    requests: usize,
    /// First request: trains a policy, fills the cache.
    cold_requests_per_sec: f64,
    /// Identical follow-ups, served from the policy cache.
    warm_requests_per_sec: f64,
    speedup: f64,
    /// Every warm plan and score was bit-identical to the cold answer.
    scores_match: bool,
    /// Warm responses that reported `cached: true`.
    warm_cached: usize,
    score: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_coalesced: u64,
}

/// Exact client-observed latency percentiles in the `bench --load`
/// report.
#[derive(serde::Serialize)]
struct LoadLatency {
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    max_ms: f64,
}

/// Self-healing outcome of an in-process `bench --load` storm: what the
/// worker supervisor and store breaker actually did under the faults.
#[derive(serde::Serialize)]
struct SelfHealingSummary {
    worker_restarts: u64,
    worker_deaths: u64,
    worker_wedged: u64,
    worker_rescued: u64,
    breaker_opens: u64,
    breaker_closes: u64,
    /// Final breaker state after the post-storm recovery probes
    /// (`closed` proves trip *and* recovery).
    breaker_state: String,
    quarantine_size: usize,
}

/// Turn-level batching outcome of an in-process `bench --load` storm:
/// how many same-key batches the workers formed, how many policy
/// resolutions that amortized away, and the p99 comparison against an
/// unbatched baseline when `--compare-batching` ran one.
#[derive(serde::Serialize)]
struct BatchingSummary {
    batch_max: u64,
    batch_wait_us: u64,
    batches_formed: u64,
    batch_members: u64,
    amortized_loads: u64,
    /// This storm's ok-only p99 (same metric as `unbatched_p99_ms`).
    batched_p99_ms: f64,
    /// Ok-only p99 of the `--compare-batching` baseline storm
    /// (`--batch-max 1`), absent when no baseline ran.
    unbatched_p99_ms: Option<f64>,
}

/// The daemon's own exit summary when `bench --load` hosted it
/// in-process and drained it after the storm.
#[derive(serde::Serialize)]
struct LoadServerSummary {
    accepted: u64,
    admitted: u64,
    shed_connections: u64,
    idle_timeouts: u64,
    /// Responses the daemon could not write because the peer was
    /// already gone — hostile storm clients can make this nonzero
    /// without violating the client-observed invariant above.
    undeliverable_responses: u64,
    drained: bool,
}

/// The `bench --load` report (default `BENCH_load.json`): an open-loop
/// TCP storm's client-side outcome census plus the serving invariants.
#[derive(serde::Serialize)]
struct LoadBenchReport {
    rate: f64,
    duration_s: f64,
    achieved_rate: f64,
    dataset: String,
    episodes: u64,
    deadline_ms: u64,
    seed: u64,
    profile: String,
    chaos: String,
    arrivals: u64,
    sent: u64,
    answered: u64,
    ok: u64,
    overloaded: u64,
    bad_request: u64,
    other_errors: u64,
    client_timeouts: u64,
    /// Complete requests whose connection died with no terminal
    /// response — the invariant that must be zero.
    closed_without_response: u64,
    connect_failures: u64,
    slow_conns: u64,
    slow_closed_by_server: u64,
    shed_rate: f64,
    latency_ms: LoadLatency,
    latency_ok_ms: LoadLatency,
    /// The daemon still answered `health` with `accepting: true` after
    /// the storm.
    post_health_accepting: bool,
    server: Option<LoadServerSummary>,
    /// Present when the daemon ran in-process (absent with `--addr`).
    self_healing: Option<SelfHealingSummary>,
    /// Present when the daemon ran in-process (absent with `--addr`).
    batching: Option<BatchingSummary>,
}

/// Latency percentiles lifted from one registry histogram.
#[derive(serde::Serialize)]
struct LatencySummary {
    count: u64,
    mean: f64,
    p50: u64,
    p95: u64,
    p99: u64,
    p999: u64,
    max: u64,
}

/// Root of `BENCH_serve.json`.
#[derive(serde::Serialize)]
struct ServeBenchReport {
    seed: u64,
    requests: usize,
    rows: Vec<ServeBenchRow>,
    /// `serve.op.plan_us` percentiles across every request in the run.
    plan_latency_us: LatencySummary,
}
