//! Concurrency contracts of the sink layer: `CollectorSink` loses
//! nothing under parallel emission, preserves per-thread order, and the
//! thread-local trace context keeps concurrent traces from bleeding
//! into each other.
//!
//! Lives in its own integration-test binary so the process-wide sink
//! registry is not shared with unrelated unit tests.

use std::collections::BTreeMap;
use std::sync::Arc;
use tpp_obs as obs;
use tpp_obs::json::Json;

const THREADS: usize = 8;
const EVENTS_PER_THREAD: u64 = 200;

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let v = obs::json::parse(line).ok()?;
    Some(v.get("fields")?.get(key)?.as_f64()? as u64)
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let v = obs::json::parse(line).ok()?;
    Some(v.get("fields")?.get(key)?.as_str()?.to_owned())
}

#[test]
fn collector_sink_is_lossless_ordered_and_trace_isolated_under_threads() {
    obs::trace::seed_ids(2024);
    let collector = Arc::new(obs::CollectorSink::new());
    obs::add_sink(collector.clone());

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                // Each thread runs under its own root trace.
                let ctx = obs::TraceCtx::root();
                let _guard = obs::trace::enter(ctx);
                for i in 0..EVENTS_PER_THREAD {
                    obs::obs_event!(obs::Level::Info, "conc.tick", thread = t as u64, seq = i,);
                }
                ctx.trace_id
            })
        })
        .collect();
    let trace_ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    obs::clear_sinks();

    let lines = collector.lines();
    assert_eq!(
        lines.len(),
        THREADS * EVENTS_PER_THREAD as usize,
        "no event may be lost or duplicated"
    );

    // Per-thread sequence numbers must appear in emission order, and
    // every event of a thread must carry that thread's trace id.
    let mut next_seq: BTreeMap<u64, u64> = BTreeMap::new();
    let mut seen_trace: BTreeMap<u64, String> = BTreeMap::new();
    for line in &lines {
        let v = obs::json::parse(line).expect("every line parses");
        assert_eq!(v.get("event").and_then(Json::as_str), Some("conc.tick"));
        let t = field_u64(line, "thread").expect("thread field");
        let seq = field_u64(line, "seq").expect("seq field");
        let expect = next_seq.entry(t).or_insert(0);
        assert_eq!(seq, *expect, "thread {t} emitted out of order");
        *expect += 1;

        let trace = field_str(line, "trace_id").expect("trace_id field");
        let prior = seen_trace.entry(t).or_insert_with(|| trace.clone());
        assert_eq!(*prior, trace, "thread {t} changed trace id mid-run");
    }
    assert_eq!(next_seq.len(), THREADS);
    for (t, n) in next_seq {
        assert_eq!(n, EVENTS_PER_THREAD, "thread {t} incomplete");
    }

    // The eight traces are pairwise distinct and match what the threads
    // reported.
    let mut uniq: Vec<String> = seen_trace.values().cloned().collect();
    uniq.sort();
    uniq.dedup();
    assert_eq!(uniq.len(), THREADS, "trace ids must not collide");
    let mut expected: Vec<String> = trace_ids.iter().map(|&id| obs::trace::hex(id)).collect();
    expected.sort();
    assert_eq!(uniq, expected);
}

#[test]
fn flight_recorder_tolerates_concurrent_writers_and_dumps() {
    let recorder = Arc::new(obs::FlightRecorder::new(64, obs::Level::Debug));
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let rec = Arc::clone(&recorder);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    use obs::Sink as _;
                    rec.record(
                        i,
                        obs::Level::Info,
                        "flight.tick",
                        &[("thread", obs::Value::U64(t)), ("i", obs::Value::U64(i))],
                    );
                    if i % 100 == 0 {
                        let dump = rec.dump_jsonl();
                        for line in dump.lines() {
                            obs::json::parse(line).expect("dump stays parseable mid-write");
                        }
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(recorder.total_recorded(), 4 * 500);
    assert_eq!(recorder.len(), 64, "ring stays at capacity");
}
