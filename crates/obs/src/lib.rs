//! # tpp-obs
//!
//! Zero-dependency structured observability for the RL-Planner
//! workspace: events, RAII spans, and a metrics registry, all std-only
//! (the repo's offline policy rules out `tracing`/`metrics`-style
//! crates) and all near-zero cost when disabled.
//!
//! Three layers:
//!
//! * **Events & spans** — [`obs_event!`] emits a named event with
//!   key/value [`Value`] fields; [`span`] returns an RAII guard that
//!   times its scope and emits `duration_us` on drop. Both are gated on
//!   a process-wide [`Level`]: with no sinks installed the cost of a
//!   disabled event is one relaxed atomic load.
//! * **Metrics** — [`metrics`] is a process-wide registry of atomic
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s with
//!   p50/p95/p99 summaries; render it as text or JSON at exit.
//! * **Sinks** — events fan out to runtime-installed [`Sink`]s: the
//!   machine-readable [`JsonlSink`] (one JSON object per line) and the
//!   human-readable [`PrettySink`] (stderr). Library crates never write
//!   to stderr themselves; only an installed sink does.
//!
//! ## JSONL schema
//!
//! Every line is one object: `{"t_us": <u64 microseconds since the
//! first obs call>, "level": "error|warn|info|debug|trace", "event":
//! <string>, "fields": {<string>: <number|string|bool|null>, …}}`.
//! While a request-scoped [`trace::TraceCtx`] is installed on the
//! emitting thread, `fields` additionally carries `trace_id`/`span_id`
//! (and `parent_id` on non-root spans) as 16-char hex strings.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use tpp_obs as obs;
//!
//! let collector = Arc::new(obs::CollectorSink::new());
//! obs::add_sink(collector.clone());
//!
//! {
//!     let mut sp = obs::span(obs::Level::Info, "demo.work").with("size", 3usize);
//!     obs::obs_event!(obs::Level::Info, "demo.step", index = 0, ok = true);
//!     sp.record("result", "done");
//! } // span drops here and emits `demo.work` with `duration_us`
//!
//! obs::metrics().counter("demo.steps").inc();
//! let lines = collector.lines();
//! assert_eq!(lines.len(), 2);
//! for line in &lines {
//!     obs::json::parse(line).expect("every line is valid JSON");
//! }
//! obs::clear_sinks();
//! obs::metrics().reset();
//! ```

#![warn(missing_docs)]

pub mod flight;
pub mod json;
mod level;
mod metrics;
mod sink;
mod span;
pub mod trace;
mod value;

pub use flight::FlightRecorder;
pub use level::Level;
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSummary, Metrics, N_BUCKETS,
};
pub use sink::{render_jsonl, CollectorSink, JsonlSink, PrettySink, Sink};
pub use span::Span;
pub use trace::{TraceCtx, TraceGuard};
pub use value::Value;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
static SINKS: RwLock<Vec<Arc<dyn Sink>>> = RwLock::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static METRICS: OnceLock<Metrics> = OnceLock::new();

/// Whether events at `level` currently reach any sink.
///
/// This is the fast path the macros check first: a single relaxed
/// atomic load, false whenever no sink wants the level.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// The current maximum enabled level, if any sink is installed.
pub fn max_level() -> Option<Level> {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Microseconds since the process's observability epoch (the first obs
/// call).
pub fn now_us() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Installs a sink; events at or below its [`Sink::max_level`] start
/// flowing to it immediately.
pub fn add_sink(sink: Arc<dyn Sink>) {
    let _ = EPOCH.get_or_init(Instant::now);
    let mut sinks = SINKS.write().expect("sink registry poisoned");
    sinks.push(sink);
    let max = sinks.iter().map(|s| s.max_level() as u8).max().unwrap_or(0);
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Flushes and removes every installed sink, disabling event emission.
pub fn clear_sinks() {
    let mut sinks = SINKS.write().expect("sink registry poisoned");
    MAX_LEVEL.store(0, Ordering::Relaxed);
    for s in sinks.iter() {
        s.flush();
    }
    sinks.clear();
}

/// Flushes every installed sink (call before process exit so buffered
/// JSONL reaches disk).
pub fn flush() {
    for s in SINKS.read().expect("sink registry poisoned").iter() {
        s.flush();
    }
}

/// Emits one event to every sink whose level admits it.
///
/// When a [`trace::TraceCtx`] is installed on the current thread (via
/// [`trace::enter`] or an enclosing [`Span`]), the event automatically
/// gains `trace_id`/`span_id` (and `parent_id` for non-root spans) as
/// fixed-width hex strings.
///
/// Prefer [`obs_event!`], which skips field construction entirely when
/// the level is disabled.
pub fn emit(level: Level, name: &str, fields: &[(&'static str, Value)]) {
    if !enabled(level) {
        return;
    }
    let traced;
    let fields = match trace::current() {
        Some(ctx) => {
            let mut v: Vec<(&'static str, Value)> = Vec::with_capacity(fields.len() + 3);
            v.extend_from_slice(fields);
            v.push(("trace_id", Value::Str(trace::hex(ctx.trace_id))));
            v.push(("span_id", Value::Str(trace::hex(ctx.span_id))));
            if let Some(parent) = ctx.parent_id {
                v.push(("parent_id", Value::Str(trace::hex(parent))));
            }
            traced = v;
            traced.as_slice()
        }
        None => fields,
    };
    let t_us = now_us();
    for sink in SINKS.read().expect("sink registry poisoned").iter() {
        if level <= sink.max_level() {
            sink.record(t_us, level, name, fields);
        }
    }
}

/// Opens a timed RAII span (see [`Span`]). Inert when `level` is
/// disabled.
pub fn span(level: Level, name: &'static str) -> Span {
    Span::new(level, name)
}

/// The process-wide metrics registry.
pub fn metrics() -> &'static Metrics {
    METRICS.get_or_init(Metrics::new)
}

/// Emits a structured event: `obs_event!(Level::Info, "name", key =
/// value, …)`. Field expressions are not evaluated when `level` is
/// disabled.
#[macro_export]
macro_rules! obs_event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::emit(
                $level,
                $name,
                &[$((stringify!($key), $crate::Value::from($value))),*],
            );
        }
    };
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Mutex;

    /// Serializes tests that touch the process-wide sink/level state.
    pub static GLOBAL: Mutex<()> = Mutex::new(());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_reach_installed_sinks_and_respect_levels() {
        let _guard = testutil::GLOBAL.lock().unwrap();
        clear_sinks();
        assert!(!enabled(Level::Error));
        obs_event!(Level::Info, "dropped.before.sinks", n = 1);

        let collector = Arc::new(CollectorSink::new());
        add_sink(collector.clone());
        assert!(enabled(Level::Trace));

        obs_event!(Level::Info, "hello", n = 2usize, label = "x");
        let mut sp = span(Level::Debug, "scope").with("k", 1u64);
        assert!(sp.is_enabled());
        sp.record("late", true);
        drop(sp);

        let lines = collector.lines();
        assert_eq!(lines.len(), 2);
        let first = json::parse(&lines[0]).unwrap();
        assert_eq!(
            first.get("event").and_then(json::Json::as_str),
            Some("hello")
        );
        let second = json::parse(&lines[1]).unwrap();
        assert_eq!(
            second.get("event").and_then(json::Json::as_str),
            Some("scope")
        );
        assert!(second
            .get("fields")
            .and_then(|f| f.get("duration_us"))
            .and_then(json::Json::as_f64)
            .is_some());

        clear_sinks();
        assert!(!enabled(Level::Error));
        obs_event!(Level::Info, "dropped.after.clear", n = 3);
        assert_eq!(collector.lines().len(), 2);
    }

    #[test]
    fn span_durations_feed_the_metrics_registry() {
        let _guard = testutil::GLOBAL.lock().unwrap();
        clear_sinks();
        let collector = Arc::new(CollectorSink::new());
        add_sink(collector);
        {
            let _sp = span(Level::Info, "timed.unit");
        }
        clear_sinks();
        let h = metrics().histogram("span.timed.unit.us");
        assert!(h.count() >= 1);
    }

    #[test]
    fn sink_level_filtering_is_per_sink() {
        let _guard = testutil::GLOBAL.lock().unwrap();
        clear_sinks();
        let verbose = Arc::new(CollectorSink::new());
        add_sink(verbose.clone());
        // Global level is Trace (collector wants everything); a debug
        // event flows, and the global gate reflects the max over sinks.
        obs_event!(Level::Trace, "fine.detail");
        assert_eq!(max_level(), Some(Level::Trace));
        assert_eq!(verbose.lines().len(), 1);
        clear_sinks();
        assert_eq!(max_level(), None);
    }
}
