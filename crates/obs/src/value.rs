//! Field values carried by events and spans.

use std::fmt;

/// A dynamically-typed field value.
///
/// Conversions exist from every primitive the instrumented crates emit,
/// so call sites can write `("seed", seed.into())` or go through the
/// [`obs_event!`](crate::obs_event) macro, which applies `Value::from`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    /// Renders the value as a JSON fragment (numbers bare, strings
    /// escaped and quoted, non-finite floats as `null`).
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::I64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Value::U64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => crate::json::escape_into(s, out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::$variant(v as $cast)
            }
        }
    )*};
}

value_from!(
    i8 => I64 as i64,
    i16 => I64 as i64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    f32 => F64 as f64,
    f64 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::Str(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_cover_primitives() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-2i32), Value::I64(-2));
        assert_eq!(Value::from(1.5f64), Value::F64(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }

    #[test]
    fn json_rendering_escapes_and_handles_nonfinite() {
        let mut s = String::new();
        Value::from("a\"b\n").write_json(&mut s);
        assert_eq!(s, "\"a\\\"b\\n\"");
        s.clear();
        Value::F64(f64::NAN).write_json(&mut s);
        assert_eq!(s, "null");
        s.clear();
        Value::F64(2.25).write_json(&mut s);
        assert_eq!(s, "2.25");
    }
}
