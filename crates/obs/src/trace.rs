//! Request-scoped trace context: correlation ids threaded through
//! events and spans.
//!
//! A [`TraceCtx`] is a `(trace_id, span_id, parent_id)` triple. One
//! trace id identifies everything a single logical request caused —
//! across the serving queue, worker threads, cache lookups, retries,
//! fallback tiers, and panic recovery — while span ids give the events
//! a tree shape that [`reconstruct_jsonl`] can rebuild from a JSONL
//! sink after the fact.
//!
//! The context is **thread-local**: [`enter`] installs a context for
//! the current thread and returns an RAII guard that restores the
//! previous one on drop. While a context is installed, every emitted
//! event (and every [`crate::span`]) automatically carries `trace_id`,
//! `span_id` and (when non-root) `parent_id` fields; spans additionally
//! push a child context for their scope, so events inside a span
//! attach to that span's id.
//!
//! Crossing a thread boundary (e.g. a bounded request queue feeding a
//! worker pool) is explicit: capture the [`TraceCtx`] by value on the
//! producing side, ship it with the work item, and [`enter`] it on the
//! consuming side.
//!
//! Ids are generated from a process-wide counter mixed through
//! SplitMix64, so they are unique within the process and — after
//! [`seed_ids`] — exactly reproducible, which is what lets integration
//! tests pin "these twelve events share one trace id" instead of
//! regex-matching randomness.
//!
//! ## Wire format
//!
//! Ids render as fixed-width lowercase hex strings (16 chars), not JSON
//! numbers: a u64 does not survive a round-trip through an f64-based
//! JSON parser, and hex is what every tracing UI expects anyway.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A request-scoped trace context (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Identifies the whole request: shared by every event it causes.
    pub trace_id: u64,
    /// Identifies the innermost active span.
    pub span_id: u64,
    /// The enclosing span's id (`None` for the root span).
    pub parent_id: Option<u64>,
}

impl TraceCtx {
    /// A fresh root context: new trace id, new root span id, no parent.
    pub fn root() -> TraceCtx {
        TraceCtx {
            trace_id: next_id(),
            span_id: next_id(),
            parent_id: None,
        }
    }

    /// A child context inside this one: same trace, fresh span id,
    /// parented to this context's span.
    pub fn child(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id: next_id(),
            parent_id: Some(self.span_id),
        }
    }
}

/// Fixed-width lowercase hex rendering of a trace/span id.
pub fn hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses an id previously rendered by [`hex`].
pub fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

// Id generation: a seeded counter mixed through SplitMix64. The
// counter, not the mix output, is the state, so reseeding is exact and
// concurrent callers never produce duplicates.
static ID_SEED: AtomicU64 = AtomicU64::new(0);
static ID_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Resets the id generator to a deterministic state. Tests call this so
/// trace/span ids are exactly reproducible run to run.
pub fn seed_ids(seed: u64) {
    ID_SEED.store(seed, Ordering::Relaxed);
    ID_COUNTER.store(0, Ordering::Relaxed);
}

fn next_id() -> u64 {
    let n = ID_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut z = ID_SEED
        .load(Ordering::Relaxed)
        .wrapping_add((n.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Zero is reserved as "no id" in human eyes; nudge past it.
    if z == 0 {
        1
    } else {
        z
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The thread's current trace context, if one is installed.
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(Cell::get)
}

pub(crate) fn set_current(ctx: Option<TraceCtx>) {
    CURRENT.with(|c| c.set(ctx));
}

/// Installs `ctx` as the thread's current context; the returned guard
/// restores the previous context when dropped. Guards nest.
pub fn enter(ctx: TraceCtx) -> TraceGuard {
    let prev = current();
    set_current(Some(ctx));
    TraceGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// RAII guard from [`enter`]; restores the previous context on drop.
/// Deliberately `!Send` — the context it manages is thread-local.
#[must_use = "dropping the guard immediately uninstalls the context"]
#[derive(Debug)]
pub struct TraceGuard {
    prev: Option<TraceCtx>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        set_current(self.prev);
    }
}

// ---------------------------------------------------------------------
// Offline reconstruction: JSONL lines back into span trees.
// ---------------------------------------------------------------------

/// One span recovered from a JSONL stream, with its point events and
/// child spans.
#[derive(Debug, Default)]
pub struct SpanNode {
    /// The span's id.
    pub span_id: u64,
    /// The enclosing span's id (`None` for roots).
    pub parent_id: Option<u64>,
    /// Event name of the span-close event (empty if never closed —
    /// e.g. the process died mid-span).
    pub name: String,
    /// `duration_us` from the span-close event.
    pub duration_us: Option<u64>,
    /// Point events attached to this span, as `(t_us, event name)`.
    pub events: Vec<(u64, String)>,
    /// Child spans, ordered by close time.
    pub children: Vec<SpanNode>,
}

/// All spans of one trace id, as a forest (normally a single root).
#[derive(Debug)]
pub struct TraceTree {
    /// The shared trace id.
    pub trace_id: u64,
    /// Root spans (parentless, or parented to a span outside the
    /// captured window).
    pub roots: Vec<SpanNode>,
    /// Events that carried the trace id but no parseable span id.
    pub orphan_events: usize,
}

impl TraceTree {
    /// Total spans in the tree.
    pub fn span_count(&self) -> usize {
        fn walk(n: &SpanNode) -> usize {
            1 + n.children.iter().map(walk).sum::<usize>()
        }
        self.roots.iter().map(walk).sum()
    }

    /// Renders the tree as an indented ASCII outline.
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "trace {}", hex(self.trace_id));
        fn walk(n: &SpanNode, depth: usize, out: &mut String) {
            use std::fmt::Write as _;
            let pad = "  ".repeat(depth + 1);
            let name = if n.name.is_empty() { "(open)" } else { &n.name };
            match n.duration_us {
                Some(us) => {
                    let _ = writeln!(out, "{pad}{name} [{}] {us}us", hex(n.span_id));
                }
                None => {
                    let _ = writeln!(out, "{pad}{name} [{}]", hex(n.span_id));
                }
            }
            for (t_us, ev) in &n.events {
                let _ = writeln!(out, "{pad}  · {ev} @{t_us}us");
            }
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        if self.orphan_events > 0 {
            let _ = writeln!(out, "  ({} orphan event(s))", self.orphan_events);
        }
        out
    }
}

/// Rebuilds per-trace span trees from JSONL lines (the [`crate::JsonlSink`] /
/// [`crate::CollectorSink`] schema). Lines that fail to parse or carry
/// no `trace_id` are skipped — a trace file legitimately mixes traced
/// serve events with untraced background events.
///
/// An event whose fields include `duration_us` is a span-close and
/// becomes a node named after it; other events attach to the node whose
/// `span_id` they carry. Spans that never closed (process death) still
/// appear, unnamed, so their point events are not lost.
pub fn reconstruct_jsonl<'a>(lines: impl IntoIterator<Item = &'a str>) -> Vec<TraceTree> {
    use crate::json::{parse, Json};

    struct Raw {
        parent_id: Option<u64>,
        name: String,
        duration_us: Option<u64>,
        close_t: u64,
        events: Vec<(u64, String)>,
    }
    // trace_id -> span_id -> raw node (BTreeMaps for deterministic output)
    let mut traces: BTreeMap<u64, BTreeMap<u64, Raw>> = BTreeMap::new();
    let mut orphans: BTreeMap<u64, usize> = BTreeMap::new();

    let id_field = |fields: &Json, key: &str| -> Option<u64> {
        fields.get(key).and_then(Json::as_str).and_then(parse_hex)
    };
    for line in lines {
        let Ok(v) = parse(line) else { continue };
        let Some(fields) = v.get("fields") else {
            continue;
        };
        let Some(trace_id) = id_field(fields, "trace_id") else {
            continue;
        };
        let Some(span_id) = id_field(fields, "span_id") else {
            *orphans.entry(trace_id).or_default() += 1;
            continue;
        };
        let parent_id = id_field(fields, "parent_id");
        let name = v
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned();
        let t_us = v.get("t_us").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let duration_us = fields
            .get("duration_us")
            .and_then(Json::as_f64)
            .map(|d| d as u64);
        let spans = traces.entry(trace_id).or_default();
        let raw = spans.entry(span_id).or_insert_with(|| Raw {
            parent_id,
            name: String::new(),
            duration_us: None,
            close_t: u64::MAX,
            events: Vec::new(),
        });
        match duration_us {
            Some(d) => {
                // The span-close line names the span and fixes its parent.
                raw.name = name;
                raw.duration_us = Some(d);
                raw.close_t = t_us;
                raw.parent_id = parent_id;
            }
            None => raw.events.push((t_us, name)),
        }
    }

    traces
        .into_iter()
        .map(|(trace_id, mut spans)| {
            // Children lists, then assemble leaves-first.
            let ids: Vec<u64> = spans.keys().copied().collect();
            let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            let mut roots_ids = Vec::new();
            for &id in &ids {
                match spans[&id].parent_id.filter(|p| spans.contains_key(p)) {
                    Some(p) => children.entry(p).or_default().push(id),
                    None => roots_ids.push(id),
                }
            }
            fn build(
                id: u64,
                spans: &mut BTreeMap<u64, Raw>,
                children: &BTreeMap<u64, Vec<u64>>,
            ) -> SpanNode {
                let raw = spans.remove(&id).expect("span visited once");
                let mut kids: Vec<SpanNode> = children
                    .get(&id)
                    .into_iter()
                    .flatten()
                    .map(|&c| build(c, spans, children))
                    .collect();
                kids.sort_by_key(|k| k.duration_us.unwrap_or(u64::MAX));
                SpanNode {
                    span_id: id,
                    parent_id: raw.parent_id,
                    name: raw.name,
                    duration_us: raw.duration_us,
                    events: raw.events,
                    children: kids,
                }
            }
            let roots = roots_ids
                .into_iter()
                .map(|id| build(id, &mut spans, &children))
                .collect();
            TraceTree {
                trace_id,
                roots,
                orphan_events: orphans.get(&trace_id).copied().unwrap_or(0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{obs_event, CollectorSink, Level};
    use std::sync::Arc;

    #[test]
    fn ids_are_deterministic_after_seeding_and_unique() {
        seed_ids(42);
        let a: Vec<u64> = (0..64).map(|_| next_id()).collect();
        seed_ids(42);
        let b: Vec<u64> = (0..64).map(|_| next_id()).collect();
        assert_eq!(a, b, "same seed, same id stream");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "no duplicate ids");
        seed_ids(43);
        assert_ne!(next_id(), b[0], "different seed, different stream");
    }

    #[test]
    fn hex_round_trips() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_hex(&hex(id)), Some(id));
        }
        assert_eq!(hex(0xff).len(), 16);
        assert_eq!(parse_hex("not hex"), None);
    }

    #[test]
    fn guards_nest_and_restore() {
        assert_eq!(current(), None);
        let root = TraceCtx::root();
        {
            let _g = enter(root);
            assert_eq!(current(), Some(root));
            let child = root.child();
            assert_eq!(child.trace_id, root.trace_id);
            assert_eq!(child.parent_id, Some(root.span_id));
            {
                let _g2 = enter(child);
                assert_eq!(current(), Some(child));
            }
            assert_eq!(current(), Some(root));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn emitted_events_carry_the_context_and_reconstruct() {
        let _guard = crate::testutil::GLOBAL.lock().unwrap();
        crate::clear_sinks();
        seed_ids(7);
        let collector = Arc::new(CollectorSink::new());
        crate::add_sink(collector.clone());

        let root = TraceCtx::root();
        {
            let _t = enter(root);
            obs_event!(Level::Info, "point.at.root", n = 1);
            {
                let mut sp = crate::span(Level::Info, "inner.work");
                sp.record("k", 2u64);
                obs_event!(Level::Info, "point.in.span", n = 2);
            }
        }
        obs_event!(Level::Info, "untraced.event", n = 3);
        crate::clear_sinks();

        let lines = collector.lines();
        assert_eq!(lines.len(), 4);
        // Every traced line carries the ids; the untraced one does not.
        for line in &lines[..3] {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(
                v.get("fields")
                    .and_then(|f| f.get("trace_id"))
                    .and_then(|t| t.as_str()),
                Some(hex(root.trace_id).as_str()),
                "line: {line}"
            );
        }
        let last = crate::json::parse(&lines[3]).unwrap();
        assert!(last.get("fields").unwrap().get("trace_id").is_none());

        let trees = reconstruct_jsonl(lines.iter().map(String::as_str));
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.trace_id, root.trace_id);
        assert_eq!(tree.roots.len(), 1, "{:?}", tree.roots);
        let r = &tree.roots[0];
        assert_eq!(r.span_id, root.span_id);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].1, "point.at.root");
        assert_eq!(r.children.len(), 1);
        let inner = &r.children[0];
        assert_eq!(inner.name, "inner.work");
        assert!(inner.duration_us.is_some());
        assert_eq!(inner.parent_id, Some(root.span_id));
        assert_eq!(inner.events[0].1, "point.in.span");
        assert!(tree.render_ascii().contains("inner.work"));
        assert_eq!(tree.span_count(), 2);
    }
}
