//! RAII spans: monotonic timings around a scope, emitted as events.

use crate::level::Level;
use crate::trace::{self, TraceCtx};
use crate::value::Value;
use std::time::Instant;

/// A timed scope. Created via [`crate::span`]; on drop it emits an
/// event carrying every attached field plus `duration_us`, and records
/// the duration into the histogram `span.<name>.us`.
///
/// When a [`TraceCtx`] is installed on the creating thread, a live span
/// pushes a **child** context for its scope: events emitted inside it
/// attach to the span's id, and the span-close event itself carries the
/// child id with `parent_id` pointing at the enclosing span. The
/// previous context is restored on drop.
///
/// When the span's level is disabled at creation time the guard is
/// inert: no clock read, no allocation, no event on drop.
#[must_use = "a span measures the scope it is bound to; bind it to a named variable"]
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    level: Level,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
    /// The child context this span installed (None when no context was
    /// current at creation), plus the context to restore on drop.
    trace: Option<(TraceCtx, Option<TraceCtx>)>,
}

impl Span {
    pub(crate) fn new(level: Level, name: &'static str) -> Span {
        if !crate::enabled(level) {
            return Span { inner: None };
        }
        let trace = trace::current().map(|prev| {
            let child = prev.child();
            trace::set_current(Some(child));
            (child, Some(prev))
        });
        Span {
            inner: Some(SpanInner {
                name,
                level,
                start: Instant::now(),
                fields: Vec::new(),
                trace,
            }),
        }
    }

    /// The trace context this span installed, if any. Capture this to
    /// carry the trace across a thread boundary (then [`trace::enter`]
    /// it on the other side).
    pub fn trace_ctx(&self) -> Option<TraceCtx> {
        self.inner
            .as_ref()
            .and_then(|i| i.trace.as_ref())
            .map(|(child, _)| *child)
    }

    /// Attaches a field (builder style). No-op on an inert span.
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Span {
        self.record(key, value);
        self
    }

    /// Attaches a field to an existing span. No-op on an inert span.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }

    /// Whether this span is live (its level was enabled at creation).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Elapsed time so far (zero for an inert span).
    pub fn elapsed_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| u64::try_from(i.start.elapsed().as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(mut inner) = self.inner.take() else {
            return;
        };
        let duration_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        inner.fields.push(("duration_us", Value::U64(duration_us)));
        // Emit while the span's own context is still current, so the
        // close event carries the span's id; then restore the enclosing
        // context. If the span was moved to another thread, the current
        // context there is not ours — leave it alone.
        crate::emit(inner.level, inner.name, &inner.fields);
        if let Some((child, prev)) = inner.trace {
            if trace::current() == Some(child) {
                trace::set_current(prev);
            }
        }
        crate::metrics()
            .histogram(&format!("span.{}.us", inner.name))
            .record(duration_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_span_is_free_of_side_effects() {
        // No sinks installed in this test binary at this point and the
        // global level defaults to off, so the span must be inert.
        let s = Span::new(Level::Trace, "never");
        assert!(!s.is_enabled());
        assert_eq!(s.elapsed_us(), 0);
    }
}
