//! Event sinks: where structured events go.
//!
//! Two production sinks ship here — a machine-readable JSONL writer and
//! a human-readable stderr pretty-printer — plus an in-memory collector
//! for tests. Sinks are installed at runtime via [`crate::add_sink`];
//! with no sinks installed the emit path is a single relaxed atomic
//! load.

use crate::level::Level;
use crate::value::Value;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A destination for structured events.
pub trait Sink: Send + Sync {
    /// The most verbose level this sink wants to receive.
    fn max_level(&self) -> Level;

    /// Records one event. `t_us` is microseconds since the process's
    /// observability epoch.
    fn record(&self, t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]);

    /// Flushes buffered output (best-effort).
    fn flush(&self) {}
}

/// Renders one event as a single JSON line (no trailing newline).
pub fn render_jsonl(
    t_us: u64,
    level: Level,
    name: &str,
    fields: &[(&'static str, Value)],
) -> String {
    let mut line = String::with_capacity(64 + fields.len() * 24);
    let _ = write!(
        line,
        "{{\"t_us\":{t_us},\"level\":\"{}\",\"event\":",
        level.as_str()
    );
    crate::json::escape_into(name, &mut line);
    line.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        crate::json::escape_into(k, &mut line);
        line.push(':');
        v.write_json(&mut line);
    }
    line.push_str("}}");
    line
}

/// Machine-readable sink: one JSON object per line.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    level: Level,
}

impl JsonlSink {
    /// Creates (truncates) `path` and writes JSONL to it at the given
    /// verbosity.
    pub fn create(path: impl AsRef<Path>, level: Level) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(file), level))
    }

    /// Wraps an arbitrary writer (tests, pipes).
    pub fn to_writer(writer: Box<dyn Write + Send>, level: Level) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(writer)),
            level,
        }
    }
}

impl Sink for JsonlSink {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]) {
        let mut line = render_jsonl(t_us, level, name, fields);
        line.push('\n');
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Human-readable sink: aligned single-line records on stderr.
pub struct PrettySink {
    level: Level,
}

impl PrettySink {
    /// A pretty-printer that shows events up to `level`.
    pub fn stderr(level: Level) -> Self {
        PrettySink { level }
    }

    /// Renders one event the way the sink prints it.
    pub fn render(t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]) -> String {
        let mut line = String::with_capacity(64);
        let _ = write!(
            line,
            "{:>12.3}ms {:>5} {name}",
            t_us as f64 / 1e3,
            level.as_str().to_ascii_uppercase()
        );
        for (k, v) in fields {
            let _ = write!(line, " {k}={v}");
        }
        line
    }
}

impl Sink for PrettySink {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]) {
        let line = Self::render(t_us, level, name, fields);
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }
}

/// Test sink: collects rendered JSONL lines in memory.
#[derive(Default)]
pub struct CollectorSink {
    lines: Mutex<Vec<String>>,
}

impl CollectorSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lines collected so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("collector poisoned").clone()
    }
}

impl Sink for CollectorSink {
    fn max_level(&self) -> Level {
        Level::Trace
    }

    fn record(&self, t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]) {
        self.lines
            .lock()
            .expect("collector poisoned")
            .push(render_jsonl(t_us, level, name, fields));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rendering_parses_and_carries_fields() {
        let line = render_jsonl(
            1500,
            Level::Info,
            "train.episode",
            &[
                ("episode", Value::U64(3)),
                ("return", Value::F64(4.25)),
                ("label", Value::Str("a\"b".into())),
            ],
        );
        let v = crate::json::parse(&line).expect("valid json line");
        assert_eq!(v.get("t_us").and_then(|x| x.as_f64()), Some(1500.0));
        assert_eq!(v.get("level").and_then(|x| x.as_str()), Some("info"));
        assert_eq!(
            v.get("event").and_then(|x| x.as_str()),
            Some("train.episode")
        );
        let f = v.get("fields").expect("fields object");
        assert_eq!(f.get("episode").and_then(|x| x.as_f64()), Some(3.0));
        assert_eq!(f.get("return").and_then(|x| x.as_f64()), Some(4.25));
        assert_eq!(f.get("label").and_then(|x| x.as_str()), Some("a\"b"));
    }

    #[test]
    fn pretty_rendering_is_single_line() {
        let line = PrettySink::render(
            2_000,
            Level::Warn,
            "gate.reject",
            &[("kind", Value::Str("credits".into()))],
        );
        assert!(line.contains("WARN"));
        assert!(line.contains("gate.reject kind=credits"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let path = std::env::temp_dir().join(format!("tpp-obs-sink-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path, Level::Trace).unwrap();
            sink.record(1, Level::Info, "a", &[]);
            sink.record(2, Level::Debug, "b", &[("k", Value::Bool(true))]);
            sink.flush();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            crate::json::parse(l).expect("every line parses");
        }
        std::fs::remove_file(&path).ok();
    }
}
