//! Event sinks: where structured events go.
//!
//! Two production sinks ship here — a machine-readable JSONL writer and
//! a human-readable stderr pretty-printer — plus an in-memory collector
//! for tests. Sinks are installed at runtime via [`crate::add_sink`];
//! with no sinks installed the emit path is a single relaxed atomic
//! load.

use crate::level::Level;
use crate::value::Value;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A destination for structured events.
pub trait Sink: Send + Sync {
    /// The most verbose level this sink wants to receive.
    fn max_level(&self) -> Level;

    /// Records one event. `t_us` is microseconds since the process's
    /// observability epoch.
    fn record(&self, t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]);

    /// Flushes buffered output (best-effort).
    fn flush(&self) {}
}

/// Renders one event as a single JSON line (no trailing newline).
pub fn render_jsonl(
    t_us: u64,
    level: Level,
    name: &str,
    fields: &[(&'static str, Value)],
) -> String {
    let mut line = String::with_capacity(64 + fields.len() * 24);
    let _ = write!(
        line,
        "{{\"t_us\":{t_us},\"level\":\"{}\",\"event\":",
        level.as_str()
    );
    crate::json::escape_into(name, &mut line);
    line.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        crate::json::escape_into(k, &mut line);
        line.push(':');
        v.write_json(&mut line);
    }
    line.push_str("}}");
    line
}

/// Machine-readable sink: one JSON object per line.
///
/// File-backed sinks can rotate: when [`JsonlSink::create_rotating`]
/// sets a size cap, the file is renamed to `<path>.1` (replacing any
/// previous `.1`) once the cap is crossed and a fresh file takes its
/// place, bounding disk use at roughly twice the cap for arbitrarily
/// long daemon runs. Warn/error events flush through immediately, and
/// the buffer is flushed on drop, so a crashing process keeps its tail.
pub struct JsonlSink {
    out: Mutex<SinkOut>,
    level: Level,
}

struct SinkOut {
    writer: BufWriter<Box<dyn Write + Send>>,
    rotation: Option<Rotation>,
}

struct Rotation {
    path: PathBuf,
    max_bytes: u64,
    written: u64,
}

impl JsonlSink {
    /// Creates (truncates) `path` and writes JSONL to it at the given
    /// verbosity.
    pub fn create(path: impl AsRef<Path>, level: Level) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(file), level))
    }

    /// Like [`Self::create`], but rotates `path` to `<path>.1` whenever
    /// it grows past `max_bytes` (one generation is kept; a zero cap is
    /// treated as 1 byte, i.e. rotate after every line).
    pub fn create_rotating(
        path: impl AsRef<Path>,
        level: Level,
        max_bytes: u64,
    ) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSink {
            out: Mutex::new(SinkOut {
                writer: BufWriter::new(Box::new(file)),
                rotation: Some(Rotation {
                    path,
                    max_bytes: max_bytes.max(1),
                    written: 0,
                }),
            }),
            level,
        })
    }

    /// Wraps an arbitrary writer (tests, pipes). Never rotates.
    pub fn to_writer(writer: Box<dyn Write + Send>, level: Level) -> Self {
        JsonlSink {
            out: Mutex::new(SinkOut {
                writer: BufWriter::new(writer),
                rotation: None,
            }),
            level,
        }
    }
}

impl SinkOut {
    fn rotate_if_due(&mut self) {
        let Some(rot) = &mut self.rotation else {
            return;
        };
        if rot.written < rot.max_bytes {
            return;
        }
        let _ = self.writer.flush();
        let mut rotated = rot.path.clone().into_os_string();
        rotated.push(".1");
        // Best effort: if the rename or reopen fails we keep appending
        // to the current file and retry at the next threshold.
        if std::fs::rename(&rot.path, &rotated).is_ok() {
            if let Ok(file) = File::create(&rot.path) {
                self.writer = BufWriter::new(Box::new(file));
            }
        }
        rot.written = 0;
    }
}

impl Sink for JsonlSink {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]) {
        let mut line = render_jsonl(t_us, level, name, fields);
        line.push('\n');
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let _ = out.writer.write_all(line.as_bytes());
        if let Some(rot) = &mut out.rotation {
            rot.written += line.len() as u64;
        }
        if level <= Level::Warn {
            let _ = out.writer.flush();
        }
        out.rotate_if_due();
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.writer.flush();
        }
    }
}

/// Human-readable sink: aligned single-line records on stderr.
pub struct PrettySink {
    level: Level,
}

impl PrettySink {
    /// A pretty-printer that shows events up to `level`.
    pub fn stderr(level: Level) -> Self {
        PrettySink { level }
    }

    /// Renders one event the way the sink prints it.
    pub fn render(t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]) -> String {
        let mut line = String::with_capacity(64);
        let _ = write!(
            line,
            "{:>12.3}ms {:>5} {name}",
            t_us as f64 / 1e3,
            level.as_str().to_ascii_uppercase()
        );
        for (k, v) in fields {
            let _ = write!(line, " {k}={v}");
        }
        line
    }
}

impl Sink for PrettySink {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]) {
        let line = Self::render(t_us, level, name, fields);
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }
}

/// Test sink: collects rendered JSONL lines in memory.
#[derive(Default)]
pub struct CollectorSink {
    lines: Mutex<Vec<String>>,
}

impl CollectorSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lines collected so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("collector poisoned").clone()
    }
}

impl Sink for CollectorSink {
    fn max_level(&self) -> Level {
        Level::Trace
    }

    fn record(&self, t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]) {
        self.lines
            .lock()
            .expect("collector poisoned")
            .push(render_jsonl(t_us, level, name, fields));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rendering_parses_and_carries_fields() {
        let line = render_jsonl(
            1500,
            Level::Info,
            "train.episode",
            &[
                ("episode", Value::U64(3)),
                ("return", Value::F64(4.25)),
                ("label", Value::Str("a\"b".into())),
            ],
        );
        let v = crate::json::parse(&line).expect("valid json line");
        assert_eq!(v.get("t_us").and_then(|x| x.as_f64()), Some(1500.0));
        assert_eq!(v.get("level").and_then(|x| x.as_str()), Some("info"));
        assert_eq!(
            v.get("event").and_then(|x| x.as_str()),
            Some("train.episode")
        );
        let f = v.get("fields").expect("fields object");
        assert_eq!(f.get("episode").and_then(|x| x.as_f64()), Some(3.0));
        assert_eq!(f.get("return").and_then(|x| x.as_f64()), Some(4.25));
        assert_eq!(f.get("label").and_then(|x| x.as_str()), Some("a\"b"));
    }

    #[test]
    fn pretty_rendering_is_single_line() {
        let line = PrettySink::render(
            2_000,
            Level::Warn,
            "gate.reject",
            &[("kind", Value::Str("credits".into()))],
        );
        assert!(line.contains("WARN"));
        assert!(line.contains("gate.reject kind=credits"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn rotating_sink_caps_file_size_and_keeps_one_generation() {
        let dir = std::env::temp_dir().join(format!("tpp-obs-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let rotated = dir.join("trace.jsonl.1");
        {
            let sink = JsonlSink::create_rotating(&path, Level::Trace, 256).unwrap();
            for i in 0..64u64 {
                sink.record(i, Level::Info, "tick", &[("i", Value::U64(i))]);
            }
            sink.flush();
            // Live file never holds more than cap + one line.
            let live = std::fs::metadata(&path).unwrap().len();
            assert!(live <= 256 + 128, "live file too big: {live}");
        }
        assert!(rotated.exists(), "rotation must produce a .1 file");
        // Every line in both generations parses, and together they hold
        // all 64 events exactly once, in order.
        let mut all = String::new();
        all.push_str(&std::fs::read_to_string(&rotated).unwrap());
        all.push_str(&std::fs::read_to_string(&path).unwrap());
        // `.1` keeps only the most recent rotated generation, so early
        // lines may be gone, but the tail must be complete and ordered.
        let is: Vec<u64> = all
            .lines()
            .map(|l| {
                let v = crate::json::parse(l).expect("valid line");
                v.get("fields")
                    .and_then(|f| f.get("i"))
                    .and_then(|x| x.as_f64())
                    .unwrap() as u64
            })
            .collect();
        assert!(!is.is_empty());
        assert_eq!(*is.last().unwrap(), 63, "tail must survive rotation");
        for w in is.windows(2) {
            assert_eq!(w[1], w[0] + 1, "lines out of order: {is:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warn_events_flush_through_immediately() {
        let dir = std::env::temp_dir().join(format!("tpp-obs-warnflush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warn.jsonl");
        let sink = JsonlSink::create(&path, Level::Trace).unwrap();
        sink.record(1, Level::Info, "buffered", &[]);
        sink.record(2, Level::Warn, "flushed", &[]);
        // No explicit flush, sink still alive: the warn (and everything
        // before it) must already be on disk.
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("buffered"));
        assert!(body.contains("flushed"));
        drop(sink);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropping_the_sink_flushes_buffered_lines() {
        let dir = std::env::temp_dir().join(format!("tpp-obs-dropflush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drop.jsonl");
        {
            let sink = JsonlSink::create(&path, Level::Trace).unwrap();
            sink.record(1, Level::Info, "only.on.drop", &[]);
            // BufWriter default capacity far exceeds one short line, so
            // nothing reaches disk until the drop below.
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("only.on.drop"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let path = std::env::temp_dir().join(format!("tpp-obs-sink-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path, Level::Trace).unwrap();
            sink.record(1, Level::Info, "a", &[]);
            sink.record(2, Level::Debug, "b", &[("k", Value::Bool(true))]);
            sink.flush();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            crate::json::parse(l).expect("every line parses");
        }
        std::fs::remove_file(&path).ok();
    }
}
