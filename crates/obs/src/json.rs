//! Minimal JSON support: string escaping for the JSONL sink and a
//! validating parser used by tests and tooling.
//!
//! Hand-rolled because the observability layer must stay std-only (the
//! repo's offline policy); this is a strict subset of RFC 8259 —
//! everything the sinks emit parses, and everything that parses is
//! valid JSON.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes `s` into a quoted JSON string, appended to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` into a freshly-allocated quoted JSON string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted for deterministic comparison).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit at byte {}", self.pos))?;
                        }
                        // Surrogate pairs are not emitted by the sinks;
                        // lone surrogates decode to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte {b:#04x} in string"));
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid utf-8 lead byte".into()),
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated utf-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips_through_parse() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnewline\n",
            "unicode é λ",
            "ctrl\u{1}",
        ] {
            let escaped = escape(s);
            match parse(&escaped).unwrap() {
                Json::Str(back) => assert_eq!(back, s),
                other => panic!("expected string, got {other:?}"),
            }
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": ""}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0)
            ]))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert_eq!(v.get("e").and_then(Json::as_str), Some(""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a': 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} extra").is_err());
        assert!(parse("  {\"k\": 1}  ").is_ok());
    }
}
