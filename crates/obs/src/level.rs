//! Event severity levels.

use std::fmt;
use std::str::FromStr;

/// Severity of an event, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// High-level lifecycle (sessions, experiments, datasets).
    Info = 3,
    /// Per-episode detail.
    Debug = 4,
    /// Per-step detail.
    Trace = 5,
}

impl Level {
    /// Lowercase name (`"info"`, …) as used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Reconstructs a level from its `repr` (inverse of `as u8`).
    pub(crate) fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown level {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_severity_descending() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn parse_roundtrip() {
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(l.as_str().parse::<Level>().unwrap(), l);
            assert_eq!(Level::from_u8(l as u8), Some(l));
        }
        assert!("loud".parse::<Level>().is_err());
    }
}
