//! Flight recorder: a constant-memory ring buffer of the last N
//! events, dumped on demand for post-mortems.
//!
//! The serving daemon cannot afford to log every event of every request
//! to disk, but when something goes wrong — a panic is caught, a
//! request is shed, a deadline blows — the events *leading up to* the
//! incident are exactly what a post-mortem needs. The
//! [`FlightRecorder`] is a [`Sink`] that keeps the most recent
//! `capacity` events as rendered JSONL lines in a lock-protected ring;
//! memory use is bounded by the line sizes of the last N events and
//! nothing is written anywhere until [`dump_jsonl`](FlightRecorder::dump_jsonl)
//! or [`dump_to_file`](FlightRecorder::dump_to_file) is called.
//!
//! Install it alongside the normal sinks:
//!
//! ```
//! use std::sync::Arc;
//! use tpp_obs as obs;
//!
//! let recorder = Arc::new(obs::FlightRecorder::new(128, obs::Level::Debug));
//! obs::add_sink(recorder.clone());
//! obs::obs_event!(obs::Level::Info, "request.start", id = 7);
//! let dump = recorder.dump_jsonl();
//! assert!(dump.contains("request.start"));
//! obs::clear_sinks();
//! ```

use crate::level::Level;
use crate::sink::{render_jsonl, Sink};
use crate::value::Value;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A ring-buffer sink holding the last N events (see module docs).
pub struct FlightRecorder {
    ring: Mutex<VecDeque<String>>,
    capacity: usize,
    level: Level,
    recorded: AtomicU64,
    dumps: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events at or below
    /// `level`. A zero capacity is clamped to 1.
    pub fn new(capacity: usize, level: Level) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            level,
            recorded: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
        }
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including those already evicted).
    pub fn total_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// How many times the ring has been dumped.
    pub fn dump_count(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// The ring's contents, oldest first, as one JSONL document
    /// (newline-terminated lines). The ring is left intact so
    /// overlapping incidents each get full context.
    pub fn dump_jsonl(&self) -> String {
        self.dumps.fetch_add(1, Ordering::Relaxed);
        let ring = self.ring.lock().expect("flight ring poisoned");
        let mut out = String::with_capacity(ring.iter().map(|l| l.len() + 1).sum());
        for line in ring.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Writes [`dump_jsonl`](Self::dump_jsonl) to `path` (created or
    /// truncated), fsync-free best effort.
    pub fn dump_to_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let body = self.dump_jsonl();
        let mut f = std::fs::File::create(path)?;
        f.write_all(body.as_bytes())?;
        f.flush()
    }

    /// Drops every held event (counters are preserved).
    pub fn clear(&self) {
        self.ring.lock().expect("flight ring poisoned").clear();
    }
}

impl Sink for FlightRecorder {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, t_us: u64, level: Level, name: &str, fields: &[(&'static str, Value)]) {
        let line = render_jsonl(t_us, level, name, fields);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_n(rec: &FlightRecorder, n: u64) {
        for i in 0..n {
            rec.record(i, Level::Info, "tick", &[("i", Value::U64(i))]);
        }
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let rec = FlightRecorder::new(4, Level::Debug);
        record_n(&rec, 10);
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.total_recorded(), 10);
        let dump = rec.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        // Oldest-first, and only the last four survive.
        for (idx, expect_i) in (6..10).enumerate() {
            let v = crate::json::parse(lines[idx]).unwrap();
            assert_eq!(
                v.get("fields")
                    .and_then(|f| f.get("i"))
                    .and_then(|x| x.as_f64()),
                Some(expect_i as f64),
            );
        }
    }

    #[test]
    fn dump_preserves_the_ring_and_counts() {
        let rec = FlightRecorder::new(8, Level::Debug);
        record_n(&rec, 3);
        let a = rec.dump_jsonl();
        let b = rec.dump_jsonl();
        assert_eq!(a, b, "dumping is non-destructive");
        assert_eq!(rec.dump_count(), 2);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.total_recorded(), 3);
    }

    #[test]
    fn dump_to_file_writes_parseable_jsonl() {
        let rec = FlightRecorder::new(8, Level::Debug);
        record_n(&rec, 5);
        let path = std::env::temp_dir().join(format!("tpp-flight-{}.jsonl", std::process::id()));
        rec.dump_to_file(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 5);
        for line in body.lines() {
            crate::json::parse(line).expect("valid JSONL");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn level_gate_is_respected_via_registry() {
        let _guard = crate::testutil::GLOBAL.lock().unwrap();
        crate::clear_sinks();
        let rec = std::sync::Arc::new(FlightRecorder::new(8, Level::Info));
        crate::add_sink(rec.clone());
        crate::obs_event!(Level::Info, "kept");
        crate::obs_event!(Level::Debug, "filtered");
        crate::clear_sinks();
        let dump = rec.dump_jsonl();
        assert!(dump.contains("kept"));
        assert!(!dump.contains("filtered"));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let rec = FlightRecorder::new(0, Level::Debug);
        record_n(&rec, 3);
        assert_eq!(rec.len(), 1);
    }
}
