//! The metrics registry: atomic counters, gauges, and log-bucketed
//! histograms with percentile summaries.
//!
//! All instruments are lock-free on the hot path (one atomic RMW per
//! update); the registry itself takes a mutex only on first lookup, so
//! callers that care should resolve a handle once and cache it.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically-increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: values 0–3 exactly, then four
/// sub-buckets per power-of-two octave up to `u64::MAX`.
pub const N_BUCKETS: usize = 252;

/// A log-bucketed histogram over `u64` samples.
///
/// Buckets 0–3 hold the exact values 0–3; above that each power-of-two
/// octave `[2^k, 2^(k+1))` is split into four equal sub-buckets, so the
/// relative quantization error of any reported quantile is at most
/// 12.5% (half a sub-bucket). 252 buckets cover the full `u64` range.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // floor(log2 v) >= 2
    let sub = ((v >> (octave - 2)) & 3) as usize;
    (octave - 1) * 4 + sub
}

/// The `[lower, upper)` value range of bucket `i` (upper is saturating
/// at `u64::MAX` for the top octave).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 4 {
        return (i as u64, i as u64 + 1);
    }
    let octave = i / 4 + 1;
    let base = 1u64 << octave;
    let step = base / 4;
    let lower = base + (i % 4) as u64 * step;
    (lower, lower.saturating_add(step))
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records `n` samples of the same value in one shot. Lets hot loops
    /// tally locally and flush once, avoiding per-iteration contention
    /// on the shared atomics.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as integer microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) estimated from bucket
    /// midpoints; exact for values below 4. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        if rank >= n {
            return self.max();
        }
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i);
                // Midpoint, clamped by the exact observed maximum.
                return (lo + (hi - lo) / 2).min(self.max());
            }
        }
        self.max()
    }

    /// A point-in-time summary of the histogram.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Snapshot of one histogram's distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named instruments.
///
/// A process-wide instance lives behind [`crate::metrics`]; independent
/// registries can be created for tests.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Instruments>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                inner.counters.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.gauges.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                inner.gauges.insert(name.to_owned(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.histograms.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                inner.histograms.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// Drops every registered instrument (tests, or run separation).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner = Instruments::default();
    }

    /// Renders a human-readable summary table (sorted by name; empty
    /// sections omitted).
    pub fn render_text(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::new();
        if !inner.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, c) in &inner.counters {
                let _ = writeln!(out, "  {name:<40} {}", c.get());
            }
        }
        if !inner.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, g) in &inner.gauges {
                let _ = writeln!(out, "  {name:<40} {}", g.get());
            }
        }
        if !inner.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &inner.histograms {
                let s = h.summary();
                let _ = writeln!(
                    out,
                    "  {name:<40} count={} mean={:.1} p50={} p95={} p99={} max={}",
                    s.count, s.mean, s.p50, s.p95, s.p99, s.max
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Renders the whole registry as one JSON object.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::escape_into(name, &mut out);
            let _ = write!(out, ":{}", c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::escape_into(name, &mut out);
            let v = g.get();
            if v.is_finite() {
                let _ = write!(out, ":{v}");
            } else {
                out.push_str(":null");
            }
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::escape_into(name, &mut out);
            let s = h.summary();
            let mean = if s.mean.is_finite() { s.mean } else { 0.0 };
            let _ = write!(
                out,
                ":{{\"count\":{},\"mean\":{mean},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                s.count, s.p50, s.p95, s.p99, s.max
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_contiguous_and_correct() {
        // Exact buckets below 4.
        for v in 0u64..4 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
        // Every bucket's bounds contain exactly the values that map to
        // it, and consecutive buckets tile the line with no gaps.
        for i in 4..N_BUCKETS - 4 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi - 1), i, "last value of bucket {i}");
            let (next_lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi, next_lo, "gap between buckets {i} and {}", i + 1);
        }
        // Spot-check the first octaves: [4,5) [5,6) [6,7) [7,8) [8,10)…
        assert_eq!(bucket_bounds(4), (4, 5));
        assert_eq!(bucket_bounds(7), (7, 8));
        assert_eq!(bucket_bounds(8), (8, 10));
        assert_eq!(bucket_index(9), 8);
        assert_eq!(bucket_index(10), 9);
        // Top of the range stays in bounds.
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn quantiles_match_exact_percentiles_within_bucket_error() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // 12.5% relative quantization error bound.
        for (q, exact) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(
                err <= 0.125,
                "q={q}: got {got}, exact {exact}, err {err:.3}"
            );
        }
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantiles_exact_for_small_values() {
        let h = Histogram::default();
        for v in [0u64, 0, 1, 2, 2, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(0.01), 0);
        assert_eq!(h.quantile(1.0), 3);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p95, s.p99, s.max), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn registry_reuses_instruments_by_name() {
        let m = Metrics::new();
        m.counter("a").inc();
        m.counter("a").add(2);
        assert_eq!(m.counter("a").get(), 3);
        m.gauge("g").set(1.5);
        assert_eq!(m.gauge("g").get(), 1.5);
        m.histogram("h").record(7);
        assert_eq!(m.histogram("h").count(), 1);
    }

    #[test]
    fn render_json_is_valid_json() {
        let m = Metrics::new();
        m.counter("c.one").add(5);
        m.gauge("g\"quoted").set(0.25);
        m.histogram("h.lat").record(100);
        let parsed = crate::json::parse(&m.render_json()).expect("valid json");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("c.one"))
                .and_then(|v| v.as_f64()),
            Some(5.0)
        );
        assert!(parsed
            .get("gauges")
            .and_then(|g| g.get("g\"quoted"))
            .is_some());
        let h = parsed
            .get("histograms")
            .and_then(|h| h.get("h.lat"))
            .unwrap();
        assert_eq!(h.get("count").and_then(|v| v.as_f64()), Some(1.0));
    }

    #[test]
    fn render_text_lists_everything() {
        let m = Metrics::new();
        assert!(m.render_text().contains("no metrics"));
        m.counter("hits").inc();
        m.histogram("lat").record(3);
        let text = m.render_text();
        assert!(text.contains("hits"));
        assert!(text.contains("p95"));
        m.reset();
        assert!(m.render_text().contains("no metrics"));
    }
}
