//! The metrics registry: atomic counters, gauges, and log-bucketed
//! histograms with percentile summaries.
//!
//! All instruments are lock-free on the hot path (one atomic RMW per
//! update); the registry itself takes a mutex only on first lookup, so
//! callers that care should resolve a handle once and cache it.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically-increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: values 0–3 exactly, then four
/// sub-buckets per power-of-two octave up to `u64::MAX`.
pub const N_BUCKETS: usize = 252;

/// A log-bucketed histogram over `u64` samples.
///
/// Buckets 0–3 hold the exact values 0–3; above that each power-of-two
/// octave `[2^k, 2^(k+1))` is split into four equal sub-buckets, so the
/// relative quantization error of any reported quantile is at most
/// 12.5% (half a sub-bucket). 252 buckets cover the full `u64` range.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // floor(log2 v) >= 2
    let sub = ((v >> (octave - 2)) & 3) as usize;
    (octave - 1) * 4 + sub
}

/// The `[lower, upper)` value range of bucket `i` (upper is saturating
/// at `u64::MAX` for the top octave).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 4 {
        return (i as u64, i as u64 + 1);
    }
    let octave = i / 4 + 1;
    let base = 1u64 << octave;
    let step = base / 4;
    let lower = base + (i % 4) as u64 * step;
    (lower, lower.saturating_add(step))
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records `n` samples of the same value in one shot. Lets hot loops
    /// tally locally and flush once, avoiding per-iteration contention
    /// on the shared atomics.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as integer microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`), linearly interpolated within
    /// the log bucket the rank falls in (assuming samples spread
    /// uniformly across the bucket); exact for values below 4 and for
    /// piecewise-uniform data, and never worse than one bucket width
    /// (12.5% relative) otherwise. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        if rank >= n {
            return self.max();
        }
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let frac = (rank - cum) as f64 / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                // Stay inside the bucket and below the exact observed
                // maximum (the bucket's top may overshoot reality).
                let est = est.clamp(lo as f64, (hi - 1) as f64) as u64;
                return est.min(self.max());
            }
            cum += c;
        }
        self.max()
    }

    /// Occupied buckets as `(bucket index, sample count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect()
    }

    /// Merges externally-recorded bucket occupancy into this histogram
    /// (snapshot import — the inverse of [`Self::nonzero_buckets`]).
    /// Out-of-range bucket indices are ignored.
    pub fn absorb_parts(&self, buckets: &[(usize, u64)], sum: u64, max: u64) {
        let mut n = 0u64;
        for &(i, c) in buckets {
            if i < N_BUCKETS && c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
                n += c;
            }
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        self.max.fetch_max(max, Ordering::Relaxed);
    }

    /// A point-in-time summary of the histogram.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

/// Snapshot of one histogram's distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// 99.9th-percentile estimate.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named instruments.
///
/// A process-wide instance lives behind [`crate::metrics`]; independent
/// registries can be created for tests.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Instruments>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                inner.counters.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.gauges.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                inner.gauges.insert(name.to_owned(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.histograms.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                inner.histograms.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// Drops every registered instrument (tests, or run separation).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner = Instruments::default();
    }

    /// Renders a human-readable summary table (sorted by name; empty
    /// sections omitted).
    pub fn render_text(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::new();
        if !inner.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, c) in &inner.counters {
                let _ = writeln!(out, "  {name:<40} {}", c.get());
            }
        }
        if !inner.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, g) in &inner.gauges {
                let _ = writeln!(out, "  {name:<40} {}", g.get());
            }
        }
        if !inner.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &inner.histograms {
                let s = h.summary();
                let _ = writeln!(
                    out,
                    "  {name:<40} count={} mean={:.1} p50={} p95={} p99={} p999={} max={}",
                    s.count, s.mean, s.p50, s.p95, s.p99, s.p999, s.max
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Renders the whole registry as one JSON object.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::escape_into(name, &mut out);
            let _ = write!(out, ":{}", c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::escape_into(name, &mut out);
            let v = g.get();
            if v.is_finite() {
                let _ = write!(out, ":{v}");
            } else {
                out.push_str(":null");
            }
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::escape_into(name, &mut out);
            let s = h.summary();
            let mean = if s.mean.is_finite() { s.mean } else { 0.0 };
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"mean\":{mean},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"max\":{},\"buckets\":[",
                s.count,
                h.sum(),
                s.p50,
                s.p95,
                s.p99,
                s.p999,
                s.max
            );
            for (j, (bi, c)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bi},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (metric names sanitized to `[a-zA-Z0-9_:]`; histogram buckets
    /// cumulative with an explicit `+Inf`).
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::new();
        for (name, c) in &inner.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {}", c.get());
        }
        for (name, g) in &inner.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let v = g.get();
            if v.is_finite() {
                let _ = writeln!(out, "{n} {v}");
            } else {
                let _ = writeln!(out, "{n} NaN");
            }
        }
        for (name, h) in &inner.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (bi, c) in h.nonzero_buckets() {
                cum += c;
                let (_, hi) = bucket_bounds(bi);
                let _ = writeln!(out, "{n}_bucket{{le=\"{hi}\"}} {cum}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{n}_sum {}", h.sum());
            let _ = writeln!(out, "{n}_count {}", h.count());
        }
        out
    }

    /// Rebuilds a registry from a parsed [`Self::render_json`] document,
    /// so offline tooling (`rl-planner obs`) can re-render a snapshot
    /// in any format. Histogram entries without a `buckets` array (older
    /// snapshots) keep only their counters' worth of information and are
    /// skipped. Errors when `snapshot` is not an object.
    pub fn from_snapshot(snapshot: &crate::json::Json) -> Result<Metrics, String> {
        use crate::json::Json;
        if !matches!(snapshot, Json::Obj(_)) {
            return Err("metrics snapshot must be a JSON object".into());
        }
        let m = Metrics::new();
        if let Some(Json::Obj(map)) = snapshot.get("counters") {
            for (name, v) in map {
                if let Some(n) = v.as_f64() {
                    m.counter(name).add(n as u64);
                }
            }
        }
        if let Some(Json::Obj(map)) = snapshot.get("gauges") {
            for (name, v) in map {
                m.gauge(name).set(v.as_f64().unwrap_or(f64::NAN));
            }
        }
        if let Some(Json::Obj(map)) = snapshot.get("histograms") {
            for (name, v) in map {
                let Some(Json::Arr(buckets)) = v.get("buckets") else {
                    continue;
                };
                let parts: Vec<(usize, u64)> = buckets
                    .iter()
                    .filter_map(|pair| match pair {
                        Json::Arr(p) if p.len() == 2 => {
                            let bi = p[0].as_f64()? as usize;
                            let c = p[1].as_f64()? as u64;
                            Some((bi, c))
                        }
                        _ => None,
                    })
                    .collect();
                let sum = v.get("sum").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let max = v.get("max").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                m.histogram(name).absorb_parts(&parts, sum, max);
            }
        }
        Ok(m)
    }
}

/// Sanitizes a registry name into the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`); every invalid char becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_contiguous_and_correct() {
        // Exact buckets below 4.
        for v in 0u64..4 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
        // Every bucket's bounds contain exactly the values that map to
        // it, and consecutive buckets tile the line with no gaps.
        for i in 4..N_BUCKETS - 4 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi - 1), i, "last value of bucket {i}");
            let (next_lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi, next_lo, "gap between buckets {i} and {}", i + 1);
        }
        // Spot-check the first octaves: [4,5) [5,6) [6,7) [7,8) [8,10)…
        assert_eq!(bucket_bounds(4), (4, 5));
        assert_eq!(bucket_bounds(7), (7, 8));
        assert_eq!(bucket_bounds(8), (8, 10));
        assert_eq!(bucket_index(9), 8);
        assert_eq!(bucket_index(10), 9);
        // Top of the range stays in bounds.
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn quantiles_match_exact_percentiles_within_bucket_error() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // 12.5% relative quantization error bound.
        for (q, exact) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(
                err <= 0.125,
                "q={q}: got {got}, exact {exact}, err {err:.3}"
            );
        }
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantiles_exact_for_small_values() {
        let h = Histogram::default();
        for v in [0u64, 0, 1, 2, 2, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(0.01), 0);
        assert_eq!(h.quantile(1.0), 3);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p95, s.p99, s.max), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn registry_reuses_instruments_by_name() {
        let m = Metrics::new();
        m.counter("a").inc();
        m.counter("a").add(2);
        assert_eq!(m.counter("a").get(), 3);
        m.gauge("g").set(1.5);
        assert_eq!(m.gauge("g").get(), 1.5);
        m.histogram("h").record(7);
        assert_eq!(m.histogram("h").count(), 1);
    }

    #[test]
    fn render_json_is_valid_json() {
        let m = Metrics::new();
        m.counter("c.one").add(5);
        m.gauge("g\"quoted").set(0.25);
        m.histogram("h.lat").record(100);
        let parsed = crate::json::parse(&m.render_json()).expect("valid json");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("c.one"))
                .and_then(|v| v.as_f64()),
            Some(5.0)
        );
        assert!(parsed
            .get("gauges")
            .and_then(|g| g.get("g\"quoted"))
            .is_some());
        let h = parsed
            .get("histograms")
            .and_then(|h| h.get("h.lat"))
            .unwrap();
        assert_eq!(h.get("count").and_then(|v| v.as_f64()), Some(1.0));
    }

    #[test]
    fn interpolated_quantiles_pin_known_distributions() {
        // Uniform over 1..=1024: every octave's sub-buckets are fully
        // and evenly populated, so linear interpolation is exact to ±1
        // (the rank-to-value map is off-by-one at bucket edges).
        let h = Histogram::default();
        for v in 1..=1024u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 512i64), (0.99, 1014), (0.999, 1023)] {
            let got = h.quantile(q) as i64;
            assert!((got - exact).abs() <= 1, "q={q}: got {got}, exact {exact}");
        }
        // At p999 a midpoint estimate would sit mid-bucket ([896,1024) →
        // 960, 6% low); interpolation must do strictly better than half
        // a bucket.
        assert!(h.quantile(0.999) >= 1020);

        // Uniform 1..=1000 (top bucket only partially filled): the
        // observed-max clamp keeps estimates inside the data.
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!((h.quantile(0.5) as i64 - 500).abs() <= 1);
        assert!(h.quantile(0.99) <= 1000);
        assert!(h.quantile(0.999) <= 1000);
        assert_eq!(h.quantile(1.0), 1000);

        // A spike: every sample identical → every quantile is that
        // value's bucket floor at worst, clamped by max to the exact
        // value.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(777);
        }
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(h.quantile(q), 777, "q={q}");
        }
    }

    #[test]
    fn summary_includes_p999() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert!(s.p999 >= s.p99);
        assert!(s.p999 <= s.max);
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let m = Metrics::new();
        m.counter("serve.requests").add(7);
        m.gauge("serve.queue_depth").set(3.0);
        let h = m.histogram("serve.queue_wait_us");
        h.record(5);
        h.record(5);
        h.record(100);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE serve_requests counter"));
        assert!(text.contains("serve_requests 7"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth 3"));
        assert!(text.contains("# TYPE serve_queue_wait_us histogram"));
        // Cumulative buckets: the 5s (bucket [5,6) → le="6") then the
        // 100 (bucket [96,112) → le="112"), then +Inf == count.
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"6\"} 2"));
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"112\"} 3"));
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("serve_queue_wait_us_sum 110"));
        assert!(text.contains("serve_queue_wait_us_count 3"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "unsanitized name {bare:?}"
            );
        }
    }

    #[test]
    fn json_snapshot_round_trips_through_from_snapshot() {
        let m = Metrics::new();
        m.counter("hits").add(41);
        m.gauge("depth").set(2.5);
        let h = m.histogram("lat.us");
        for v in [3u64, 90, 90, 1500] {
            h.record(v);
        }
        let snapshot = crate::json::parse(&m.render_json()).unwrap();
        let back = Metrics::from_snapshot(&snapshot).unwrap();
        assert_eq!(back.counter("hits").get(), 41);
        assert_eq!(back.gauge("depth").get(), 2.5);
        let hb = back.histogram("lat.us");
        assert_eq!(hb.count(), 4);
        assert_eq!(hb.sum(), h.sum());
        assert_eq!(hb.max(), 1500);
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(hb.quantile(q), h.quantile(q), "q={q}");
        }
        // Re-rendering the reconstruction matches the original exactly.
        assert_eq!(back.render_json(), m.render_json());
        assert_eq!(back.render_prometheus(), m.render_prometheus());

        assert!(Metrics::from_snapshot(&crate::json::Json::Null).is_err());
    }

    #[test]
    fn render_text_lists_everything() {
        let m = Metrics::new();
        assert!(m.render_text().contains("no metrics"));
        m.counter("hits").inc();
        m.histogram("lat").record(3);
        let text = m.render_text();
        assert!(text.contains("hits"));
        assert!(text.contains("p95"));
        m.reset();
        assert!(m.render_text().contains("no metrics"));
    }
}
