//! Topic extraction: tokenize → drop stopwords → keep noun-like tokens.

use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;

/// Heuristic noun filter.
///
/// We have no POS tagger offline, so we approximate "noun" the way the
/// paper's throwaway pipeline would: keep tokens that are not stopwords,
/// not pure numbers, at least 3 characters long, and not obviously verbal
/// or adverbial (common `-ing`-verb exceptions and `-ly` adverbs are
/// dropped; domain `-ing` nouns like *clustering* are kept via an
/// allowlist).
fn is_noun_like(tok: &str) -> bool {
    if tok.len() < 3 || tok.chars().all(|c| c.is_ascii_digit()) {
        return false;
    }
    if tok.ends_with("ly") && tok.len() > 4 {
        return false;
    }
    if tok.ends_with("ing") {
        // Domain gerunds that act as topic nouns in catalogs.
        const NOUN_ING: &[&str] = &[
            "clustering",
            "computing",
            "engineering",
            "learning",
            "mining",
            "planning",
            "processing",
            "programming",
            "testing",
            "modeling",
            "networking",
            "rendering",
            "scheduling",
        ];
        return NOUN_ING.contains(&tok);
    }
    true
}

/// Extracts topic keywords from a free-text name/description: lowercase
/// tokens, stopwords removed, noun-like tokens only, first-occurrence
/// order, de-duplicated.
pub fn extract_topics(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for tok in tokenize(text) {
        if is_stopword(&tok) || !is_noun_like(&tok) {
            continue;
        }
        if !out.contains(&tok) {
            out.push(tok);
        }
    }
    out
}

/// A reusable extractor with optional extra stopwords and a cap on topics
/// per item, mirroring how a dataset pipeline configures preprocessing
/// once and applies it to every record.
#[derive(Debug, Clone, Default)]
pub struct TopicExtractor {
    extra_stopwords: Vec<String>,
    max_topics_per_item: Option<usize>,
    stemming: bool,
}

impl TopicExtractor {
    /// A fresh extractor with default behaviour.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds dataset-specific stopwords (e.g. a department name that
    /// appears in every course title).
    pub fn with_extra_stopwords<S: Into<String>>(
        mut self,
        words: impl IntoIterator<Item = S>,
    ) -> Self {
        self.extra_stopwords
            .extend(words.into_iter().map(|w| w.into().to_lowercase()));
        self
    }

    /// Caps the number of topics extracted per item.
    pub fn with_max_topics(mut self, max: usize) -> Self {
        self.max_topics_per_item = Some(max);
        self
    }

    /// Enables suffix-stripping so trivially-inflected variants merge
    /// into one topic ("algorithms"/"algorithm").
    pub fn with_stemming(mut self) -> Self {
        self.stemming = true;
        self
    }

    /// Runs extraction over one text.
    pub fn extract(&self, text: &str) -> Vec<String> {
        let mut topics = extract_topics(text);
        if self.stemming {
            let mut stemmed: Vec<String> = Vec::with_capacity(topics.len());
            for t in topics {
                let s = crate::stem::stem(&t);
                if !stemmed.contains(&s) {
                    stemmed.push(s);
                }
            }
            topics = stemmed;
        }
        topics.retain(|t| !self.extra_stopwords.iter().any(|s| s == t));
        if let Some(max) = self.max_topics_per_item {
            topics.truncate(max);
        }
        topics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn course_title_extraction() {
        // "Introduction to Big Data" → {big, data}: "introduction"/"to"
        // are stopwords.
        assert_eq!(
            extract_topics("Introduction to Big Data"),
            vec!["big", "data"]
        );
    }

    #[test]
    fn keeps_domain_gerunds() {
        let t = extract_topics("Machine Learning and Data Mining");
        assert_eq!(t, vec!["machine", "learning", "data", "mining"]);
    }

    #[test]
    fn drops_numbers_and_short_tokens() {
        assert_eq!(extract_topics("CS 675 ML II"), Vec::<String>::new());
    }

    #[test]
    fn drops_adverbs() {
        assert_eq!(
            extract_topics("highly scalable systems"),
            vec!["scalable", "systems"]
        );
    }

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        assert_eq!(
            extract_topics("data structures and data algorithms"),
            vec!["data", "structures", "algorithms"]
        );
    }

    #[test]
    fn extractor_extra_stopwords() {
        let e = TopicExtractor::new().with_extra_stopwords(["data"]);
        assert_eq!(e.extract("Data Mining"), vec!["mining"]);
    }

    #[test]
    fn extractor_stems_and_dedups() {
        let e = TopicExtractor::new().with_stemming();
        assert_eq!(
            e.extract("Algorithms and the Algorithm Zoo"),
            vec!["algorithm", "zoo"]
        );
    }

    #[test]
    fn extractor_caps_topics() {
        let e = TopicExtractor::new().with_max_topics(2);
        assert_eq!(
            e.extract("Cryptography Security Privacy Networks"),
            vec!["cryptography", "security"]
        );
    }
}
