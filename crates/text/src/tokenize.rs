//! Word tokenization.

/// Splits `text` into lowercase word tokens.
///
/// A token is a maximal run of alphanumeric characters, apostrophes and
/// internal hyphens; everything else separates tokens. Tokens are
/// lowercased with Unicode-aware lowercasing so `"Musée"` → `"musée"`.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '\'' || ch == '-' {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            push_token(&mut out, std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        push_token(&mut out, cur);
    }
    out
}

fn push_token(out: &mut Vec<String>, tok: String) {
    // Strip leading/trailing punctuation that slipped in (hyphens,
    // apostrophes) and drop tokens that end up empty.
    let trimmed = tok.trim_matches(|c| c == '\'' || c == '-');
    if !trimmed.is_empty() {
        out.push(trimmed.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punct() {
        assert_eq!(
            tokenize("Data Structures and Algorithms"),
            vec!["data", "structures", "and", "algorithms"]
        );
        assert_eq!(
            tokenize("Security, Privacy & Trust!"),
            vec!["security", "privacy", "trust"]
        );
    }

    #[test]
    fn keeps_internal_hyphens_and_apostrophes() {
        assert_eq!(tokenize("state-of-the-art"), vec!["state-of-the-art"]);
        assert_eq!(tokenize("musée d'orsay"), vec!["musée", "d'orsay"]);
    }

    #[test]
    fn strips_edge_punctuation() {
        assert_eq!(tokenize("-leading trailing-"), vec!["leading", "trailing"]);
        assert_eq!(tokenize("'quoted'"), vec!["quoted"]);
    }

    #[test]
    fn lowercases_unicode() {
        assert_eq!(
            tokenize("Église St-Eustache"),
            vec!["église", "st-eustache"]
        );
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn numbers_survive() {
        assert_eq!(tokenize("CS 675"), vec!["cs", "675"]);
    }
}
