//! Vocabulary construction: turning per-item topic keyword lists into a
//! shared [`tpp_model::TopicVocabulary`] and per-item topic vectors.

use crate::extract::TopicExtractor;
use tpp_model::{ModelError, TopicVector, TopicVocabulary};

/// Accumulates topic keywords over a corpus of item descriptions and
/// builds a shared vocabulary plus per-item vectors.
///
/// Topics are kept in first-seen order (so regenerating the same corpus
/// yields identical topic ids) and can be capped at a target size —
/// the paper fixes `|T|` per dataset (60, 61, 100, 73, 21, 16). When
/// capped, the *most frequent* topics win; ties break by first-seen order.
#[derive(Debug, Clone)]
pub struct VocabularyBuilder {
    extractor: TopicExtractor,
    /// (topic, corpus frequency), in first-seen order.
    topics: Vec<(String, usize)>,
    /// Per-item keyword lists, in insertion order.
    item_topics: Vec<Vec<String>>,
}

impl VocabularyBuilder {
    /// Builder with a default extractor.
    pub fn new() -> Self {
        Self::with_extractor(TopicExtractor::new())
    }

    /// Builder with a configured extractor.
    pub fn with_extractor(extractor: TopicExtractor) -> Self {
        VocabularyBuilder {
            extractor,
            topics: Vec::new(),
            item_topics: Vec::new(),
        }
    }

    /// Extracts topics from one item description and records them.
    /// Returns the item's index in insertion order.
    pub fn add_item(&mut self, description: &str) -> usize {
        let kws = self.extractor.extract(description);
        for kw in &kws {
            if let Some(entry) = self.topics.iter_mut().find(|(t, _)| t == kw) {
                entry.1 += 1;
            } else {
                self.topics.push((kw.clone(), 1));
            }
        }
        self.item_topics.push(kws);
        self.item_topics.len() - 1
    }

    /// Records an item with pre-extracted topic keywords (used when the
    /// dataset generator assigns topics directly).
    pub fn add_item_with_topics<S: Into<String>>(
        &mut self,
        topics: impl IntoIterator<Item = S>,
    ) -> usize {
        let kws: Vec<String> = topics.into_iter().map(Into::into).collect();
        for kw in &kws {
            if let Some(entry) = self.topics.iter_mut().find(|(t, _)| t == kw) {
                entry.1 += 1;
            } else {
                self.topics.push((kw.clone(), 1));
            }
        }
        self.item_topics.push(kws);
        self.item_topics.len() - 1
    }

    /// Number of distinct topics seen so far.
    pub fn distinct_topics(&self) -> usize {
        self.topics.len()
    }

    /// Finalizes into a vocabulary and one topic vector per added item.
    ///
    /// With `max_topics = Some(k)` the vocabulary keeps only the `k` most
    /// frequent topics; item vectors then cover the surviving topics only.
    pub fn build(
        self,
        max_topics: Option<usize>,
    ) -> Result<(TopicVocabulary, Vec<TopicVector>), ModelError> {
        let mut kept: Vec<String> = match max_topics {
            Some(k) if k < self.topics.len() => {
                // Stable selection of top-k by frequency; ties keep
                // first-seen order because sort_by is stable.
                let mut ranked: Vec<(usize, &(String, usize))> =
                    self.topics.iter().enumerate().collect();
                ranked.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(&b.0)));
                let mut chosen: Vec<usize> = ranked.into_iter().take(k).map(|(i, _)| i).collect();
                chosen.sort_unstable(); // restore first-seen order
                chosen
                    .into_iter()
                    .map(|i| self.topics[i].0.clone())
                    .collect()
            }
            _ => self.topics.iter().map(|(t, _)| t.clone()).collect(),
        };
        // Defensive: dedup should never trigger, but vocabulary rejects
        // duplicates anyway.
        kept.dedup();
        let vocabulary = TopicVocabulary::new(kept)?;
        let vectors = self
            .item_topics
            .iter()
            .map(|kws| {
                let mut v = vocabulary.zero_vector();
                for kw in kws {
                    if let Some(id) = vocabulary.id_of(kw) {
                        v.set(id);
                    }
                }
                v
            })
            .collect();
        Ok((vocabulary, vectors))
    }
}

impl Default for VocabularyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_vocab_and_vectors() {
        let mut b = VocabularyBuilder::new();
        let i0 = b.add_item("Data Mining");
        let i1 = b.add_item("Machine Learning");
        let i2 = b.add_item("Data Analytics");
        assert_eq!((i0, i1, i2), (0, 1, 2));
        assert_eq!(b.distinct_topics(), 5); // data, mining, machine, learning, analytics
        let (voc, vecs) = b.build(None).unwrap();
        assert_eq!(voc.len(), 5);
        assert_eq!(vecs.len(), 3);
        // "data" is topic 0 and appears in items 0 and 2.
        let data = voc.id_of("data").unwrap();
        assert!(vecs[0].get(data) && vecs[2].get(data) && !vecs[1].get(data));
    }

    #[test]
    fn cap_keeps_most_frequent() {
        let mut b = VocabularyBuilder::new();
        b.add_item("data mining");
        b.add_item("data analytics");
        b.add_item("data visualization");
        let (voc, vecs) = b.build(Some(2)).unwrap();
        assert_eq!(voc.len(), 2);
        // "data" (freq 3) survives; "mining" (freq 1, first-seen) is the
        // tie-break winner among the singletons.
        assert!(voc.id_of("data").is_some());
        assert!(voc.id_of("mining").is_some());
        // Vectors shrink accordingly: item 2 only covers "data" now.
        assert_eq!(vecs[2].count_ones(), 1);
    }

    #[test]
    fn pre_extracted_topics_path() {
        let mut b = VocabularyBuilder::new();
        b.add_item_with_topics(["museum", "art"]);
        b.add_item_with_topics(["museum", "river"]);
        let (voc, vecs) = b.build(None).unwrap();
        assert_eq!(voc.len(), 3);
        assert_eq!(vecs[0].count_ones(), 2);
        assert_eq!(
            vecs[0].intersection_count(&vecs[1]),
            1 // shared "museum"
        );
    }

    #[test]
    fn deterministic_topic_ids() {
        let build = || {
            let mut b = VocabularyBuilder::new();
            b.add_item("alpha beta");
            b.add_item("beta gamma");
            b.build(None).unwrap().0
        };
        let v1 = build();
        let v2 = build();
        assert_eq!(v1.names(), v2.names());
    }

    #[test]
    fn empty_builder_builds_empty_vocab() {
        let (voc, vecs) = VocabularyBuilder::new().build(None).unwrap();
        assert!(voc.is_empty());
        assert!(vecs.is_empty());
    }
}
