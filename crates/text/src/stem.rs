//! A light English suffix-stripper (Porter-inspired, deliberately
//! conservative).
//!
//! Used by the vocabulary builder to merge trivially-inflected topic
//! variants ("algorithms"/"algorithm", "networks"/"network") so the
//! fixed-size topic vocabularies the paper uses (60/61/100/73) aren't
//! wasted on plural/singular duplicates. Only the safest rules are
//! applied — over-stemming would merge distinct topics, which is worse
//! than the duplication it fixes.

/// Stems one lowercase token.
pub fn stem(word: &str) -> String {
    let w = word;
    // Short tokens are left alone: stripping "s" from "as"/"its" etc.
    // does more harm than good.
    if w.len() <= 3 {
        return w.to_owned();
    }
    // -sses → -ss  (classes → class)
    if let Some(base) = w.strip_suffix("sses") {
        return format!("{base}ss");
    }
    // -ies → -y  (queries → query)
    if let Some(base) = w.strip_suffix("ies") {
        if base.len() >= 2 {
            return format!("{base}y");
        }
    }
    // -ness → ∅ (robustness → robust)
    if let Some(base) = w.strip_suffix("ness") {
        if base.len() >= 4 {
            return base.to_owned();
        }
    }
    // plain plural -s (but not -ss, -us, -is: "class", "corpus", "basis")
    if w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") && !w.ends_with("is") {
        return w[..w.len() - 1].to_owned();
    }
    w.to_owned()
}

/// Stems every token in place and returns the list (convenience for
/// pipelines).
pub fn stem_all<S: AsRef<str>>(tokens: &[S]) -> Vec<String> {
    tokens.iter().map(|t| stem(t.as_ref())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_nouns_merge() {
        assert_eq!(stem("algorithms"), "algorithm");
        assert_eq!(stem("networks"), "network");
        assert_eq!(stem("databases"), "database");
    }

    #[test]
    fn ies_to_y() {
        assert_eq!(stem("queries"), "query");
        assert_eq!(stem("libraries"), "library");
    }

    #[test]
    fn sses_to_ss() {
        assert_eq!(stem("classes"), "class");
        assert_eq!(stem("processes"), "process");
    }

    #[test]
    fn ness_stripped() {
        assert_eq!(stem("robustness"), "robust");
    }

    #[test]
    fn protected_endings_untouched() {
        assert_eq!(stem("class"), "class");
        assert_eq!(stem("corpus"), "corpus");
        assert_eq!(stem("analysis"), "analysis");
    }

    #[test]
    fn short_tokens_untouched() {
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("its"), "its");
        assert_eq!(stem("gas"), "gas");
    }

    #[test]
    fn stem_all_maps() {
        assert_eq!(
            stem_all(&["graphs", "queries", "data"]),
            vec!["graph", "query", "data"]
        );
    }

    #[test]
    fn idempotent() {
        for w in ["algorithms", "queries", "classes", "robustness", "data"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "stem not idempotent on {w}");
        }
    }
}
