//! English stopword list.
//!
//! Covers function words plus the catalog boilerplate that appears in
//! course titles ("introduction", "advanced", "topics", department codes)
//! — the tokens the paper's preprocessing removes before forming topic
//! vocabularies.

/// Alphabetically sorted stopword list (binary-searchable).
static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "advanced",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "applications",
    "applied",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "co-op",
    "could",
    "course",
    "cs",
    "de",
    "des",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "du",
    "during",
    "each",
    "et",
    "few",
    "first",
    "for",
    "foundations",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "him",
    "his",
    "how",
    "i",
    "if",
    "ii",
    "iii",
    "in",
    "independent",
    "interactive",
    "into",
    "intro",
    "introduction",
    "is",
    "it",
    "its",
    "iv",
    "la",
    "le",
    "les",
    "master's",
    "math",
    "me",
    "more",
    "most",
    "ms&e",
    "my",
    "new",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "out",
    "over",
    "own",
    "principles",
    "programs",
    "project",
    "s",
    "same",
    "seminar",
    "she",
    "should",
    "so",
    "some",
    "special",
    "st",
    "stats",
    "study",
    "such",
    "techniques",
    "than",
    "that",
    "the",
    "their",
    "them",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "topics",
    "under",
    "until",
    "up",
    "using",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "with",
    "you",
    "your",
];

/// `true` when `word` (already lowercased) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn common_function_words() {
        for w in ["the", "and", "of", "with", "to"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn catalog_boilerplate() {
        for w in ["introduction", "advanced", "topics", "course", "cs"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["algorithms", "clustering", "museum", "cryptography"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }
}
