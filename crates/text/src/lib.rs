//! # tpp-text
//!
//! Minimal text substrate used to derive topic vocabularies from item
//! descriptions, reproducing the paper's preprocessing: *"To form topic
//! vectors, we extract nouns from course names and removed stopwords"*
//! (§IV-A1).
//!
//! No NLP crates are available offline, so tokenization, stopword
//! filtering, a suffix-heuristic noun filter and vocabulary construction
//! are implemented from scratch. The heuristics are deliberately simple —
//! the paper's pipeline is equally simple — and deterministic, which is
//! what the seeded dataset generators require.

#![warn(missing_docs)]

pub mod extract;
pub mod stem;
pub mod stopwords;
pub mod tokenize;
pub mod vocab;

pub use extract::{extract_topics, TopicExtractor};
pub use stem::{stem, stem_all};
pub use stopwords::is_stopword;
pub use tokenize::tokenize;
pub use vocab::VocabularyBuilder;
