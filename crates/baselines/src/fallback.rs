//! Last-resort partial planning for the serving fallback chain.
//!
//! When both the learned policy and the EDA baseline fail (panic,
//! corrupt checkpoint, expired deadline), the serving layer must still
//! answer with *something* rather than an empty error. This module is
//! that floor: a deliberately boring greedy walk with no RNG, no
//! learned state, and no panicking operations, so it cannot itself
//! become a failure mode. Plans it emits are tagged `degraded: true`
//! by the caller — the contract is "always a valid prefix", not "a
//! good plan".

use tpp_core::{PlannerParams, TppEnv};
use tpp_model::{ItemId, Plan, PlanningInstance};
use tpp_rl::Environment;

/// Produces a best-effort partial plan starting at `start`.
///
/// Fully deterministic (ties break toward the lowest action index) and
/// allocation-bounded; every step is validated by the environment, so
/// whatever prefix comes back satisfies the hard constraints it had
/// room to satisfy. The walk stops as soon as no valid action remains
/// or the environment reports `done`, and never exceeds `max_steps`
/// actions past the start item.
pub fn degraded_partial_plan(
    instance: &PlanningInstance,
    params: &PlannerParams,
    start: ItemId,
    max_steps: usize,
) -> Plan {
    let mut env = TppEnv::new(instance, params);
    env.reset(start.index());
    let mut actions = Vec::with_capacity(instance.catalog.len());
    for _ in 0..max_steps {
        env.valid_actions(&mut actions);
        // Lowest-index valid action: no reward peeking (reward code
        // could be the thing that is broken), no RNG, no float compare.
        let Some(&a) = actions.first() else { break };
        if env.step(a).done {
            break;
        }
    }
    env.plan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_datagen::defaults::{NYC_SEED, UNIV1_SEED};

    #[test]
    fn partial_plan_is_deterministic_and_valid_prefix() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let params = PlannerParams::univ1_defaults();
        let start = inst.default_start.unwrap();
        let a = degraded_partial_plan(&inst, &params, start, 64);
        let b = degraded_partial_plan(&inst, &params, start, 64);
        assert_eq!(a, b);
        assert_eq!(a.items()[0], start);
        assert!(!a.is_empty());
        // Every step was environment-validated, so no duplicates.
        let mut seen = std::collections::HashSet::new();
        for &id in a.items() {
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn max_steps_bounds_the_walk() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let params = PlannerParams::univ1_defaults();
        let start = inst.default_start.unwrap();
        let plan = degraded_partial_plan(&inst, &params, start, 2);
        // start + at most 2 steps.
        assert!(plan.len() <= 3, "got {}", plan.len());
    }

    #[test]
    fn zero_steps_yields_just_the_start() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let params = PlannerParams::univ1_defaults();
        let start = inst.default_start.unwrap();
        let plan = degraded_partial_plan(&inst, &params, start, 0);
        assert_eq!(plan.items(), &[start]);
    }

    #[test]
    fn trip_partial_plan_respects_budgets() {
        let d = tpp_datagen::nyc(NYC_SEED);
        let params = PlannerParams::trip_defaults();
        let start = d.instance.default_start.unwrap();
        let plan = degraded_partial_plan(&d.instance, &params, start, 64);
        assert!(plan.total_credits(&d.instance.catalog) <= d.instance.hard.credits + 1e-9);
    }
}
