//! # tpp-baselines
//!
//! The three comparison points of the paper's evaluation (§IV-A2):
//!
//! * [`omega`] — the adapted **OMEGA** sequence recommender \[16\]:
//!   topological ordering + greedy edge selection over a topic-coverage
//!   matrix, wrapped in the paper's two-step gap-prefix + OMEGA-suffix
//!   scheme. OMEGA is not constraint-aware, and (as the paper reports)
//!   fails the hard constraints most of the time.
//! * [`eda`] — the **EDA** next-step baseline \[17\]: at every step take
//!   the action with the highest Eq. 2 reward, breaking ties uniformly at
//!   random. Myopic: no policy, no look-ahead.
//! * [`gold`] — the **gold standard**: a constraint-exact backtracking
//!   search standing in for the paper's human experts; it produces the
//!   perfect-score plans (10 / 15 / popularity-5) the paper uses as its
//!   ceiling.
//!
//! Plus one non-paper utility: [`fallback`], the serving layer's
//! last-resort deterministic partial planner (always answers, never
//! panics, tagged `degraded` by callers).

#![warn(missing_docs)]

pub mod eda;
pub mod fallback;
pub mod gold;
pub mod omega;

pub use eda::eda_plan;
pub use fallback::degraded_partial_plan;
pub use gold::gold_plan;
pub use omega::{omega_plan, OmegaConfig};
