//! The gold standard: a constraint-exact expert oracle.
//!
//! The paper's gold standards are handcrafted by academic advisors /
//! travel agents and act as the score ceiling (10 for Univ-1, 15 for
//! Univ-2, popularity 5 for trips). We simulate the expert with search:
//!
//! * **Courses** — backtracking over one interleaving template at a time:
//!   fill each slot with an item of the required kind whose antecedents
//!   are already scheduled at the required gap. A completed assignment
//!   realizes the template exactly, so it scores `H` — the paper's gold
//!   score.
//! * **Trips** — beam search maximizing mean POI popularity under full
//!   trip validity (time budget, distance threshold, theme gap,
//!   antecedents).

use tpp_core::score_plan;
use tpp_geo::haversine_km;
use tpp_model::{InterleavingTemplate, ItemId, ItemKind, Plan, PlanningInstance};

/// Produces an expert (gold-standard) plan; `start` pins the first item
/// when given. Returns the best plan found (courses: the first exact
/// template realization; trips: the highest-popularity valid itinerary).
pub fn gold_plan(instance: &PlanningInstance, start: Option<ItemId>) -> Plan {
    if instance.is_trip() {
        gold_trip(instance, start)
    } else {
        gold_course(instance, start)
    }
}

fn gold_course(instance: &PlanningInstance, start: Option<ItemId>) -> Plan {
    let templates = instance.soft.templates.templates();
    for template in templates {
        if let Some(plan) = fill_template(instance, template, start) {
            return plan;
        }
    }
    // No exact realization (or no templates): fall back to a greedy valid
    // plan so callers always get *something* to compare against.
    Plan::from_items(
        instance
            .catalog
            .ids()
            .take(instance.horizon())
            .collect::<Vec<_>>(),
    )
}

/// Backtracking slot-filling with a node budget.
fn fill_template(
    instance: &PlanningInstance,
    template: &InterleavingTemplate,
    start: Option<ItemId>,
) -> Option<Plan> {
    let slots = template.slots();
    let h = slots.len().min(instance.horizon());
    let catalog = &instance.catalog;
    let gap = instance.hard.gap;

    // Candidate pools per kind; cores that are prerequisites of other
    // cores come first so chains get scheduled early.
    let pool_of = |kind: ItemKind| -> Vec<ItemId> {
        let mut pool: Vec<ItemId> = catalog.items_of_kind(kind).map(|i| i.id).collect();
        let prereq_degree = |id: ItemId| -> usize {
            catalog
                .items()
                .iter()
                .filter(|it| it.prereq.referenced_items().contains(&id))
                .count()
        };
        pool.sort_by_key(|&id| std::cmp::Reverse(prereq_degree(id)));
        pool
    };
    let primaries = pool_of(ItemKind::Primary);
    let secondaries = pool_of(ItemKind::Secondary);

    struct Search<'a> {
        instance: &'a PlanningInstance,
        slots: &'a [ItemKind],
        h: usize,
        gap: usize,
        primaries: &'a [ItemId],
        secondaries: &'a [ItemId],
        chosen: Vec<ItemId>,
        positions: Vec<Option<usize>>,
        nodes: usize,
    }

    impl Search<'_> {
        fn dfs(&mut self) -> bool {
            if self.chosen.len() == self.h {
                return true;
            }
            self.nodes += 1;
            if self.nodes > 200_000 {
                return false; // budget blown; caller tries the next template
            }
            let k = self.chosen.len();
            let kind = self.slots[k];
            let pool: Vec<ItemId> = if kind.is_primary() {
                self.primaries.to_vec()
            } else {
                self.secondaries.to_vec()
            };
            for id in pool {
                if self.positions[id.index()].is_some() {
                    continue;
                }
                let item = self.instance.catalog.item(id);
                let positions = &self.positions;
                let pos_of = |p: ItemId| positions[p.index()];
                if !item.prereq.satisfied_with_gap(&pos_of, k, self.gap) {
                    continue;
                }
                self.positions[id.index()] = Some(k);
                self.chosen.push(id);
                if self.dfs() {
                    return true;
                }
                self.chosen.pop();
                self.positions[id.index()] = None;
            }
            false
        }
    }

    let mut search = Search {
        instance,
        slots: &slots[..h],
        h,
        gap,
        primaries: &primaries,
        secondaries: &secondaries,
        chosen: Vec::with_capacity(h),
        positions: vec![None; catalog.len()],
        nodes: 0,
    };
    if let Some(s) = start {
        let item = catalog.item(s);
        if item.kind != slots[0] || !item.prereq.is_none() {
            return None; // this template cannot host the pinned start
        }
        search.positions[s.index()] = Some(0);
        search.chosen.push(s);
    }
    if search.dfs() {
        Some(Plan::from_items(search.chosen))
    } else {
        None
    }
}

fn gold_trip(instance: &PlanningInstance, start: Option<ItemId>) -> Plan {
    let catalog = &instance.catalog;
    let trip = instance.trip.as_ref().expect("trip instance");
    let h = instance.horizon();

    #[derive(Clone)]
    struct Cand {
        items: Vec<ItemId>,
        hours: f64,
        dist: f64,
        pop_sum: f64,
    }

    let pop = |id: ItemId| catalog.item(id).poi.expect("poi attrs").popularity;
    let leg = |a: ItemId, b: ItemId| {
        let pa = catalog.item(a).poi.expect("poi attrs");
        let pb = catalog.item(b).poi.expect("poi attrs");
        haversine_km(pa.lat, pa.lon, pb.lat, pb.lon)
    };

    let starts: Vec<ItemId> = match start {
        Some(s) => vec![s],
        None => catalog
            .items()
            .iter()
            .filter(|i| i.is_primary())
            .map(|i| i.id)
            .collect(),
    };
    let mut beam: Vec<Cand> = starts
        .into_iter()
        .filter(|&s| catalog.item(s).credits <= instance.hard.credits + 1e-9)
        .map(|s| Cand {
            items: vec![s],
            hours: catalog.item(s).credits,
            dist: 0.0,
            pop_sum: pop(s),
        })
        .collect();
    // The expert hands over a real itinerary, not a lone 5.0 POI: any
    // candidate with at least 3 stops beats any shorter one; within that,
    // mean popularity decides, and longer wins popularity ties.
    let mut best: Option<Plan> = None;
    let mut best_key = (0usize, f64::NEG_INFINITY, 0usize);

    const WIDTH: usize = 48;
    while !beam.is_empty() {
        let mut next: Vec<Cand> = Vec::new();
        for cand in &beam {
            let plan = Plan::from_items(cand.items.clone());
            let s = score_plan(instance, &plan);
            let key = (cand.items.len().min(3), s, cand.items.len());
            if s > 0.0 && key > best_key {
                best_key = key;
                best = Some(plan);
            }
            if cand.items.len() >= h {
                continue;
            }
            let last = *cand.items.last().expect("non-empty");
            for item in catalog.items() {
                if cand.items.contains(&item.id) {
                    continue;
                }
                if cand.hours + item.credits > instance.hard.credits + 1e-9 {
                    continue;
                }
                let step = leg(last, item.id);
                if let Some(max_km) = trip.max_distance_km {
                    if cand.dist + step > max_km + 1e-9 {
                        continue;
                    }
                }
                if trip.no_consecutive_same_theme
                    && catalog.item(last).topics.intersection_count(&item.topics) > 0
                {
                    continue;
                }
                let items = &cand.items;
                let pos_of = |p: ItemId| items.iter().position(|&x| x == p);
                if !item
                    .prereq
                    .satisfied_with_gap(&pos_of, items.len(), instance.hard.gap)
                {
                    continue;
                }
                let mut nitems = cand.items.clone();
                nitems.push(item.id);
                next.push(Cand {
                    items: nitems,
                    hours: cand.hours + item.credits,
                    dist: cand.dist + step,
                    pop_sum: cand.pop_sum + pop(item.id),
                });
            }
        }
        next.sort_by(|a, b| {
            let ka = a.pop_sum / a.items.len() as f64 + 0.05 * a.items.len() as f64;
            let kb = b.pop_sum / b.items.len() as f64 + 0.05 * b.items.len() as f64;
            // total_cmp: a NaN score (degenerate candidate) must not
            // panic the beam search, just sort deterministically.
            kb.total_cmp(&ka)
        });
        next.truncate(WIDTH);
        beam = next;
    }
    best.unwrap_or_else(|| {
        Plan::from_items(
            catalog
                .items()
                .iter()
                .filter(|i| i.is_primary())
                .take(1)
                .map(|i| i.id)
                .collect(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::plan_violations;
    use tpp_datagen::defaults::{NYC_SEED, PARIS_SEED, UNIV1_SEED, UNIV2_SEED};

    #[test]
    fn gold_course_plans_are_perfect_univ1() {
        for inst in [
            tpp_datagen::univ1_ds_ct(UNIV1_SEED),
            tpp_datagen::univ1_cyber(UNIV1_SEED),
            tpp_datagen::univ1_cs(UNIV1_SEED),
        ] {
            let plan = gold_plan(&inst, None);
            assert!(
                plan_violations(&inst, &plan).is_empty(),
                "{}: {:?}",
                inst.catalog.name(),
                plan_violations(&inst, &plan)
            );
            // Exact template realization ⇒ the paper's gold score of 10.
            assert_eq!(score_plan(&inst, &plan), 10.0, "{}", inst.catalog.name());
        }
    }

    #[test]
    fn gold_course_plan_is_perfect_univ2() {
        let inst = tpp_datagen::univ2_ds(UNIV2_SEED);
        let plan = gold_plan(&inst, None);
        assert_eq!(score_plan(&inst, &plan), 15.0);
    }

    #[test]
    fn gold_with_pinned_start() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let start = inst.default_start.unwrap();
        let plan = gold_plan(&inst, Some(start));
        assert_eq!(plan.items()[0], start);
        assert_eq!(score_plan(&inst, &plan), 10.0);
    }

    #[test]
    fn gold_trip_plans_are_popular_and_valid() {
        for d in [tpp_datagen::nyc(NYC_SEED), tpp_datagen::paris(PARIS_SEED)] {
            let plan = gold_plan(&d.instance, None);
            assert!(plan_violations(&d.instance, &plan).is_empty());
            let s = score_plan(&d.instance, &plan);
            assert!(
                s >= 4.4,
                "{}: gold trip score {s}",
                d.instance.catalog.name()
            );
            assert!(plan.len() >= 3, "gold itinerary too short: {}", plan.len());
        }
    }
}
