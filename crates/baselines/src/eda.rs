//! The EDA next-step baseline (§IV-A2).
//!
//! *"We adapt the EDA paradigm by implementing a greedy method that
//! chooses the action with the highest reward based on Equation 2 in
//! each step. If two actions provide the same result, one will be picked
//! at random."*
//!
//! EDA runs in the same CMDP environment as RL-Planner — same Eq. 2
//! reward, same action validity — but is purely myopic: no learned value
//! function, uniformly random tie-breaking. It is therefore the exact
//! "what does learning add?" ablation: every gap to RL-Planner comes from
//! the Q-table's long-horizon signal (scheduling an unlocking elective
//! before a core course needs it; not burning the trip distance budget on
//! a far-away popular POI).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpp_core::{PlannerParams, TppEnv};
use tpp_model::{ItemId, Plan, PlanningInstance};
use tpp_rl::Environment;

/// Produces an EDA plan starting at `start`; deterministic in `seed`
/// (the seed drives tie-breaking only).
pub fn eda_plan(
    instance: &PlanningInstance,
    params: &PlannerParams,
    start: ItemId,
    seed: u64,
) -> Plan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = TppEnv::new(instance, params);
    env.reset(start.index());
    let mut actions = Vec::with_capacity(instance.catalog.len());
    loop {
        env.valid_actions(&mut actions);
        if actions.is_empty() {
            break;
        }
        let mut best: Vec<usize> = Vec::new();
        let mut best_r = f64::NEG_INFINITY;
        for &a in &actions {
            let r = env.peek_reward(a);
            if r > best_r + 1e-12 {
                best_r = r;
                best.clear();
                best.push(a);
            } else if (r - best_r).abs() <= 1e-12 {
                best.push(a);
            }
        }
        let pick = best[rng.random_range(0..best.len())];
        if env.step(pick).done {
            break;
        }
    }
    env.plan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::score_plan;
    use tpp_datagen::defaults::{NYC_SEED, UNIV1_SEED};

    #[test]
    fn eda_fills_course_horizon() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let params = PlannerParams::univ1_defaults();
        let start = inst.default_start.unwrap();
        let plan = eda_plan(&inst, &params, start, 1);
        assert_eq!(plan.len(), inst.horizon());
        assert_eq!(plan.items()[0], start);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for &id in plan.items() {
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn eda_respects_trip_budgets() {
        let d = tpp_datagen::nyc(NYC_SEED);
        let params = PlannerParams::trip_defaults();
        let start = d.instance.default_start.unwrap();
        let plan = eda_plan(&d.instance, &params, start, 2);
        assert!(plan.total_credits(&d.instance.catalog) <= d.instance.hard.credits + 1e-9);
        // Environment-validated walk ⇒ no trip violations.
        assert!(tpp_core::plan_violations(&d.instance, &plan).is_empty());
    }

    #[test]
    fn eda_deterministic_in_seed() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let params = PlannerParams::univ1_defaults();
        let start = inst.default_start.unwrap();
        assert_eq!(
            eda_plan(&inst, &params, start, 7),
            eda_plan(&inst, &params, start, 7)
        );
    }

    #[test]
    fn eda_scores_at_most_gold() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let params = PlannerParams::univ1_defaults();
        let start = inst.default_start.unwrap();
        for seed in 0..5 {
            let s = score_plan(&inst, &eda_plan(&inst, &params, start, seed));
            assert!(s <= inst.horizon() as f64);
        }
    }
}
