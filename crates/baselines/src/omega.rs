//! The adapted OMEGA baseline (§IV-A2).
//!
//! OMEGA \[16\] selects sequences of items by greedy edge selection over
//! a pairwise utility matrix after a topological ordering, with no notion
//! of hard constraints. The paper adapts it non-trivially:
//!
//! * the original co-consumption matrix ("number of times item `i` is
//!   consumed before `j`") is **redesigned to the total number of topics
//!   covered by `i` and `j`**;
//! * a **two-step** scheme bolts constraints on: the first sub-sequence
//!   is generated greedily to satisfy the gap constraint, the second by
//!   OMEGA to optimize the soft constraint, and the two are concatenated
//!   to the length `H = #primary + #secondary`.
//!
//! Even so, OMEGA "fails to meet the stringent TPP requirements" most of
//! the time — the concatenation controls length but not the
//! primary/secondary split, the gap interactions across the seam, or the
//! trip budgets — and that failure (score 0) is the paper's headline
//! Fig. 1 finding for this baseline. This implementation reproduces the
//! adaptation faithfully, warts and all.

use tpp_model::{ItemId, Plan, PlanningInstance};

/// OMEGA knobs.
#[derive(Debug, Clone, Copy)]
pub struct OmegaConfig {
    /// Length of the gap-satisfying prefix (step 1). The paper does not
    /// pin it; half the horizon is the natural reading of "two
    /// sub-sequences concatenated to satisfy the length constraint".
    pub prefix_len: usize,
    /// Use the original co-consumption matrix instead of the topic
    /// redesign (requires itinerary logs; available for trips only).
    pub use_logs: bool,
}

impl OmegaConfig {
    /// The paper's adaptation for an instance with horizon `h`.
    pub fn paper_adaptation(h: usize) -> Self {
        OmegaConfig {
            prefix_len: h / 2,
            use_logs: false,
        }
    }
}

/// The redesigned pairwise utility: `M[i][j]` = total number of topics
/// covered by items `i` and `j` together.
pub fn topic_matrix(instance: &PlanningInstance) -> Vec<Vec<u32>> {
    let items = instance.catalog.items();
    let n = items.len();
    let mut m = vec![vec![0u32; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut u = items[i].topics.clone();
            u.union_with(&items[j].topics);
            m[i][j] = u.count_ones();
        }
    }
    m
}

/// Topological ordering of the prerequisite DAG (Kahn's algorithm);
/// ties resolve by item id, matching OMEGA's deterministic ordering step.
pub fn topological_order(instance: &PlanningInstance) -> Vec<ItemId> {
    let items = instance.catalog.items();
    let n = items.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, item) in items.iter().enumerate() {
        for dep in item.prereq.referenced_items() {
            indegree[i] += 1;
            dependents[dep.index()].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&next) = ready.iter().min() {
        ready.retain(|&x| x != next);
        order.push(ItemId::from(next));
        for &d in &dependents[next] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.push(d);
            }
        }
    }
    order
}

/// Runs the adapted two-step OMEGA and returns its recommendation.
///
/// `co_matrix` optionally supplies the original co-consumption counts
/// (built from itinerary logs via
/// `tpp_datagen::itineraries::co_consumption_matrix`); it is used when
/// `config.use_logs` is set.
pub fn omega_plan(
    instance: &PlanningInstance,
    config: &OmegaConfig,
    co_matrix: Option<&[Vec<u32>]>,
) -> Plan {
    let h = instance.horizon();
    let n = instance.catalog.len();
    if n == 0 || h == 0 {
        return Plan::new();
    }
    let matrix: Vec<Vec<u32>> = match (config.use_logs, co_matrix) {
        (true, Some(m)) => m.to_vec(),
        _ => topic_matrix(instance),
    };

    let mut picked = vec![false; n];
    let mut seq: Vec<ItemId> = Vec::with_capacity(h);

    // --- Step 1: gap-satisfying prefix. Walk the topological order and
    // greedily take items whose antecedents are already in the prefix at
    // the required gap (prereq-free items qualify immediately).
    let order = topological_order(instance);
    let prefix_len = config.prefix_len.min(h);
    for id in &order {
        if seq.len() >= prefix_len {
            break;
        }
        let item = instance.catalog.item(*id);
        let pos_of = |p: ItemId| seq.iter().position(|&x| x == p);
        if item
            .prereq
            .satisfied_with_gap(&pos_of, seq.len(), instance.hard.gap)
        {
            picked[id.index()] = true;
            seq.push(*id);
        }
    }

    // --- Step 2: OMEGA greedy edge selection maximizing the pairwise
    // utility of the induced sequence extension; blind to constraints.
    while seq.len() < h {
        let last = seq.last().copied();
        let mut best: Option<(u32, usize)> = None;
        for j in 0..n {
            if picked[j] {
                continue;
            }
            let u = match last {
                Some(l) => matrix[l.index()][j],
                None => matrix[j].iter().copied().max().unwrap_or(0),
            };
            if best.map_or(true, |(bu, bj)| u > bu || (u == bu && j < bj)) {
                best = Some((u, j));
            }
        }
        let Some((_, j)) = best else { break };
        picked[j] = true;
        seq.push(ItemId::from(j));
    }
    Plan::from_items(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::score_plan;
    use tpp_datagen::defaults::{NYC_SEED, UNIV1_SEED};
    use tpp_datagen::itineraries::co_consumption_matrix;

    #[test]
    fn topological_order_respects_prereqs() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let order = topological_order(&inst);
        assert_eq!(order.len(), inst.catalog.len());
        let pos = |id: ItemId| order.iter().position(|&x| x == id).unwrap();
        for item in inst.catalog.items() {
            for dep in item.prereq.referenced_items() {
                assert!(pos(dep) < pos(item.id), "{} before its dependent", dep);
            }
        }
    }

    #[test]
    fn topic_matrix_is_union_count() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let m = topic_matrix(&inst);
        let items = inst.catalog.items();
        let i = 0;
        let j = 1;
        let mut u = items[i].topics.clone();
        u.union_with(&items[j].topics);
        assert_eq!(m[i][j], u.count_ones());
        assert_eq!(m[i][i], 0);
    }

    #[test]
    fn omega_produces_h_items_for_courses() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let plan = omega_plan(&inst, &OmegaConfig::paper_adaptation(inst.horizon()), None);
        assert_eq!(plan.len(), inst.horizon());
    }

    #[test]
    fn omega_mostly_fails_hard_constraints() {
        // The paper's headline observation: OMEGA leads to 0 scores most
        // of the time. Check across the course datasets.
        let mut zeros = 0;
        let mut total = 0;
        for inst in [
            tpp_datagen::univ1_ds_ct(UNIV1_SEED),
            tpp_datagen::univ1_cyber(UNIV1_SEED),
            tpp_datagen::univ1_cs(UNIV1_SEED),
        ] {
            let plan = omega_plan(&inst, &OmegaConfig::paper_adaptation(inst.horizon()), None);
            total += 1;
            if score_plan(&inst, &plan) == 0.0 {
                zeros += 1;
            }
        }
        assert!(zeros * 2 >= total, "OMEGA valid too often: {zeros}/{total}");
    }

    #[test]
    fn omega_with_logs_runs_on_trips() {
        let d = tpp_datagen::nyc(NYC_SEED);
        let m = co_consumption_matrix(&d.instance.catalog, &d.itineraries);
        let config = OmegaConfig {
            prefix_len: 2,
            use_logs: true,
        };
        let plan = omega_plan(&d.instance, &config, Some(&m));
        assert!(!plan.is_empty());
    }

    #[test]
    fn omega_deterministic() {
        let inst = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
        let cfg = OmegaConfig::paper_adaptation(inst.horizon());
        assert_eq!(omega_plan(&inst, &cfg, None), omega_plan(&inst, &cfg, None));
    }
}
