//! Property-based tests for the TPP data model.

use proptest::prelude::*;
use tpp_model::{ItemId, Plan, PrereqExpr, TopicId, TopicVector};

/// Strategy producing a `0/1` bit pattern of the given length.
fn bits(len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=1, len)
}

proptest! {
    // ---- Bitset algebra laws ----------------------------------------

    #[test]
    fn union_is_commutative(a in bits(130), b in bits(130)) {
        let va = TopicVector::from_bits(&a);
        let vb = TopicVector::from_bits(&b);
        let mut ab = va.clone();
        ab.union_with(&vb);
        let mut ba = vb.clone();
        ba.union_with(&va);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn union_is_idempotent(a in bits(97)) {
        let va = TopicVector::from_bits(&a);
        let mut aa = va.clone();
        aa.union_with(&va);
        prop_assert_eq!(aa, va);
    }

    #[test]
    fn intersection_bounded_by_counts(a in bits(64), b in bits(64)) {
        let va = TopicVector::from_bits(&a);
        let vb = TopicVector::from_bits(&b);
        let i = va.intersection_count(&vb);
        prop_assert!(i <= va.count_ones());
        prop_assert!(i <= vb.count_ones());
    }

    #[test]
    fn inclusion_exclusion(a in bits(80), b in bits(80)) {
        let va = TopicVector::from_bits(&a);
        let vb = TopicVector::from_bits(&b);
        let mut u = va.clone();
        u.union_with(&vb);
        // |a ∪ b| = |a| + |b| - |a ∩ b|
        prop_assert_eq!(
            u.count_ones(),
            va.count_ones() + vb.count_ones() - va.intersection_count(&vb)
        );
    }

    #[test]
    fn difference_plus_intersection_is_count(a in bits(70), b in bits(70)) {
        let va = TopicVector::from_bits(&a);
        let vb = TopicVector::from_bits(&b);
        prop_assert_eq!(
            va.difference_count(&vb) + va.intersection_count(&vb),
            va.count_ones()
        );
    }

    #[test]
    fn novel_ideal_coverage_consistent_with_sets(
        m in bits(66), ideal in bits(66), current in bits(66)
    ) {
        let vm = TopicVector::from_bits(&m);
        let vi = TopicVector::from_bits(&ideal);
        let vc = TopicVector::from_bits(&current);
        // Reference computation via explicit set iteration.
        let expected = (0..66usize)
            .filter(|&t| {
                let t = TopicId::from(t);
                vm.get(t) && vi.get(t) && !vc.get(t)
            })
            .count() as u32;
        prop_assert_eq!(vm.novel_ideal_coverage(&vi, &vc), expected);
    }

    #[test]
    fn to_bits_roundtrip(a in bits(100)) {
        let v = TopicVector::from_bits(&a);
        prop_assert_eq!(v.to_bits(), a);
    }

    #[test]
    fn iter_topics_matches_get(a in bits(129)) {
        let v = TopicVector::from_bits(&a);
        let listed: Vec<usize> = v.iter_topics().map(|t| t.index()).collect();
        let expected: Vec<usize> = a
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == 1).then_some(i))
            .collect();
        prop_assert_eq!(listed, expected);
    }

    #[test]
    fn jaccard_in_unit_interval(a in bits(50), b in bits(50)) {
        let j = TopicVector::from_bits(&a).jaccard(&TopicVector::from_bits(&b));
        prop_assert!((0.0..=1.0).contains(&j));
    }

    // ---- Prerequisite evaluation ------------------------------------

    #[test]
    fn block_gap_monotone_in_candidate_position(
        pre_pos in 0usize..30, gap in 1usize..6, at in 0usize..36
    ) {
        // If satisfied at position `at`, it stays satisfied at any later
        // position: blocks only grow.
        let p = PrereqExpr::Item(ItemId(0));
        let pos = move |id: ItemId| (id == ItemId(0)).then_some(pre_pos);
        if p.satisfied_with_gap(&pos, at, gap) {
            prop_assert!(p.satisfied_with_gap(&pos, at + 1, gap));
            prop_assert!(p.satisfied_with_gap(&pos, at + gap, gap));
        }
    }

    #[test]
    fn and_implies_or(ids in prop::collection::vec(0u32..8, 2..5), at in 0usize..12) {
        let items: Vec<ItemId> = ids.iter().copied().map(ItemId).collect();
        let all = PrereqExpr::all_of(items.clone());
        let any = PrereqExpr::any_of(items);
        // Presence map: even ids are present at position id/2.
        let pos = |id: ItemId| (id.0 % 2 == 0).then_some((id.0 / 2) as usize);
        if all.satisfied_with_gap(&pos, at, 1) {
            prop_assert!(any.satisfied_with_gap(&pos, at, 1));
        }
    }

    #[test]
    fn min_distance_implies_block_gap(
        pre_pos in 0usize..30, gap in 1usize..6, at in 0usize..36
    ) {
        // The literal reading is strictly stronger than block semantics:
        // at - pos >= gap  ⇒  ⌊pos/gap⌋ < ⌊at/gap⌋.
        let p = PrereqExpr::Item(ItemId(0));
        let pos = move |id: ItemId| (id == ItemId(0)).then_some(pre_pos);
        if p.satisfied_with_min_distance(&pos, at, gap) {
            prop_assert!(p.satisfied_with_gap(&pos, at, gap));
        }
    }

    // ---- Plans -------------------------------------------------------

    #[test]
    fn plan_position_of_agrees_with_items(ids in prop::collection::vec(0u32..50, 0..20)) {
        // Deduplicate to make position_of well-defined.
        let mut seen = std::collections::HashSet::new();
        let uniq: Vec<ItemId> = ids
            .into_iter()
            .filter(|i| seen.insert(*i))
            .map(ItemId)
            .collect();
        let plan = Plan::from_items(uniq.clone());
        for (i, id) in uniq.iter().enumerate() {
            prop_assert_eq!(plan.position_of(*id), Some(i));
            prop_assert!(plan.contains(*id));
        }
        prop_assert_eq!(plan.len(), uniq.len());
    }
}
