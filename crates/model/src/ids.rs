//! Strongly-typed identifiers for items and topics.
//!
//! Using newtypes instead of bare `usize` prevents the classic index-mixing
//! bug between the item axis and the topic axis of the model, at zero
//! runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an item (a course or a POI) inside one [`crate::Catalog`].
///
/// Ids are dense: a catalog with `n` items uses ids `0..n`, which lets the
/// learner index `|I| × |I|` Q-tables directly without hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ItemId {
    #[inline]
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<usize> for ItemId {
    #[inline]
    fn from(v: usize) -> Self {
        ItemId(u32::try_from(v).expect("item id exceeds u32 range"))
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of a topic/theme inside one [`crate::TopicVocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TopicId(pub u32);

impl TopicId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for TopicId {
    #[inline]
    fn from(v: u32) -> Self {
        TopicId(v)
    }
}

impl From<usize> for TopicId {
    #[inline]
    fn from(v: usize) -> Self {
        TopicId(u32::try_from(v).expect("topic id exceeds u32 range"))
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_roundtrip_usize() {
        let id = ItemId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(id, ItemId(42));
    }

    #[test]
    fn topic_id_display() {
        assert_eq!(TopicId(7).to_string(), "t7");
        assert_eq!(ItemId(3).to_string(), "m3");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ItemId(1) < ItemId(2));
        assert!(TopicId(0) < TopicId(10));
    }

    #[test]
    fn serde_transparent() {
        let s = serde_json::to_string(&ItemId(5)).unwrap();
        assert_eq!(s, "5");
        let back: ItemId = serde_json::from_str(&s).unwrap();
        assert_eq!(back, ItemId(5));
    }
}
