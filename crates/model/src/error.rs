//! Error types for model construction and validation.

use crate::ids::ItemId;
use std::fmt;

/// Errors raised while building or querying the data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A topic name appeared twice in a vocabulary.
    DuplicateTopic(String),
    /// A topic name was not found in the vocabulary.
    UnknownTopic(String),
    /// An item code (e.g. `"CS 675"`) appeared twice in a catalog.
    DuplicateItemCode(String),
    /// An item id referenced an item outside the catalog.
    UnknownItem(ItemId),
    /// An item code was not found in the catalog.
    UnknownItemCode(String),
    /// An item's topic vector length disagrees with the catalog vocabulary.
    VocabularyMismatch {
        /// The offending item.
        item: ItemId,
        /// Length the item's vector has.
        got: usize,
        /// Length the vocabulary requires.
        expected: usize,
    },
    /// A prerequisite expression references the item itself.
    SelfPrerequisite(ItemId),
    /// The prerequisite graph contains a cycle through this item.
    PrerequisiteCycle(ItemId),
    /// A constraint set is internally inconsistent (message explains).
    InvalidConstraints(String),
    /// A builder declaration (e.g. `category()`) appeared before any
    /// item it could attach to.
    DanglingDeclaration(&'static str),
    /// An item was declared with non-finite or negative credits /
    /// visit-hours.
    InvalidCredits {
        /// The offending item's code.
        code: String,
    },
    /// A trip instance contains an item with no POI attributes
    /// (lat/lon/popularity), which the trip environment's distance and
    /// popularity terms require.
    MissingPoiAttrs {
        /// The offending item.
        item: ItemId,
    },
    /// An interleaving template's slot counts disagree with the hard
    /// constraints it is meant to accompany.
    TemplateShapeMismatch {
        /// Primary slots found in the permutation.
        primaries: usize,
        /// Secondary slots found in the permutation.
        secondaries: usize,
        /// Primary count required by the hard constraints.
        expected_primaries: usize,
        /// Secondary count required by the hard constraints.
        expected_secondaries: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateTopic(n) => write!(f, "duplicate topic name: {n:?}"),
            ModelError::UnknownTopic(n) => write!(f, "unknown topic name: {n:?}"),
            ModelError::DuplicateItemCode(c) => write!(f, "duplicate item code: {c:?}"),
            ModelError::UnknownItem(id) => write!(f, "unknown item id: {id}"),
            ModelError::UnknownItemCode(c) => write!(f, "unknown item code: {c:?}"),
            ModelError::VocabularyMismatch {
                item,
                got,
                expected,
            } => write!(
                f,
                "item {item} has a topic vector of length {got}, vocabulary has {expected} topics"
            ),
            ModelError::SelfPrerequisite(id) => {
                write!(f, "item {id} lists itself as a prerequisite")
            }
            ModelError::PrerequisiteCycle(id) => {
                write!(f, "prerequisite cycle detected through item {id}")
            }
            ModelError::InvalidConstraints(msg) => write!(f, "invalid constraints: {msg}"),
            ModelError::DanglingDeclaration(decl) => {
                write!(f, "{decl} declared before any item it could attach to")
            }
            ModelError::InvalidCredits { code } => {
                write!(f, "item {code:?} has non-finite or negative credits")
            }
            ModelError::MissingPoiAttrs { item } => write!(
                f,
                "trip instance item {item} has no POI attributes (lat/lon/popularity)"
            ),
            ModelError::TemplateShapeMismatch {
                primaries,
                secondaries,
                expected_primaries,
                expected_secondaries,
            } => write!(
                f,
                "template has {primaries} primary / {secondaries} secondary slots, \
                 hard constraints require {expected_primaries}/{expected_secondaries}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::VocabularyMismatch {
            item: ItemId(3),
            got: 12,
            expected: 13,
        };
        let s = e.to_string();
        assert!(s.contains("m3") && s.contains("12") && s.contains("13"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::UnknownTopic("X".into()));
        assert!(e.to_string().contains('X'));
    }
}
