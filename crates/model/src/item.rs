//! Items: the paper's quadruple `m = ⟨type^m, cr^m, pre^m, T^m⟩`.

use crate::ids::ItemId;
use crate::prereq::PrereqExpr;
use crate::topic::TopicVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's `type^m`: primary items are required for the task (core
/// courses, must-visit POIs), secondary items are chosen among optional
/// ones (electives, optional POIs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemKind {
    /// Required for the task (core course / must-visit POI).
    Primary,
    /// Optional, chosen by user interest (elective / optional POI).
    Secondary,
}

impl ItemKind {
    /// `true` for [`ItemKind::Primary`].
    #[inline]
    pub fn is_primary(self) -> bool {
        matches!(self, ItemKind::Primary)
    }
}

impl fmt::Display for ItemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemKind::Primary => f.write_str("primary"),
            ItemKind::Secondary => f.write_str("secondary"),
        }
    }
}

/// A coarse item category beyond primary/secondary.
///
/// Univ-2 (the Stanford-like catalog) weights items by one of six
/// **sub-disciplines** (§IV-A1: Mathematical & Statistical Foundations,
/// Experimentation, Scientific Computing, Applied ML & DS, Practical
/// Component, Elective), with reward weights ω1..ω6 (Table III). The
/// category index selects the weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Category(pub u8);

impl Category {
    /// The category as a weight-vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Geographic and popularity attributes carried by POI items only.
///
/// Locations feed the trip distance threshold `d`; popularity (the 1–5
/// score derived from Flickr photo counts in the paper) feeds the trip
/// plan score, whose gold-standard ceiling is "the highest popularity
/// score of any POI" (§IV-A2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoiAttrs {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Popularity score in `[1, 5]`.
    pub popularity: f64,
}

/// An item of the planning universe: a course or a POI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Dense id inside the owning catalog.
    pub id: ItemId,
    /// Stable human-readable code, e.g. `"CS 675"` or `"louvre museum"`.
    pub code: String,
    /// Display name, e.g. `"Machine Learning"`.
    pub name: String,
    /// Primary (core / must-visit) or secondary (elective / optional).
    pub kind: ItemKind,
    /// The paper's `cr^m`: credit hours for courses, visit hours for POIs.
    pub credits: f64,
    /// Prerequisite / antecedent expression (`pre^m`), possibly
    /// [`PrereqExpr::None`].
    pub prereq: PrereqExpr,
    /// Covered topics (`T^m`).
    pub topics: TopicVector,
    /// Sub-discipline category, when the dataset defines one (Univ-2).
    pub category: Option<Category>,
    /// POI attributes, for trip datasets only.
    pub poi: Option<PoiAttrs>,
}

impl Item {
    /// Convenience constructor for course-style items.
    pub fn course(
        id: ItemId,
        code: impl Into<String>,
        name: impl Into<String>,
        kind: ItemKind,
        credits: f64,
        prereq: PrereqExpr,
        topics: TopicVector,
    ) -> Self {
        Item {
            id,
            code: code.into(),
            name: name.into(),
            kind,
            credits,
            prereq,
            topics,
            category: None,
            poi: None,
        }
    }

    /// Convenience constructor for POI-style items.
    #[allow(clippy::too_many_arguments)]
    pub fn poi(
        id: ItemId,
        code: impl Into<String>,
        name: impl Into<String>,
        kind: ItemKind,
        visit_hours: f64,
        prereq: PrereqExpr,
        topics: TopicVector,
        attrs: PoiAttrs,
    ) -> Self {
        Item {
            id,
            code: code.into(),
            name: name.into(),
            kind,
            credits: visit_hours,
            prereq,
            topics,
            category: None,
            poi: Some(attrs),
        }
    }

    /// `true` if this is a primary item.
    #[inline]
    pub fn is_primary(&self) -> bool {
        self.kind.is_primary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicVector;

    #[test]
    fn kind_display_matches_paper_terms() {
        assert_eq!(ItemKind::Primary.to_string(), "primary");
        assert_eq!(ItemKind::Secondary.to_string(), "secondary");
    }

    #[test]
    fn course_constructor() {
        let it = Item::course(
            ItemId(0),
            "CS 610",
            "Data Structures and Algorithms",
            ItemKind::Primary,
            3.0,
            PrereqExpr::None,
            TopicVector::from_bits(&[1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0]),
        );
        assert!(it.is_primary());
        assert_eq!(it.credits, 3.0);
        assert!(it.poi.is_none());
        assert!(it.category.is_none());
    }

    #[test]
    fn poi_constructor_keeps_attrs() {
        let it = Item::poi(
            ItemId(1),
            "louvre",
            "Louvre Museum",
            ItemKind::Primary,
            2.5,
            PrereqExpr::None,
            TopicVector::from_bits(&[1, 1, 0, 0, 0, 0, 0, 1]),
            PoiAttrs {
                lat: 48.8606,
                lon: 2.3376,
                popularity: 5.0,
            },
        );
        let attrs = it.poi.unwrap();
        assert_eq!(attrs.popularity, 5.0);
        assert_eq!(it.credits, 2.5);
    }

    #[test]
    fn category_index() {
        assert_eq!(Category(3).index(), 3);
    }
}
