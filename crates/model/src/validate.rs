//! Plan validation against hard constraints.
//!
//! The paper scores a plan as `0` whenever any hard constraint is
//! violated (§IV-E: "If the hard constraints are not satisfied, those are
//! marked with values 0"). This module reports *which* constraints a plan
//! violates; the scorer in `tpp-core` maps a non-empty violation list to a
//! zero score.
//!
//! Following Theorem 1's Case I, a surplus of primary items is *not* a
//! violation: "a core course could be construed as an elective" — so the
//! split check is `primary ≥ #primary` with total length `H`.

use crate::catalog::Catalog;
use crate::constraints::{HardConstraints, TripConstraints};
use crate::ids::ItemId;
use crate::plan::Plan;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A hard-constraint violation found in a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// An item id not present in the catalog.
    UnknownItem(ItemId),
    /// The same item appears twice.
    DuplicateItem(ItemId),
    /// Plan length differs from `H = #primary + #secondary`.
    WrongLength {
        /// Items in the plan.
        got: usize,
        /// Required horizon.
        expected: usize,
    },
    /// Course plans: total credits fall short of `#cr`.
    CreditShortfall {
        /// Credits accumulated.
        got: f64,
        /// Minimum required.
        required: f64,
    },
    /// Trip plans: total visit time exceeds the budget `t`.
    TimeBudgetExceeded {
        /// Hours accumulated.
        got: f64,
        /// Budget.
        budget: f64,
    },
    /// Fewer primary items than `#primary` (Theorem 1 Case II).
    TooFewPrimaries {
        /// Primaries in the plan.
        got: usize,
        /// Required minimum.
        required: usize,
    },
    /// An item's antecedents are absent or closer than `gap`.
    PrereqUnsatisfied {
        /// The item whose prerequisite failed.
        item: ItemId,
        /// Its position in the plan.
        position: usize,
    },
    /// Trip plans: total inter-POI distance exceeds the threshold `d`.
    DistanceExceeded {
        /// Kilometres travelled.
        got: f64,
        /// Threshold.
        threshold: f64,
    },
    /// Trip plans: two consecutive POIs share a theme.
    ConsecutiveSameTheme {
        /// Position of the second POI of the offending pair.
        position: usize,
    },
    /// Too few items from a required category (Univ-2's per-sub-
    /// discipline unit requirements, §IV-A1).
    CategoryShortfall {
        /// The category index.
        category: usize,
        /// Items of that category in the plan.
        got: usize,
        /// Required minimum.
        required: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnknownItem(id) => write!(f, "unknown item {id}"),
            Violation::DuplicateItem(id) => write!(f, "duplicate item {id}"),
            Violation::WrongLength { got, expected } => {
                write!(f, "plan has {got} items, horizon requires {expected}")
            }
            Violation::CreditShortfall { got, required } => {
                write!(f, "only {got} credits, {required} required")
            }
            Violation::TimeBudgetExceeded { got, budget } => {
                write!(f, "{got} visit hours exceed the {budget}h budget")
            }
            Violation::TooFewPrimaries { got, required } => {
                write!(f, "only {got} primary items, {required} required")
            }
            Violation::PrereqUnsatisfied { item, position } => {
                write!(f, "prerequisites of {item} (at {position}) unsatisfied")
            }
            Violation::DistanceExceeded { got, threshold } => {
                write!(
                    f,
                    "{got:.2} km travelled exceeds threshold {threshold:.2} km"
                )
            }
            Violation::ConsecutiveSameTheme { position } => {
                write!(
                    f,
                    "POIs at positions {} and {position} share a theme",
                    position - 1
                )
            }
            Violation::CategoryShortfall {
                category,
                got,
                required,
            } => write!(
                f,
                "only {got} items from category {category}, {required} required"
            ),
        }
    }
}

/// Validates a **course** plan against `P_hard`. Returns all violations
/// (empty ⇒ the plan satisfies every hard constraint).
pub fn validate_plan(plan: &Plan, catalog: &Catalog, hard: &HardConstraints) -> Vec<Violation> {
    let mut out = Vec::new();
    validate_common(plan, catalog, hard, true, &mut out);
    if out.iter().any(|v| matches!(v, Violation::UnknownItem(_))) {
        return out; // further checks would index out of range
    }
    // Minimum-credit requirement (#cr): course semantics.
    let credits = plan.total_credits(catalog);
    if credits + 1e-9 < hard.credits {
        out.push(Violation::CreditShortfall {
            got: credits,
            required: hard.credits,
        });
    }
    out
}

/// Validates a **trip** plan: time is a budget instead of a minimum, and
/// the trip-only constraints (distance threshold, no-consecutive-theme)
/// apply. `distance_km(a, b)` supplies inter-POI travel distance.
pub fn validate_trip_plan<D>(
    plan: &Plan,
    catalog: &Catalog,
    hard: &HardConstraints,
    trip: &TripConstraints,
    distance_km: D,
) -> Vec<Violation>
where
    D: Fn(ItemId, ItemId) -> f64,
{
    let mut out = Vec::new();
    // The paper's own trip outputs (Tables VII, VIII) are itineraries of
    // 2-3 POIs scored positively, so the length-H and primary-split
    // checks are *targets* for trips, not validity requirements; the
    // binding hard constraints are the budgets, the theme gap and the
    // antecedents.
    validate_common(plan, catalog, hard, false, &mut out);
    if out.iter().any(|v| matches!(v, Violation::UnknownItem(_))) {
        return out;
    }
    // Visitation-time budget.
    let hours = plan.total_credits(catalog);
    if hours > hard.credits + 1e-9 {
        out.push(Violation::TimeBudgetExceeded {
            got: hours,
            budget: hard.credits,
        });
    }
    // Distance threshold d over consecutive legs.
    if let Some(threshold) = trip.max_distance_km {
        let total: f64 = plan
            .items()
            .windows(2)
            .map(|w| distance_km(w[0], w[1]))
            .sum();
        if total > threshold + 1e-9 {
            out.push(Violation::DistanceExceeded {
                got: total,
                threshold,
            });
        }
    }
    // No two consecutive POIs of the same theme.
    if trip.no_consecutive_same_theme {
        for (i, w) in plan.items().windows(2).enumerate() {
            let a = &catalog.item(w[0]).topics;
            let b = &catalog.item(w[1]).topics;
            if a.intersection_count(b) > 0 {
                out.push(Violation::ConsecutiveSameTheme { position: i + 1 });
            }
        }
    }
    out
}

/// Checks shared by both domains: known items, no duplicates,
/// prerequisite gaps; with `enforce_shape`, also length `H` and the
/// primary minimum (courses only — see `validate_trip_plan`).
fn validate_common(
    plan: &Plan,
    catalog: &Catalog,
    hard: &HardConstraints,
    enforce_shape: bool,
    out: &mut Vec<Violation>,
) {
    for &id in plan.items() {
        if catalog.get(id).is_none() {
            out.push(Violation::UnknownItem(id));
        }
    }
    if out.iter().any(|v| matches!(v, Violation::UnknownItem(_))) {
        return;
    }
    for (i, &id) in plan.items().iter().enumerate() {
        if plan.items()[..i].contains(&id) {
            out.push(Violation::DuplicateItem(id));
        }
    }
    if enforce_shape {
        let h = hard.horizon();
        if plan.len() != h {
            out.push(Violation::WrongLength {
                got: plan.len(),
                expected: h,
            });
        }
        let primaries = plan.primary_count(catalog);
        if primaries < hard.n_primary {
            out.push(Violation::TooFewPrimaries {
                got: primaries,
                required: hard.n_primary,
            });
        }
    }
    // Gap: every item's antecedent expression must hold at its position.
    let pos_of = |id: ItemId| plan.position_of(id);
    for (i, &id) in plan.items().iter().enumerate() {
        let prereq = &catalog.item(id).prereq;
        if !prereq.satisfied_with_gap(&pos_of, i, hard.gap) {
            out.push(Violation::PrereqUnsatisfied {
                item: id,
                position: i,
            });
        }
    }
}

/// Checks per-category minimum counts on top of the standard course
/// validation (Univ-2 expresses its hard constraints as unit requirements
/// in six sub-disciplines; `minimums[k]` is the required number of items
/// of [`crate::Category`] `k`). Items without a category count toward
/// nothing.
pub fn validate_category_minimums(
    plan: &Plan,
    catalog: &Catalog,
    minimums: &[usize],
) -> Vec<Violation> {
    let mut counts = vec![0usize; minimums.len()];
    for &id in plan.items() {
        if let Some(item) = catalog.get(id) {
            if let Some(cat) = item.category {
                if let Some(slot) = counts.get_mut(cat.index()) {
                    *slot += 1;
                }
            }
        }
    }
    minimums
        .iter()
        .enumerate()
        .filter(|&(k, &req)| counts[k] < req)
        .map(|(k, &req)| Violation::CategoryShortfall {
            category: k,
            got: counts[k],
            required: req,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::TripConstraints;
    use crate::toy;

    #[test]
    fn paper_example1_plan_is_valid() {
        let cat = toy::table2_catalog();
        let hard = toy::table2_hard();
        let plan = Plan::from_codes(&cat, &["m1", "m2", "m4", "m5", "m6", "m3"]).unwrap();
        // m5 (Big Data) needs m2 OR m3 at gap 3: m2 at 0, m5 at 3 → ok.
        // m6 (ML) needs m4 AND m2: m4 at 2, m2 at 1, m6 at 4 → 4-1=3 ≥ 3 ok.
        assert_eq!(validate_plan(&plan, &cat, &hard), vec![]);
    }

    #[test]
    fn gap_violation_detected() {
        let cat = toy::table2_catalog();
        let hard = toy::table2_hard();
        // m5 straight after m2: distance 1 < gap 3.
        let plan = Plan::from_codes(&cat, &["m1", "m2", "m5", "m4", "m6", "m3"]).unwrap();
        let v = validate_plan(&plan, &cat, &hard);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::PrereqUnsatisfied { position: 2, .. })));
    }

    #[test]
    fn missing_prereq_detected() {
        let cat = toy::table2_catalog();
        let hard = toy::table2_hard();
        // m6 requires m4 AND m2; m4 missing entirely.
        let plan = Plan::from_codes(&cat, &["m1", "m2", "m3", "m5", "m6"]).unwrap();
        let v = validate_plan(&plan, &cat, &hard);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::PrereqUnsatisfied { .. })));
        assert!(v.iter().any(|x| matches!(x, Violation::WrongLength { .. })));
    }

    #[test]
    fn credit_shortfall_detected() {
        let cat = toy::table2_catalog();
        let mut hard = toy::table2_hard();
        hard.credits = 21.0; // 7 courses' worth but only 6 exist in plan
        let plan = Plan::from_codes(&cat, &["m1", "m2", "m4", "m5", "m6", "m3"]).unwrap();
        let v = validate_plan(&plan, &cat, &hard);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::CreditShortfall { .. })));
    }

    #[test]
    fn too_few_primaries_detected() {
        let cat = toy::table2_catalog();
        let mut hard = toy::table2_hard();
        hard.n_primary = 4;
        hard.n_secondary = 2;
        let plan = Plan::from_codes(&cat, &["m1", "m2", "m4", "m5", "m6", "m3"]).unwrap();
        let v = validate_plan(&plan, &cat, &hard);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::TooFewPrimaries { .. })));
    }

    #[test]
    fn surplus_primaries_allowed_case_i() {
        // Theorem 1 Case I: more cores than required is consistent.
        let cat = toy::table2_catalog();
        let hard = HardConstraints {
            credits: 9.0,
            n_primary: 1,
            n_secondary: 2,
            gap: 1,
        };
        // Two primaries (m1, m3) where only 1 is required, length 3 = H.
        let plan = Plan::from_codes(&cat, &["m1", "m3", "m2"]).unwrap();
        assert_eq!(validate_plan(&plan, &cat, &hard), vec![]);
    }

    #[test]
    fn duplicate_item_detected() {
        let cat = toy::table2_catalog();
        let hard = toy::table2_hard();
        let plan = Plan::from_codes(&cat, &["m1", "m1", "m2", "m4", "m5", "m3"]).unwrap();
        let v = validate_plan(&plan, &cat, &hard);
        assert!(v.iter().any(|x| matches!(x, Violation::DuplicateItem(_))));
    }

    #[test]
    fn unknown_item_short_circuits() {
        let cat = toy::table2_catalog();
        let hard = toy::table2_hard();
        let plan = Plan::from_items(vec![ItemId(99)]);
        let v = validate_plan(&plan, &cat, &hard);
        assert_eq!(v, vec![Violation::UnknownItem(ItemId(99))]);
    }

    #[test]
    fn trip_plan_time_budget() {
        let cat = toy::paris_toy_catalog();
        let hard = toy::paris_toy_hard(); // 6h budget, 2 primary + 3 secondary
        let trip = TripConstraints {
            max_distance_km: None,
            no_consecutive_same_theme: false,
        };
        // Louvre(2.5) + Le Cinq(1.5) + Eiffel(1.5) + Rue des Martyrs(0.5)
        // + Seine(0.5) = 6.5h > 6h.
        let plan = Plan::from_codes(
            &cat,
            &[
                "louvre museum",
                "le cinq",
                "eiffel tower",
                "rue des martyrs",
                "river seine",
            ],
        )
        .unwrap();
        let v = validate_trip_plan(&plan, &cat, &hard, &trip, |_, _| 0.0);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::TimeBudgetExceeded { .. })));
    }

    #[test]
    fn trip_example2_sequence_valid_with_relaxed_budget() {
        let cat = toy::paris_toy_catalog();
        let mut hard = toy::paris_toy_hard();
        hard.credits = 7.0;
        let trip = TripConstraints {
            max_distance_km: None,
            no_consecutive_same_theme: true,
        };
        // §II-B2: Louvre → Le Cinq → Eiffel → Rue des Martyrs → Seine
        // fully satisfies I1 = PSPSS; Le Cinq's antecedent (Louvre) holds.
        let plan = Plan::from_codes(
            &cat,
            &[
                "louvre museum",
                "le cinq",
                "eiffel tower",
                "rue des martyrs",
                "river seine",
            ],
        )
        .unwrap();
        assert_eq!(
            validate_trip_plan(&plan, &cat, &hard, &trip, |_, _| 0.0),
            vec![]
        );
    }

    #[test]
    fn trip_distance_threshold() {
        let cat = toy::paris_toy_catalog();
        let mut hard = toy::paris_toy_hard();
        hard.credits = 10.0;
        let trip = TripConstraints {
            max_distance_km: Some(1.0),
            no_consecutive_same_theme: false,
        };
        let plan = Plan::from_codes(
            &cat,
            &[
                "louvre museum",
                "le cinq",
                "eiffel tower",
                "rue des martyrs",
                "river seine",
            ],
        )
        .unwrap();
        // Pretend each leg is 2 km: 4 legs = 8 km > 1 km.
        let v = validate_trip_plan(&plan, &cat, &hard, &trip, |_, _| 2.0);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::DistanceExceeded { .. })));
    }

    #[test]
    fn trip_consecutive_theme_detected() {
        let cat = toy::paris_toy_catalog();
        let mut hard = toy::paris_toy_hard();
        hard.credits = 10.0;
        hard.n_primary = 1;
        hard.n_secondary = 1;
        let trip = TripConstraints {
            max_distance_km: None,
            no_consecutive_same_theme: true,
        };
        // Louvre (Museum, Art Gallery, Architecture) then Musée d'Orsay
        // (Museum, Art Gallery): shared themes back-to-back.
        let plan = Plan::from_codes(&cat, &["louvre museum", "musee d'orsay"]).unwrap();
        let v = validate_trip_plan(&plan, &cat, &hard, &trip, |_, _| 0.0);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ConsecutiveSameTheme { position: 1 })));
    }

    #[test]
    fn category_minimums_checked() {
        use crate::item::Category;
        // Tag the toy courses with two categories: primaries → 0,
        // secondaries → 1.
        let mut cat = toy::table2_catalog();
        let tagged: Vec<_> = cat
            .items()
            .iter()
            .cloned()
            .map(|mut it| {
                it.category = Some(Category(u8::from(!it.is_primary())));
                it
            })
            .collect();
        cat = Catalog::new("tagged", toy::course_vocabulary(), tagged).unwrap();
        let plan = Plan::from_codes(&cat, &["m1", "m3"]).unwrap(); // two primaries
                                                                   // Requires 1 of category 0 and 1 of category 1: category 1 short.
        let v = validate_category_minimums(&plan, &cat, &[1, 1]);
        assert_eq!(
            v,
            vec![Violation::CategoryShortfall {
                category: 1,
                got: 0,
                required: 1
            }]
        );
        // Satisfied when a secondary joins.
        let plan = Plan::from_codes(&cat, &["m1", "m2"]).unwrap();
        assert!(validate_category_minimums(&plan, &cat, &[1, 1]).is_empty());
        // No minimums → vacuous.
        assert!(validate_category_minimums(&plan, &cat, &[]).is_empty());
    }

    #[test]
    fn violation_display() {
        let v = Violation::CreditShortfall {
            got: 27.0,
            required: 30.0,
        };
        assert!(v.to_string().contains("27"));
        let d = Violation::ConsecutiveSameTheme { position: 2 };
        assert!(d.to_string().contains("1") && d.to_string().contains("2"));
    }
}
