//! Ergonomic catalog construction.
//!
//! [`Catalog::new`](crate::Catalog::new) wants dense ids and
//! already-resolved prerequisite expressions — exactly what a generator
//! produces, but tedious to write by hand. `CatalogBuilder` lets callers
//! describe items by **code**, with prerequisites referencing other
//! codes, and resolves everything (ids, expressions, validation) at
//! `build()`.
//!
//! ```
//! use tpp_model::builder::CatalogBuilder;
//! use tpp_model::ItemKind;
//!
//! let catalog = CatalogBuilder::new("demo")
//!     .topics(["algorithms", "statistics", "ml"])
//!     .course("CS 1", "Algorithms", ItemKind::Primary, 3.0, &["algorithms"])
//!     .course("ST 1", "Statistics", ItemKind::Primary, 3.0, &["statistics"])
//!     .course("CS 2", "Machine Learning", ItemKind::Secondary, 3.0, &["ml"])
//!     .requires_all("CS 2", &["CS 1", "ST 1"])
//!     .build()
//!     .unwrap();
//! assert_eq!(catalog.len(), 3);
//! assert_eq!(catalog.by_code("CS 2").unwrap().prereq.referenced_items().len(), 2);
//! ```

use crate::catalog::Catalog;
use crate::error::ModelError;
use crate::ids::ItemId;
use crate::item::{Category, Item, ItemKind, PoiAttrs};
use crate::prereq::PrereqExpr;
use crate::topic::TopicVocabulary;

/// Pending prerequisite declaration, by code.
enum PendingPrereq {
    All(Vec<String>),
    Any(Vec<String>),
}

/// Pending item description.
struct PendingItem {
    code: String,
    name: String,
    kind: ItemKind,
    credits: f64,
    topics: Vec<String>,
    category: Option<Category>,
    poi: Option<PoiAttrs>,
    prereqs: Vec<PendingPrereq>,
    /// Created by a prerequisite declaration on an unknown code; build()
    /// reports these as `UnknownItemCode` rather than building them.
    placeholder: bool,
}

/// Builds a [`Catalog`] from code-addressed descriptions.
pub struct CatalogBuilder {
    name: String,
    topics: Vec<String>,
    items: Vec<PendingItem>,
    /// First misuse recorded by a chained call that cannot itself
    /// return an error (e.g. `category()` before any item); surfaced at
    /// `build()` so malformed catalogs become errors, not panics.
    deferred_error: Option<ModelError>,
}

impl CatalogBuilder {
    /// Starts a builder for a catalog with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CatalogBuilder {
            name: name.into(),
            topics: Vec::new(),
            items: Vec::new(),
            deferred_error: None,
        }
    }

    /// Declares the topic vocabulary (order defines topic ids).
    pub fn topics<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.topics = names.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a course-style item covering the named topics.
    pub fn course(
        mut self,
        code: impl Into<String>,
        name: impl Into<String>,
        kind: ItemKind,
        credits: f64,
        topics: &[&str],
    ) -> Self {
        self.items.push(PendingItem {
            code: code.into(),
            name: name.into(),
            kind,
            credits,
            topics: topics.iter().map(|t| (*t).to_owned()).collect(),
            category: None,
            poi: None,
            prereqs: Vec::new(),
            placeholder: false,
        });
        self
    }

    /// Adds a POI-style item.
    #[allow(clippy::too_many_arguments)]
    pub fn poi(
        mut self,
        code: impl Into<String>,
        name: impl Into<String>,
        kind: ItemKind,
        visit_hours: f64,
        themes: &[&str],
        lat: f64,
        lon: f64,
        popularity: f64,
    ) -> Self {
        self.items.push(PendingItem {
            code: code.into(),
            name: name.into(),
            kind,
            credits: visit_hours,
            topics: themes.iter().map(|t| (*t).to_owned()).collect(),
            category: None,
            poi: Some(PoiAttrs {
                lat,
                lon,
                popularity,
            }),
            prereqs: Vec::new(),
            placeholder: false,
        });
        self
    }

    /// Tags the most recently added item with a category. Calling it
    /// before any item has been added is reported by `build()` as
    /// [`ModelError::DanglingDeclaration`].
    pub fn category(mut self, category: Category) -> Self {
        match self.items.last_mut() {
            Some(item) => item.category = Some(category),
            None => {
                self.deferred_error
                    .get_or_insert(ModelError::DanglingDeclaration("category()"));
            }
        }
        self
    }

    /// Requires all of `antecedents` (by code) before `code` ("AND").
    pub fn requires_all(mut self, code: &str, antecedents: &[&str]) -> Self {
        self.push_prereq(
            code,
            PendingPrereq::All(antecedents.iter().map(|a| (*a).to_owned()).collect()),
        );
        self
    }

    /// Requires any one of `antecedents` before `code` ("OR").
    pub fn requires_any(mut self, code: &str, antecedents: &[&str]) -> Self {
        self.push_prereq(
            code,
            PendingPrereq::Any(antecedents.iter().map(|a| (*a).to_owned()).collect()),
        );
        self
    }

    fn push_prereq(&mut self, code: &str, p: PendingPrereq) {
        if let Some(item) = self.items.iter_mut().find(|i| i.code == code) {
            item.prereqs.push(p);
        } else {
            // Remember against a placeholder so build() can report the
            // unknown code uniformly.
            self.items.push(PendingItem {
                code: code.to_owned(),
                name: String::new(),
                kind: ItemKind::Secondary,
                credits: 0.0,
                topics: Vec::new(),
                category: None,
                poi: None,
                prereqs: vec![p],
                placeholder: true,
            });
        }
    }

    /// Resolves codes, assigns dense ids, and validates.
    pub fn build(self) -> Result<Catalog, ModelError> {
        if let Some(err) = self.deferred_error {
            return Err(err);
        }
        let vocabulary = TopicVocabulary::new(self.topics)?;
        // A placeholder created by a prereq declaration on an unknown
        // code surfaces as an unknown-code error.
        if let Some(ph) = self.items.iter().find(|i| i.placeholder) {
            return Err(ModelError::UnknownItemCode(ph.code.clone()));
        }
        // Credits / visit-hours must be finite and non-negative; a NaN
        // here would otherwise poison horizon arithmetic downstream.
        if let Some(bad) = self
            .items
            .iter()
            .find(|i| !i.credits.is_finite() || i.credits < 0.0)
        {
            return Err(ModelError::InvalidCredits {
                code: bad.code.clone(),
            });
        }
        let id_of = |code: &str| -> Result<ItemId, ModelError> {
            self.items
                .iter()
                .position(|i| i.code == code)
                .map(ItemId::from)
                .ok_or_else(|| ModelError::UnknownItemCode(code.to_owned()))
        };
        let mut built = Vec::with_capacity(self.items.len());
        for (idx, pending) in self.items.iter().enumerate() {
            let mut topics = vocabulary.zero_vector();
            for t in &pending.topics {
                let tid = vocabulary
                    .id_of(t)
                    .ok_or_else(|| ModelError::UnknownTopic(t.clone()))?;
                topics.set(tid);
            }
            let mut exprs = Vec::new();
            for p in &pending.prereqs {
                let expr = match p {
                    PendingPrereq::All(codes) => PrereqExpr::all_of(
                        codes
                            .iter()
                            .map(|c| id_of(c))
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                    PendingPrereq::Any(codes) => PrereqExpr::any_of(
                        codes
                            .iter()
                            .map(|c| id_of(c))
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                };
                if !expr.is_none() {
                    exprs.push(expr);
                }
            }
            let prereq = match exprs.len() {
                0 => PrereqExpr::None,
                1 => exprs.into_iter().next().expect("len checked"),
                _ => PrereqExpr::All(exprs),
            };
            built.push(Item {
                id: ItemId::from(idx),
                code: pending.code.clone(),
                name: pending.name.clone(),
                kind: pending.kind,
                credits: pending.credits,
                prereq,
                topics,
                category: pending.category,
                poi: pending.poi,
            });
        }
        let catalog = Catalog::new(self.name, vocabulary, built)?;
        tpp_obs::obs_event!(
            tpp_obs::Level::Debug,
            "catalog.build",
            name = catalog.name(),
            items = catalog.len(),
            topics = catalog.vocabulary().len(),
        );
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CatalogBuilder {
        CatalogBuilder::new("test")
            .topics(["a", "b", "c"])
            .course("X", "X course", ItemKind::Primary, 3.0, &["a"])
            .course("Y", "Y course", ItemKind::Secondary, 3.0, &["b"])
            .course("Z", "Z course", ItemKind::Secondary, 3.0, &["b", "c"])
    }

    #[test]
    fn builds_and_resolves_codes() {
        let cat = base().requires_any("Z", &["X", "Y"]).build().unwrap();
        assert_eq!(cat.len(), 3);
        let z = cat.by_code("Z").unwrap();
        assert_eq!(z.prereq, PrereqExpr::any_of([ItemId(0), ItemId(1)]));
        assert_eq!(z.topics.count_ones(), 2);
    }

    #[test]
    fn combines_all_and_any_declarations() {
        let cat = base()
            .requires_all("Z", &["X"])
            .requires_any("Z", &["Y"])
            .build()
            .unwrap();
        let z = cat.by_code("Z").unwrap();
        // ALL(X) collapses to Item(X); combined with Item(Y) under All.
        assert_eq!(
            z.prereq,
            PrereqExpr::All(vec![
                PrereqExpr::Item(ItemId(0)),
                PrereqExpr::Item(ItemId(1))
            ])
        );
    }

    #[test]
    fn unknown_prereq_target_code_errors() {
        let err = base().requires_all("Z", &["NOPE"]).build().unwrap_err();
        assert!(matches!(err, ModelError::UnknownItemCode(c) if c == "NOPE"));
    }

    #[test]
    fn prereq_on_unknown_item_errors() {
        let err = base().requires_all("NOPE", &["X"]).build().unwrap_err();
        assert!(matches!(err, ModelError::UnknownItemCode(c) if c == "NOPE"));
    }

    #[test]
    fn unknown_topic_errors() {
        let err = CatalogBuilder::new("t")
            .topics(["a"])
            .course("X", "X", ItemKind::Primary, 3.0, &["zz"])
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownTopic(t) if t == "zz"));
    }

    #[test]
    fn cycles_caught_by_catalog_validation() {
        let err = base()
            .requires_all("X", &["Y"])
            .requires_all("Y", &["X"])
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::PrerequisiteCycle(_)));
    }

    #[test]
    fn category_before_any_item_is_an_error_not_a_panic() {
        let err = CatalogBuilder::new("t")
            .topics(["a"])
            .category(Category(1))
            .course("X", "X", ItemKind::Primary, 3.0, &["a"])
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DanglingDeclaration("category()")));
        assert!(err.to_string().contains("category()"));
    }

    #[test]
    fn nan_credits_are_reported_as_invalid_credits() {
        // A user-supplied NaN must not be confused with the internal
        // placeholder trick that used to reserve NaN for unknown codes.
        let err = CatalogBuilder::new("t")
            .topics(["a"])
            .course("X", "X", ItemKind::Primary, f64::NAN, &["a"])
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidCredits { code } if code == "X"));
    }

    #[test]
    fn negative_and_infinite_credits_are_rejected() {
        for bad in [-1.0, f64::INFINITY, f64::NEG_INFINITY] {
            let err = CatalogBuilder::new("t")
                .topics(["a"])
                .course("X", "X", ItemKind::Primary, bad, &["a"])
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ModelError::InvalidCredits { ref code } if code == "X"),
                "credits {bad} gave {err:?}"
            );
        }
    }

    #[test]
    fn zero_credits_are_allowed() {
        let cat = CatalogBuilder::new("t")
            .topics(["a"])
            .course("X", "X", ItemKind::Primary, 0.0, &["a"])
            .build()
            .unwrap();
        assert_eq!(cat.by_code("X").unwrap().credits, 0.0);
    }

    #[test]
    fn poi_items_with_category() {
        let cat = CatalogBuilder::new("trip")
            .topics(["museum", "park"])
            .poi(
                "m1",
                "Museum",
                ItemKind::Primary,
                2.0,
                &["museum"],
                48.8,
                2.3,
                5.0,
            )
            .category(Category(1))
            .poi(
                "p1",
                "Park",
                ItemKind::Secondary,
                1.0,
                &["park"],
                48.9,
                2.4,
                3.5,
            )
            .build()
            .unwrap();
        assert!(cat.is_trip_catalog());
        assert_eq!(cat.by_code("m1").unwrap().category, Some(Category(1)));
        assert_eq!(cat.by_code("p1").unwrap().poi.unwrap().popularity, 3.5);
    }
}
