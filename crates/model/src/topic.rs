//! Topic/theme vectors as fixed-width bitsets.
//!
//! The paper represents the topics covered by an item as a Boolean vector
//! `T^m` of length `|T|` (§II-A1). The reward kernel evaluates
//! `|T_ideal ∩ (T_current(i+1) \ T_current(i))|` for every candidate action
//! of every step of every episode, so this is the hottest data structure in
//! the system. We store topic vectors as packed `u64` blocks which makes
//! union, intersection-count and difference-count a handful of word
//! operations (see the `ablation_bitset` bench for the measured win over a
//! naive `Vec<bool>`).

use crate::ids::TopicId;
use serde::{Deserialize, Serialize};
use std::fmt;

const BLOCK_BITS: usize = 64;

#[inline]
fn block_count(len: usize) -> usize {
    len.div_ceil(BLOCK_BITS)
}

/// A fixed-length Boolean topic vector, packed 64 topics per word.
///
/// All binary operations require both operands to have the same length;
/// mixing vocabularies is a logic error and panics in debug builds.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopicVector {
    /// Number of valid bits.
    len: usize,
    /// Packed bits, little-endian within each block. Trailing bits beyond
    /// `len` in the last block are always zero (an invariant every mutating
    /// operation preserves so that `count_ones` is a plain popcount).
    blocks: Vec<u64>,
}

impl TopicVector {
    /// An all-zero vector over `len` topics.
    pub fn zeros(len: usize) -> Self {
        TopicVector {
            len,
            blocks: vec![0; block_count(len)],
        }
    }

    /// An all-one vector over `len` topics.
    pub fn ones(len: usize) -> Self {
        let mut v = TopicVector {
            len,
            blocks: vec![u64::MAX; block_count(len)],
        };
        v.clear_tail();
        v
    }

    /// Builds a vector from an iterator of set topic ids.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn from_topics<I>(len: usize, topics: I) -> Self
    where
        I: IntoIterator<Item = TopicId>,
    {
        let mut v = Self::zeros(len);
        for t in topics {
            v.set(t);
        }
        v
    }

    /// Builds a vector from a `0/1` slice, as printed in the paper's
    /// Table II (e.g. `[0,1,1,0,0,0,0,0,0,0,0,0,0]` for Data Mining).
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b != 0 {
                v.set(TopicId::from(i));
            }
        }
        v
    }

    /// Number of topics in the vocabulary this vector is defined over.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero length (empty vocabulary).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether topic `t` is covered.
    #[inline]
    pub fn get(&self, t: TopicId) -> bool {
        let i = t.index();
        debug_assert!(i < self.len, "topic {i} out of range {}", self.len);
        (self.blocks[i / BLOCK_BITS] >> (i % BLOCK_BITS)) & 1 == 1
    }

    /// Sets topic `t`.
    #[inline]
    pub fn set(&mut self, t: TopicId) {
        let i = t.index();
        assert!(i < self.len, "topic {i} out of range {}", self.len);
        self.blocks[i / BLOCK_BITS] |= 1u64 << (i % BLOCK_BITS);
    }

    /// Clears topic `t`.
    #[inline]
    pub fn unset(&mut self, t: TopicId) {
        let i = t.index();
        assert!(i < self.len, "topic {i} out of range {}", self.len);
        self.blocks[i / BLOCK_BITS] &= !(1u64 << (i % BLOCK_BITS));
    }

    /// Number of covered topics (popcount).
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.blocks.iter().map(|b| b.count_ones()).sum()
    }

    /// In-place union: `self ∪= other`. This is the paper's
    /// `T_current ← T_current ∪ T^m` update (§III-B1).
    #[inline]
    pub fn union_with(&mut self, other: &TopicVector) {
        debug_assert_eq!(self.len, other.len, "vocabulary mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn intersection_count(&self, other: &TopicVector) -> u32 {
        debug_assert_eq!(self.len, other.len, "vocabulary mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// `|self \ other|` without allocating.
    #[inline]
    pub fn difference_count(&self, other: &TopicVector) -> u32 {
        debug_assert_eq!(self.len, other.len, "vocabulary mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & !b).count_ones())
            .sum()
    }

    /// The core quantity of the paper's topic-coverage reward `r1`
    /// (Eq. 3): the number of **new** topics item `m` adds that are also
    /// ideal, i.e. `|T_ideal ∩ (current ∪ T^m) \ current|` — computed here
    /// as `|ideal ∩ m \ current|` in one fused pass.
    #[inline]
    pub fn novel_ideal_coverage(&self, ideal: &TopicVector, current: &TopicVector) -> u32 {
        debug_assert_eq!(self.len, ideal.len, "vocabulary mismatch");
        debug_assert_eq!(self.len, current.len, "vocabulary mismatch");
        self.blocks
            .iter()
            .zip(&ideal.blocks)
            .zip(&current.blocks)
            .map(|((m, i), c)| (m & i & !c).count_ones())
            .sum()
    }

    /// `true` if every topic in `self` is also in `other`.
    pub fn is_subset_of(&self, other: &TopicVector) -> bool {
        debug_assert_eq!(self.len, other.len, "vocabulary mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Jaccard similarity `|a∩b| / |a∪b|`; `1.0` when both are empty.
    pub fn jaccard(&self, other: &TopicVector) -> f64 {
        debug_assert_eq!(self.len, other.len, "vocabulary mismatch");
        let mut inter = 0u32;
        let mut uni = 0u32;
        for (a, b) in self.blocks.iter().zip(&other.blocks) {
            inter += (a & b).count_ones();
            uni += (a | b).count_ones();
        }
        if uni == 0 {
            1.0
        } else {
            f64::from(inter) / f64::from(uni)
        }
    }

    /// Iterator over the set topic ids, in ascending order.
    pub fn iter_topics(&self) -> impl Iterator<Item = TopicId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(TopicId::from(bi * BLOCK_BITS + tz))
                }
            })
        })
    }

    /// Renders as the paper's `[0,1,1,...]` notation.
    pub fn to_bits(&self) -> Vec<u8> {
        (0..self.len)
            .map(|i| u8::from(self.get(TopicId::from(i))))
            .collect()
    }

    fn clear_tail(&mut self) {
        let rem = self.len % BLOCK_BITS;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for TopicVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TopicVector[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(TopicId::from(i))))?;
            if i + 1 < self.len {
                write!(f, ",")?;
            }
        }
        write!(f, "]")
    }
}

/// A named vocabulary of topics/themes: the set `T` of the paper.
///
/// The vocabulary owns the mapping between topic names (e.g. `"Clustering"`,
/// `"Museum"`) and dense [`TopicId`]s, and is the authority on vector
/// length. Lookups by name are linear-scan on purpose: vocabularies are
/// small (≤ ~100 per the paper) and are only consulted at dataset-build
/// time, never in the learning hot loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicVocabulary {
    names: Vec<String>,
}

impl TopicVocabulary {
    /// Creates a vocabulary from topic names. Duplicate names are rejected.
    pub fn new<S: Into<String>>(
        names: impl IntoIterator<Item = S>,
    ) -> Result<Self, crate::ModelError> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        for (i, n) in names.iter().enumerate() {
            if names[..i].iter().any(|m| m == n) {
                return Err(crate::ModelError::DuplicateTopic(n.clone()));
            }
        }
        Ok(TopicVocabulary { names })
    }

    /// Number of topics.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the vocabulary has no topics.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of topic `t`.
    pub fn name(&self, t: TopicId) -> &str {
        &self.names[t.index()]
    }

    /// Id of the topic with the given name, if present.
    pub fn id_of(&self, name: &str) -> Option<TopicId> {
        self.names.iter().position(|n| n == name).map(TopicId::from)
    }

    /// All names, in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// A zero vector sized for this vocabulary.
    pub fn zero_vector(&self) -> TopicVector {
        TopicVector::zeros(self.len())
    }

    /// Builds a vector covering the named topics.
    ///
    /// # Errors
    /// Returns [`crate::ModelError::UnknownTopic`] for names not in the
    /// vocabulary.
    pub fn vector_of(&self, names: &[&str]) -> Result<TopicVector, crate::ModelError> {
        let mut v = self.zero_vector();
        for name in names {
            let id = self
                .id_of(name)
                .ok_or_else(|| crate::ModelError::UnknownTopic((*name).to_owned()))?;
            v.set(id);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(bits: &[u8]) -> TopicVector {
        TopicVector::from_bits(bits)
    }

    #[test]
    fn zeros_and_ones() {
        let z = TopicVector::zeros(13);
        assert_eq!(z.count_ones(), 0);
        let o = TopicVector::ones(13);
        assert_eq!(o.count_ones(), 13);
        assert_eq!(o.len(), 13);
    }

    #[test]
    fn ones_clears_tail_bits() {
        // 70 topics spans two blocks; the 58 tail bits of block 1 must be 0.
        let o = TopicVector::ones(70);
        assert_eq!(o.count_ones(), 70);
    }

    #[test]
    fn set_get_unset() {
        let mut v = TopicVector::zeros(100);
        v.set(TopicId(0));
        v.set(TopicId(63));
        v.set(TopicId(64));
        v.set(TopicId(99));
        assert!(
            v.get(TopicId(0)) && v.get(TopicId(63)) && v.get(TopicId(64)) && v.get(TopicId(99))
        );
        assert_eq!(v.count_ones(), 4);
        v.unset(TopicId(63));
        assert!(!v.get(TopicId(63)));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn paper_table2_data_mining_vector() {
        // T^m2 = [0,1,1,0,0,0,0,0,0,0,0,0,0] covers Classification and
        // Clustering out of 13 topics (§II-B1).
        let m2 = tv(&[0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(m2.len(), 13);
        assert_eq!(m2.count_ones(), 2);
        assert!(m2.get(TopicId(1)) && m2.get(TopicId(2)));
    }

    #[test]
    fn union_and_intersection() {
        let mut a = tv(&[1, 0, 1, 0]);
        let b = tv(&[0, 1, 1, 0]);
        assert_eq!(a.intersection_count(&b), 1);
        a.union_with(&b);
        assert_eq!(a.to_bits(), vec![1, 1, 1, 0]);
    }

    #[test]
    fn difference_count() {
        let a = tv(&[1, 1, 1, 0]);
        let b = tv(&[0, 1, 0, 0]);
        assert_eq!(a.difference_count(&b), 2);
        assert_eq!(b.difference_count(&a), 0);
    }

    #[test]
    fn novel_ideal_coverage_matches_paper_example() {
        // §III-B1: with T_ideal = [0,1,1,0,0,0,1,0,0,1,0,0,0] and current
        // coverage from m2 = Data Mining, adding m4 = Linear Algebra
        // ([0,0,0,0,0,0,0,0,0,1,1,0,0], ideal topic "Linear System" at
        // index 9) gains 1; adding m5 = Big Data gains 0.
        let ideal = tv(&[0, 1, 1, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0]);
        let current = tv(&[0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]); // after m2
        let m4 = tv(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0]);
        let m5 = tv(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1]);
        assert_eq!(m4.novel_ideal_coverage(&ideal, &current), 1);
        assert_eq!(m5.novel_ideal_coverage(&ideal, &current), 0);
    }

    #[test]
    fn subset_and_jaccard() {
        let a = tv(&[1, 0, 1, 0]);
        let b = tv(&[1, 1, 1, 0]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!((a.jaccard(&b) - 2.0 / 3.0).abs() < 1e-12);
        let e = TopicVector::zeros(4);
        assert!((e.jaccard(&TopicVector::zeros(4)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_topics_ascending() {
        let v = TopicVector::from_topics(130, [TopicId(3), TopicId(64), TopicId(129)]);
        let got: Vec<u32> = v.iter_topics().map(|t| t.0).collect();
        assert_eq!(got, vec![3, 64, 129]);
    }

    #[test]
    fn vocabulary_lookup() {
        let voc = TopicVocabulary::new(["Museum", "Art Gallery", "River"]).unwrap();
        assert_eq!(voc.len(), 3);
        assert_eq!(voc.id_of("River"), Some(TopicId(2)));
        assert_eq!(voc.id_of("Opera"), None);
        assert_eq!(voc.name(TopicId(0)), "Museum");
        let v = voc.vector_of(&["Museum", "River"]).unwrap();
        assert_eq!(v.to_bits(), vec![1, 0, 1]);
    }

    #[test]
    fn vocabulary_rejects_duplicates() {
        assert!(TopicVocabulary::new(["A", "B", "A"]).is_err());
    }

    #[test]
    fn vector_of_unknown_topic_errors() {
        let voc = TopicVocabulary::new(["A"]).unwrap();
        assert!(voc.vector_of(&["Z"]).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let v = tv(&[1, 0, 1, 1, 0]);
        let s = serde_json::to_string(&v).unwrap();
        let back: TopicVector = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
