//! Catalogs: the item universe `I` with its topic vocabulary.

use crate::error::ModelError;
use crate::ids::ItemId;
use crate::item::{Item, ItemKind};
use crate::topic::TopicVocabulary;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An immutable item universe: all items of one planning instance plus the
/// topic vocabulary they are defined over.
///
/// Invariants, enforced at construction:
/// * item ids are dense (`items[i].id == i`);
/// * item codes are unique;
/// * every topic vector has the vocabulary's length;
/// * prerequisite expressions only reference catalog items, never the item
///   itself, and the prerequisite graph is acyclic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    name: String,
    vocabulary: TopicVocabulary,
    items: Vec<Item>,
    #[serde(skip)]
    code_index: HashMap<String, ItemId>,
}

impl Catalog {
    /// Builds a catalog, validating all invariants.
    pub fn new(
        name: impl Into<String>,
        vocabulary: TopicVocabulary,
        items: Vec<Item>,
    ) -> Result<Self, ModelError> {
        let mut code_index = HashMap::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if item.id.index() != i {
                return Err(ModelError::UnknownItem(item.id));
            }
            if item.topics.len() != vocabulary.len() {
                return Err(ModelError::VocabularyMismatch {
                    item: item.id,
                    got: item.topics.len(),
                    expected: vocabulary.len(),
                });
            }
            if code_index.insert(item.code.clone(), item.id).is_some() {
                return Err(ModelError::DuplicateItemCode(item.code.clone()));
            }
        }
        let cat = Catalog {
            name: name.into(),
            vocabulary,
            items,
            code_index,
        };
        cat.check_prereqs()?;
        Ok(cat)
    }

    /// Rebuilds the (non-serialized) code index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.code_index = self
            .items
            .iter()
            .map(|it| (it.code.clone(), it.id))
            .collect();
    }

    fn check_prereqs(&self) -> Result<(), ModelError> {
        let n = self.items.len();
        for item in &self.items {
            for dep in item.prereq.referenced_items() {
                if dep.index() >= n {
                    return Err(ModelError::UnknownItem(dep));
                }
                if dep == item.id {
                    return Err(ModelError::SelfPrerequisite(item.id));
                }
            }
        }
        // Cycle detection by iterative DFS with colors over "depends-on"
        // edges (treating AND and OR uniformly: any reference is an edge).
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Stack of (node, next-child-index) over precomputed dep lists.
            let mut stack: Vec<(usize, Vec<ItemId>, usize)> =
                vec![(start, self.items[start].prereq.referenced_items(), 0)];
            color[start] = Color::Gray;
            while let Some((node, deps, idx)) = stack.last_mut() {
                if *idx < deps.len() {
                    let child = deps[*idx].index();
                    *idx += 1;
                    match color[child] {
                        Color::White => {
                            color[child] = Color::Gray;
                            stack.push((child, self.items[child].prereq.referenced_items(), 0));
                        }
                        Color::Gray => {
                            return Err(ModelError::PrerequisiteCycle(ItemId::from(child)));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[*node] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Catalog name (e.g. `"univ1/ds-ct"`, `"trips/paris"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The topic vocabulary.
    pub fn vocabulary(&self) -> &TopicVocabulary {
        &self.vocabulary
    }

    /// Number of items `|I|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the catalog has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range; ids handed out by this catalog
    /// are always valid.
    #[inline]
    pub fn item(&self, id: ItemId) -> &Item {
        &self.items[id.index()]
    }

    /// The item with the given id, or `None` when out of range.
    pub fn get(&self, id: ItemId) -> Option<&Item> {
        self.items.get(id.index())
    }

    /// Looks an item up by its stable code.
    pub fn by_code(&self, code: &str) -> Option<&Item> {
        self.code_index.get(code).map(|id| self.item(*id))
    }

    /// All items in id order.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Ids of all items, in order.
    pub fn ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.items.len()).map(ItemId::from)
    }

    /// Number of primary items in the universe.
    pub fn primary_count(&self) -> usize {
        self.items.iter().filter(|i| i.is_primary()).count()
    }

    /// Number of secondary items in the universe.
    pub fn secondary_count(&self) -> usize {
        self.len() - self.primary_count()
    }

    /// Items of a given kind.
    pub fn items_of_kind(&self, kind: ItemKind) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(move |i| i.kind == kind)
    }

    /// `true` if any item carries POI attributes (trip catalog).
    pub fn is_trip_catalog(&self) -> bool {
        self.items.iter().any(|i| i.poi.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prereq::PrereqExpr;
    use crate::topic::TopicVector;

    fn voc13() -> TopicVocabulary {
        TopicVocabulary::new([
            "Algorithms",
            "Classification",
            "Clustering",
            "Statistics",
            "Regression",
            "Data Structure",
            "Neural Network",
            "Probability",
            "Data Visualization",
            "Linear System",
            "Matrix Decomposition",
            "Data Management",
            "Data Transfer",
        ])
        .unwrap()
    }

    fn table2_catalog() -> Catalog {
        crate::toy::table2_catalog()
    }

    #[test]
    fn table2_catalog_builds() {
        let c = table2_catalog();
        assert_eq!(c.len(), 6);
        assert_eq!(c.primary_count(), 3);
        assert_eq!(c.secondary_count(), 3);
        assert!(!c.is_trip_catalog());
        assert_eq!(c.by_code("m6").unwrap().name, "Machine Learning");
        assert_eq!(c.vocabulary().len(), 13);
    }

    #[test]
    fn dense_id_violation_rejected() {
        let items = vec![Item::course(
            ItemId(5),
            "x",
            "X",
            ItemKind::Primary,
            3.0,
            PrereqExpr::None,
            TopicVector::zeros(13),
        )];
        assert!(Catalog::new("bad", voc13(), items).is_err());
    }

    #[test]
    fn duplicate_code_rejected() {
        let items = vec![
            Item::course(
                ItemId(0),
                "same",
                "A",
                ItemKind::Primary,
                3.0,
                PrereqExpr::None,
                TopicVector::zeros(13),
            ),
            Item::course(
                ItemId(1),
                "same",
                "B",
                ItemKind::Primary,
                3.0,
                PrereqExpr::None,
                TopicVector::zeros(13),
            ),
        ];
        assert!(matches!(
            Catalog::new("bad", voc13(), items),
            Err(ModelError::DuplicateItemCode(_))
        ));
    }

    #[test]
    fn vocabulary_mismatch_rejected() {
        let items = vec![Item::course(
            ItemId(0),
            "x",
            "X",
            ItemKind::Primary,
            3.0,
            PrereqExpr::None,
            TopicVector::zeros(7),
        )];
        assert!(matches!(
            Catalog::new("bad", voc13(), items),
            Err(ModelError::VocabularyMismatch { .. })
        ));
    }

    #[test]
    fn self_prereq_rejected() {
        let items = vec![Item::course(
            ItemId(0),
            "x",
            "X",
            ItemKind::Primary,
            3.0,
            PrereqExpr::Item(ItemId(0)),
            TopicVector::zeros(13),
        )];
        assert!(matches!(
            Catalog::new("bad", voc13(), items),
            Err(ModelError::SelfPrerequisite(_))
        ));
    }

    #[test]
    fn prereq_cycle_rejected() {
        let items = vec![
            Item::course(
                ItemId(0),
                "a",
                "A",
                ItemKind::Primary,
                3.0,
                PrereqExpr::Item(ItemId(1)),
                TopicVector::zeros(13),
            ),
            Item::course(
                ItemId(1),
                "b",
                "B",
                ItemKind::Primary,
                3.0,
                PrereqExpr::Item(ItemId(0)),
                TopicVector::zeros(13),
            ),
        ];
        assert!(matches!(
            Catalog::new("bad", voc13(), items),
            Err(ModelError::PrerequisiteCycle(_))
        ));
    }

    #[test]
    fn unknown_prereq_target_rejected() {
        let items = vec![Item::course(
            ItemId(0),
            "a",
            "A",
            ItemKind::Primary,
            3.0,
            PrereqExpr::Item(ItemId(42)),
            TopicVector::zeros(13),
        )];
        assert!(matches!(
            Catalog::new("bad", voc13(), items),
            Err(ModelError::UnknownItem(_))
        ));
    }

    #[test]
    fn rebuild_index_restores_code_lookup() {
        let c = table2_catalog();
        let json = serde_json::to_string(&c).unwrap();
        let mut back: Catalog = serde_json::from_str(&json).unwrap();
        assert!(back.by_code("m1").is_none()); // index not serialized
        back.rebuild_index();
        assert_eq!(back.by_code("m1").unwrap().id, ItemId(0));
    }

    #[test]
    fn items_of_kind_filters() {
        let c = table2_catalog();
        let primaries: Vec<&str> = c
            .items_of_kind(ItemKind::Primary)
            .map(|i| i.code.as_str())
            .collect();
        assert_eq!(primaries, vec!["m1", "m3", "m6"]);
    }
}
