//! The paper's running toy instances, usable from tests, examples and
//! documentation: the Table II course catalog and the §II-B2 Paris POIs.

use crate::catalog::Catalog;
use crate::constraints::{HardConstraints, SoftConstraints};
use crate::ids::ItemId;
use crate::item::{Item, ItemKind, PoiAttrs};
use crate::prereq::PrereqExpr;
use crate::template::TemplateSet;
use crate::topic::{TopicVector, TopicVocabulary};

/// The 13-topic vocabulary of §II-B1.
pub fn course_vocabulary() -> TopicVocabulary {
    TopicVocabulary::new([
        "Algorithms",
        "Classification",
        "Clustering",
        "Statistics",
        "Regression",
        "Data Structure",
        "Neural Network",
        "Probability",
        "Data Visualization",
        "Linear System",
        "Matrix Decomposition",
        "Data Management",
        "Data Transfer",
    ])
    .expect("static vocabulary is valid")
}

/// The paper's Table II toy course catalog (6 courses, 13 topics).
///
/// `m5` (Big Data) requires `Data Mining OR Data Analytics`; `m6`
/// (Machine Learning) requires `Linear Algebra AND Data Mining`.
pub fn table2_catalog() -> Catalog {
    let v = TopicVector::from_bits;
    let items = vec![
        Item::course(
            ItemId(0),
            "m1",
            "Data Structures and Algorithms",
            ItemKind::Primary,
            3.0,
            PrereqExpr::None,
            v(&[1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0]),
        ),
        Item::course(
            ItemId(1),
            "m2",
            "Data Mining",
            ItemKind::Secondary,
            3.0,
            PrereqExpr::None,
            v(&[0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
        ),
        Item::course(
            ItemId(2),
            "m3",
            "Data Analytics",
            ItemKind::Primary,
            3.0,
            PrereqExpr::None,
            v(&[0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0]),
        ),
        Item::course(
            ItemId(3),
            "m4",
            "Linear Algebra",
            ItemKind::Secondary,
            3.0,
            PrereqExpr::None,
            v(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0]),
        ),
        Item::course(
            ItemId(4),
            "m5",
            "Big Data",
            ItemKind::Secondary,
            3.0,
            PrereqExpr::any_of([ItemId(1), ItemId(2)]),
            v(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1]),
        ),
        Item::course(
            ItemId(5),
            "m6",
            "Machine Learning",
            ItemKind::Primary,
            3.0,
            PrereqExpr::all_of([ItemId(3), ItemId(1)]),
            v(&[0, 1, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0]),
        ),
    ];
    Catalog::new("paper/table2", course_vocabulary(), items).expect("static catalog is valid")
}

/// Hard constraints for the Table II instance: 6 courses of 3 credits each
/// (18 credits), 3 primary + 3 secondary, gap 3 — sized so the example
/// sequence `m1→m2→m4→m5→m6→m3` of §II-B1 is a complete plan.
pub fn table2_hard() -> HardConstraints {
    HardConstraints {
        credits: 18.0,
        n_primary: 3,
        n_secondary: 3,
        gap: 3,
    }
}

/// Soft constraints for the Table II instance: Example 1's
/// `T_ideal = [0,1,1,0,0,0,1,0,0,1,0,0,0]` (Classification, Clustering,
/// Neural Network, Linear System) and the example template set.
pub fn table2_soft() -> SoftConstraints {
    SoftConstraints::new(
        TopicVector::from_bits(&[0, 1, 1, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0]),
        TemplateSet::paper_course_example(),
        &table2_hard(),
    )
    .expect("static soft constraints are valid")
}

/// The 8-theme trip vocabulary of §II-B2.
pub fn trip_vocabulary() -> TopicVocabulary {
    TopicVocabulary::new([
        "Museum",
        "Art Gallery",
        "Cathedral",
        "Palace",
        "River",
        "Street",
        "Restaurant",
        "Architecture",
    ])
    .expect("static vocabulary is valid")
}

/// A 9-POI Paris toy catalog matching the §II-B2 narrative (Louvre covers
/// Museum + Art Gallery + Architecture, restaurants must follow a museum
/// visit, …).
pub fn paris_toy_catalog() -> Catalog {
    let v = TopicVector::from_bits;
    let poi = |lat: f64, lon: f64, pop: f64| PoiAttrs {
        lat,
        lon,
        popularity: pop,
    };
    let items = vec![
        Item::poi(
            ItemId(0),
            "eiffel tower",
            "Eiffel Tower",
            ItemKind::Primary,
            1.5,
            PrereqExpr::None,
            v(&[0, 0, 0, 0, 0, 0, 0, 1]),
            poi(48.8584, 2.2945, 5.0),
        ),
        Item::poi(
            ItemId(1),
            "louvre museum",
            "Louvre Museum",
            ItemKind::Primary,
            2.5,
            PrereqExpr::None,
            v(&[1, 1, 0, 0, 0, 0, 0, 1]),
            poi(48.8606, 2.3376, 5.0),
        ),
        Item::poi(
            ItemId(2),
            "pantheon",
            "Panthéon",
            ItemKind::Secondary,
            1.0,
            PrereqExpr::None,
            v(&[0, 0, 0, 0, 0, 0, 0, 1]),
            poi(48.8462, 2.3464, 4.2),
        ),
        Item::poi(
            ItemId(3),
            "rue des martyrs",
            "Rue des Martyrs",
            ItemKind::Secondary,
            0.5,
            PrereqExpr::None,
            v(&[0, 0, 0, 0, 0, 1, 0, 0]),
            poi(48.8781, 2.3394, 3.6),
        ),
        Item::poi(
            ItemId(4),
            "musee d'orsay",
            "Musée d'Orsay",
            ItemKind::Secondary,
            2.0,
            PrereqExpr::None,
            v(&[1, 1, 0, 0, 0, 0, 0, 0]),
            poi(48.8600, 2.3266, 4.7),
        ),
        Item::poi(
            ItemId(5),
            "notre-dame",
            "Cathédrale Notre-Dame de Paris",
            ItemKind::Secondary,
            1.0,
            PrereqExpr::None,
            v(&[0, 0, 1, 0, 0, 0, 0, 1]),
            poi(48.8530, 2.3499, 4.8),
        ),
        Item::poi(
            ItemId(6),
            "palais garnier",
            "Palais Garnier",
            ItemKind::Secondary,
            1.0,
            PrereqExpr::None,
            v(&[0, 0, 0, 1, 0, 0, 0, 1]),
            poi(48.8720, 2.3316, 4.4),
        ),
        Item::poi(
            ItemId(7),
            "river seine",
            "The River Seine",
            ItemKind::Secondary,
            0.5,
            PrereqExpr::None,
            v(&[0, 0, 0, 0, 1, 0, 0, 0]),
            poi(48.8566, 2.3430, 4.5),
        ),
        Item::poi(
            ItemId(8),
            "le cinq",
            "Le Cinq",
            ItemKind::Secondary,
            1.5,
            // §III-B2: "If Louvre is recommended before Le Cinq
            // (restaurant), then an action gets value 1 for r2".
            PrereqExpr::Item(ItemId(1)),
            v(&[0, 0, 0, 0, 0, 0, 1, 0]),
            poi(48.8689, 2.3008, 4.1),
        ),
    ];
    Catalog::new("paper/paris-toy", trip_vocabulary(), items).expect("static catalog is valid")
}

/// Trip hard constraints of §II-B2: `⟨6, 2, 3, 1⟩`.
pub fn paris_toy_hard() -> HardConstraints {
    HardConstraints::trip_example()
}

/// Trip soft constraints of Example 2: ideal themes Museum, Art Gallery,
/// River, Restaurant, Architecture; the §II-B2 template set.
pub fn paris_toy_soft() -> SoftConstraints {
    let voc = trip_vocabulary();
    SoftConstraints::new(
        voc.vector_of(&[
            "Museum",
            "Art Gallery",
            "River",
            "Restaurant",
            "Architecture",
        ])
        .expect("static topics exist"),
        TemplateSet::paper_trip_example(),
        &paris_toy_hard(),
    )
    .expect("static soft constraints are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_course_instance_is_consistent() {
        let c = table2_catalog();
        assert_eq!(c.len(), 6);
        assert_eq!(c.primary_count(), 3);
        let hard = table2_hard();
        assert_eq!(hard.horizon(), 6);
        let soft = table2_soft();
        assert_eq!(soft.templates.len(), 3);
        assert_eq!(soft.ideal_topics.count_ones(), 4);
    }

    #[test]
    fn toy_trip_instance_is_consistent() {
        let c = paris_toy_catalog();
        assert_eq!(c.len(), 9);
        assert!(c.is_trip_catalog());
        assert_eq!(c.primary_count(), 2);
        // Louvre's topic vector from §II-B2: [1,1,0,0,0,0,0,1].
        let louvre = c.by_code("louvre museum").unwrap();
        assert_eq!(louvre.topics.to_bits(), vec![1, 1, 0, 0, 0, 0, 0, 1]);
        // Le Cinq's antecedent is the Louvre.
        let cinq = c.by_code("le cinq").unwrap();
        assert_eq!(cinq.prereq, PrereqExpr::Item(ItemId(1)));
        let soft = paris_toy_soft();
        assert_eq!(soft.ideal_topics.count_ones(), 5);
    }
}
