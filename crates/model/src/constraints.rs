//! Hard and soft constraints of the Task Planning Problem.

use crate::template::TemplateSet;
use crate::topic::TopicVector;
use serde::{Deserialize, Serialize};

/// The paper's `P_hard = ⟨#cr, #primary, #secondary, gap⟩` (§II-A2).
///
/// For course planning `#cr` is a *minimum* credit requirement (e.g. 30
/// credit hours); for trip planning it is a visitation-time *budget* (e.g.
/// 6 hours) — the environment stops when the budget would be exceeded.
/// `gap` is the lower bound on the in-sequence distance between an item
/// and its antecedents (`Dist(pre^m, m) ≥ gap`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardConstraints {
    /// `#cr`: credit-hour requirement (courses) or time budget (trips).
    pub credits: f64,
    /// `#primary`: required number of primary items.
    pub n_primary: usize,
    /// `#secondary`: required number of secondary items.
    pub n_secondary: usize,
    /// `gap`: minimum sequence distance between an item and its
    /// antecedents (e.g. 3 ≈ one semester at 3 courses/semester).
    pub gap: usize,
}

impl HardConstraints {
    /// The paper's course-planning running example: `⟨30, 5, 5, 3⟩`.
    pub fn course_example() -> Self {
        HardConstraints {
            credits: 30.0,
            n_primary: 5,
            n_secondary: 5,
            gap: 3,
        }
    }

    /// The paper's trip-planning running example: `⟨6, 2, 3, 1⟩`.
    pub fn trip_example() -> Self {
        HardConstraints {
            credits: 6.0,
            n_primary: 2,
            n_secondary: 3,
            gap: 1,
        }
    }

    /// Total plan length `H = #primary + #secondary`.
    ///
    /// For fixed-credit courses this coincides with `#cr / cr^m` (§III-A:
    /// "a requirement of 30 credits translates to taking 10 items, thus
    /// H = 10").
    #[inline]
    pub fn horizon(&self) -> usize {
        self.n_primary + self.n_secondary
    }

    /// Sanity-checks the constraint values.
    pub fn validate(&self) -> Result<(), crate::ModelError> {
        if self.credits <= 0.0 || !self.credits.is_finite() {
            return Err(crate::ModelError::InvalidConstraints(format!(
                "credits must be positive and finite, got {}",
                self.credits
            )));
        }
        if self.horizon() == 0 {
            return Err(crate::ModelError::InvalidConstraints(
                "n_primary + n_secondary must be > 0".into(),
            ));
        }
        Ok(())
    }
}

/// Trip-only hard constraints layered on top of [`HardConstraints`]
/// (§IV-A1: distance threshold `d`; the trip `gap` is realised as "not
/// visiting two POIs of the same theme consecutively").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripConstraints {
    /// Maximum total inter-POI travel distance in kilometres (`d`), if any.
    pub max_distance_km: Option<f64>,
    /// Forbid two consecutive POIs sharing a theme.
    pub no_consecutive_same_theme: bool,
}

impl Default for TripConstraints {
    fn default() -> Self {
        TripConstraints {
            max_distance_km: Some(5.0),
            no_consecutive_same_theme: true,
        }
    }
}

/// The paper's `P_soft = ⟨T_ideal, IT⟩` (§II-A3): the user's ideal
/// topic/theme coverage and the expert's interleaving template set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftConstraints {
    /// `T_ideal`: topics the user wishes covered.
    pub ideal_topics: TopicVector,
    /// `IT`: the expert-provided set of ideal primary/secondary
    /// permutations.
    pub templates: TemplateSet,
}

impl SoftConstraints {
    /// Creates soft constraints, checking template shape against the hard
    /// constraints they will accompany.
    pub fn new(
        ideal_topics: TopicVector,
        templates: TemplateSet,
        hard: &HardConstraints,
    ) -> Result<Self, crate::ModelError> {
        templates.check_shape(hard)?;
        Ok(SoftConstraints {
            ideal_topics,
            templates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{InterleavingTemplate, TemplateSet};

    #[test]
    fn course_example_matches_paper() {
        let h = HardConstraints::course_example();
        assert_eq!(h.credits, 30.0);
        assert_eq!(h.n_primary, 5);
        assert_eq!(h.n_secondary, 5);
        assert_eq!(h.gap, 3);
        assert_eq!(h.horizon(), 10);
        h.validate().unwrap();
    }

    #[test]
    fn trip_example_matches_paper() {
        let h = HardConstraints::trip_example();
        assert_eq!(h.credits, 6.0);
        assert_eq!(h.horizon(), 5);
        assert_eq!(h.gap, 1);
        h.validate().unwrap();
    }

    #[test]
    fn invalid_constraints_rejected() {
        let mut h = HardConstraints::course_example();
        h.credits = 0.0;
        assert!(h.validate().is_err());
        let mut h2 = HardConstraints::course_example();
        h2.n_primary = 0;
        h2.n_secondary = 0;
        assert!(h2.validate().is_err());
        let mut h3 = HardConstraints::course_example();
        h3.credits = f64::NAN;
        assert!(h3.validate().is_err());
    }

    #[test]
    fn soft_constraints_check_template_shape() {
        let hard = HardConstraints {
            credits: 6.0,
            n_primary: 1,
            n_secondary: 1,
            gap: 1,
        };
        let good = TemplateSet::new(vec![InterleavingTemplate::from_str("PS").unwrap()]);
        assert!(SoftConstraints::new(crate::TopicVector::zeros(4), good, &hard).is_ok());
        let bad = TemplateSet::new(vec![InterleavingTemplate::from_str("PP").unwrap()]);
        assert!(SoftConstraints::new(crate::TopicVector::zeros(4), bad, &hard).is_err());
    }

    #[test]
    fn trip_constraints_default() {
        let t = TripConstraints::default();
        assert_eq!(t.max_distance_km, Some(5.0));
        assert!(t.no_consecutive_same_theme);
    }
}
