//! # tpp-model
//!
//! Data model for the **Task Planning Problem (TPP)** as defined in
//! *"Guided Task Planning Under Complex Constraints"* (ICDE 2022).
//!
//! The paper models a planning universe as a set of **items**
//! `m = ⟨type, cr, pre, T⟩` (courses or points of interest), a set of
//! **topics/themes**, **hard constraints**
//! `P_hard = ⟨#cr, #primary, #secondary, gap⟩` and **soft constraints**
//! `P_soft = ⟨T_ideal, IT⟩` where `IT` is a set of ideal
//! primary/secondary interleaving permutations.
//!
//! This crate contains only the domain model: identifiers, topic-vector
//! bitsets, items with AND/OR prerequisite expressions, constraint types,
//! interleaving templates, plans, catalogs, and plan validation. The CMDP
//! formulation, reward design and learners live in `tpp-core`.

#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod constraints;
pub mod error;
pub mod ids;
pub mod instance;
pub mod item;
pub mod plan;
pub mod prereq;
pub mod template;
pub mod topic;
pub mod toy;
pub mod validate;

pub use builder::CatalogBuilder;
pub use catalog::Catalog;
pub use constraints::{HardConstraints, SoftConstraints, TripConstraints};
pub use error::ModelError;
pub use ids::{ItemId, TopicId};
pub use instance::PlanningInstance;
pub use item::{Category, Item, ItemKind, PoiAttrs};
pub use plan::Plan;
pub use prereq::PrereqExpr;
pub use template::{InterleavingTemplate, SlotKind, TemplateSet};
pub use topic::{TopicVector, TopicVocabulary};
pub use validate::{validate_category_minimums, validate_plan, validate_trip_plan, Violation};
