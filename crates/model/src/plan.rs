//! Plans: ordered sequences of items (the output of a planner).

use crate::catalog::Catalog;
use crate::ids::ItemId;
use crate::item::ItemKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A recommended sequence of items.
///
/// A `Plan` is just the ordered id list plus cheap accessors; whether it
/// satisfies a constraint set is decided by [`crate::validate_plan`], and
/// its quality score by `tpp-core::score`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Plan {
    items: Vec<ItemId>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Plan { items: Vec::new() }
    }

    /// A plan over the given sequence.
    pub fn from_items(items: Vec<ItemId>) -> Self {
        Plan { items }
    }

    /// Builds a plan by resolving item codes against a catalog.
    ///
    /// # Errors
    /// Returns [`crate::ModelError::UnknownItemCode`] for unresolvable
    /// codes.
    pub fn from_codes(catalog: &Catalog, codes: &[&str]) -> Result<Self, crate::ModelError> {
        let items = codes
            .iter()
            .map(|c| {
                catalog
                    .by_code(c)
                    .map(|it| it.id)
                    .ok_or_else(|| crate::ModelError::UnknownItemCode((*c).to_owned()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Plan { items })
    }

    /// Appends an item.
    #[inline]
    pub fn push(&mut self, id: ItemId) {
        self.items.push(id);
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` for the empty plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item sequence.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Position of `id` in the plan, if present.
    #[inline]
    pub fn position_of(&self, id: ItemId) -> Option<usize> {
        self.items.iter().position(|&x| x == id)
    }

    /// `true` if the plan contains `id`.
    #[inline]
    pub fn contains(&self, id: ItemId) -> bool {
        self.position_of(id).is_some()
    }

    /// The primary/secondary slot sequence this plan realizes, used by the
    /// interleaving similarity kernel.
    pub fn kind_sequence(&self, catalog: &Catalog) -> Vec<ItemKind> {
        self.items.iter().map(|&id| catalog.item(id).kind).collect()
    }

    /// Total credits (course plans) / total visit hours (trip plans).
    pub fn total_credits(&self, catalog: &Catalog) -> f64 {
        self.items.iter().map(|&id| catalog.item(id).credits).sum()
    }

    /// Number of primary items in the plan.
    pub fn primary_count(&self, catalog: &Catalog) -> usize {
        self.items
            .iter()
            .filter(|&&id| catalog.item(id).is_primary())
            .count()
    }

    /// Union of all topics covered by the plan's items.
    pub fn covered_topics(&self, catalog: &Catalog) -> crate::TopicVector {
        let mut cov = catalog.vocabulary().zero_vector();
        for &id in &self.items {
            cov.union_with(&catalog.item(id).topics);
        }
        cov
    }

    /// Renders the plan as `code : kind → code : kind → …`, the notation
    /// of the paper's Table V.
    pub fn render(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        for (i, &id) in self.items.iter().enumerate() {
            if i > 0 {
                out.push_str(" → ");
            }
            let it = catalog.item(id);
            out.push_str(&it.code);
            out.push_str(" : ");
            out.push_str(if it.is_primary() { "core" } else { "elective" });
        }
        out
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, id) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(" → ")?;
            }
            write!(f, "{id}")?;
        }
        Ok(())
    }
}

impl FromIterator<ItemId> for Plan {
    fn from_iter<T: IntoIterator<Item = ItemId>>(iter: T) -> Self {
        Plan {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn paper_example1_sequence() {
        // §II-B1: m1 → m2 → m4 → m5 → m6 → m3 fully satisfies I2 = PSSSPP.
        let cat = toy::table2_catalog();
        let plan = Plan::from_codes(&cat, &["m1", "m2", "m4", "m5", "m6", "m3"]).unwrap();
        assert_eq!(plan.len(), 6);
        let kinds: String = plan
            .kind_sequence(&cat)
            .iter()
            .map(|k| if k.is_primary() { 'P' } else { 'S' })
            .collect();
        assert_eq!(kinds, "PSSSPP");
        assert_eq!(plan.total_credits(&cat), 18.0);
        assert_eq!(plan.primary_count(&cat), 3);
    }

    #[test]
    fn from_codes_rejects_unknown() {
        let cat = toy::table2_catalog();
        assert!(Plan::from_codes(&cat, &["m1", "nope"]).is_err());
    }

    #[test]
    fn position_and_contains() {
        let plan = Plan::from_items(vec![ItemId(3), ItemId(1)]);
        assert_eq!(plan.position_of(ItemId(1)), Some(1));
        assert!(plan.contains(ItemId(3)));
        assert!(!plan.contains(ItemId(9)));
    }

    #[test]
    fn covered_topics_unions() {
        let cat = toy::table2_catalog();
        let plan = Plan::from_codes(&cat, &["m2", "m4"]).unwrap();
        // m2 covers {1,2}; m4 covers {9,10}.
        assert_eq!(plan.covered_topics(&cat).count_ones(), 4);
    }

    #[test]
    fn render_matches_table5_notation() {
        let cat = toy::table2_catalog();
        let plan = Plan::from_codes(&cat, &["m1", "m2"]).unwrap();
        assert_eq!(plan.render(&cat), "m1 : core → m2 : elective");
    }

    #[test]
    fn display_and_from_iterator() {
        let plan: Plan = [ItemId(0), ItemId(2)].into_iter().collect();
        assert_eq!(plan.to_string(), "m0 → m2");
        assert!(Plan::new().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let plan = Plan::from_items(vec![ItemId(1), ItemId(0)]);
        let s = serde_json::to_string(&plan).unwrap();
        let back: Plan = serde_json::from_str(&s).unwrap();
        assert_eq!(plan, back);
    }
}
