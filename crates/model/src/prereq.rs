//! AND/OR prerequisite (antecedent) expressions.
//!
//! The paper (§II-A1): an item `m` may have prerequisites `pre^m ⊆ P`;
//! when "AND"ed, *all* antecedents must be recommended before `m`; when
//! "OR"ed, *any one* suffices (e.g. Big Data requires
//! `Data Mining OR Data Analytics`, Machine Learning requires
//! `Linear Algebra AND Data Mining` — Table II). The hard constraint
//! `gap` additionally requires each satisfying antecedent to appear at
//! least `gap` positions before `m` in the sequence.

use crate::ids::ItemId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A prerequisite expression tree over item ids.
///
/// Nested expressions are allowed (`All` of `Any`s, …) even though the
/// datasets in the paper only use a single level; the gap semantics
/// compose naturally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrereqExpr {
    /// No prerequisite.
    None,
    /// A single required antecedent.
    Item(ItemId),
    /// Every sub-expression must be satisfied ("AND").
    All(Vec<PrereqExpr>),
    /// At least one sub-expression must be satisfied ("OR").
    Any(Vec<PrereqExpr>),
}

impl PrereqExpr {
    /// Builds an AND of plain item antecedents.
    pub fn all_of(items: impl IntoIterator<Item = ItemId>) -> Self {
        let v: Vec<PrereqExpr> = items.into_iter().map(PrereqExpr::Item).collect();
        match v.len() {
            0 => PrereqExpr::None,
            1 => v.into_iter().next().expect("len checked"),
            _ => PrereqExpr::All(v),
        }
    }

    /// Builds an OR of plain item antecedents.
    pub fn any_of(items: impl IntoIterator<Item = ItemId>) -> Self {
        let v: Vec<PrereqExpr> = items.into_iter().map(PrereqExpr::Item).collect();
        match v.len() {
            0 => PrereqExpr::None,
            1 => v.into_iter().next().expect("len checked"),
            _ => PrereqExpr::Any(v),
        }
    }

    /// `true` when there is no prerequisite at all.
    pub fn is_none(&self) -> bool {
        matches!(self, PrereqExpr::None)
    }

    /// All item ids mentioned anywhere in the expression.
    pub fn referenced_items(&self) -> Vec<ItemId> {
        let mut out = Vec::new();
        self.collect_items(&mut out);
        out
    }

    fn collect_items(&self, out: &mut Vec<ItemId>) {
        match self {
            PrereqExpr::None => {}
            PrereqExpr::Item(id) => out.push(*id),
            PrereqExpr::All(v) | PrereqExpr::Any(v) => {
                for e in v {
                    e.collect_items(out);
                }
            }
        }
    }

    /// Evaluates the expression against a sequence prefix, using
    /// **semester (block) gap semantics**.
    ///
    /// `position_of(id)` must return the 0-based position of `id` in the
    /// sequence built so far, or `None` when absent. `at` is the position
    /// the candidate item `m` would take. Positions are grouped into
    /// blocks of `gap` consecutive slots (a "semester" of `gap` courses);
    /// an antecedent `p` counts as satisfied iff it is present **and**
    /// sits in a strictly earlier block: `⌊pos(p)/gap⌋ < ⌊at/gap⌋`.
    ///
    /// The paper states Eq. 4 as `Dist(pre^m, m) ≥ gap` but its own
    /// exemplar sequence `m1→m2→m4→m5→m6→m3` (gap = 3) places Data Mining
    /// at position 1 and Big Data at position 3 — raw distance 2 — while
    /// calling the plan fully valid ("the prerequisites of m must be
    /// taken at least a semester before", §II-B1). Block semantics is the
    /// reading consistent with that example: position 1 is semester 0,
    /// position 3 is semester 1. For `gap = 1` (trips) both readings
    /// coincide with "strictly before". The literal raw-distance reading
    /// is available as [`PrereqExpr::satisfied_with_min_distance`].
    pub fn satisfied_with_gap<F>(&self, position_of: &F, at: usize, gap: usize) -> bool
    where
        F: Fn(ItemId) -> Option<usize>,
    {
        let gap = gap.max(1);
        match self {
            PrereqExpr::None => true,
            PrereqExpr::Item(id) => match position_of(*id) {
                Some(pos) => pos / gap < at / gap,
                None => false,
            },
            PrereqExpr::All(v) => v.iter().all(|e| e.satisfied_with_gap(position_of, at, gap)),
            PrereqExpr::Any(v) => v.iter().any(|e| e.satisfied_with_gap(position_of, at, gap)),
        }
    }

    /// Evaluates the expression under the **literal raw-distance** reading
    /// of Eq. 4: an antecedent is satisfied iff present and
    /// `at - pos ≥ gap`. Kept for comparison/ablation; the planner and
    /// validators use [`PrereqExpr::satisfied_with_gap`].
    pub fn satisfied_with_min_distance<F>(&self, position_of: &F, at: usize, gap: usize) -> bool
    where
        F: Fn(ItemId) -> Option<usize>,
    {
        match self {
            PrereqExpr::None => true,
            PrereqExpr::Item(id) => match position_of(*id) {
                Some(pos) => at.saturating_sub(pos) >= gap.max(1) && pos < at,
                None => false,
            },
            PrereqExpr::All(v) => v
                .iter()
                .all(|e| e.satisfied_with_min_distance(position_of, at, gap)),
            PrereqExpr::Any(v) => v
                .iter()
                .any(|e| e.satisfied_with_min_distance(position_of, at, gap)),
        }
    }

    /// Evaluates presence only (gap = 1, i.e. "strictly before").
    pub fn satisfied<F>(&self, position_of: &F, at: usize) -> bool
    where
        F: Fn(ItemId) -> Option<usize>,
    {
        self.satisfied_with_gap(position_of, at, 1)
    }
}

impl fmt::Display for PrereqExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrereqExpr::None => f.write_str("[]"),
            PrereqExpr::Item(id) => write!(f, "{id}"),
            PrereqExpr::All(v) => {
                f.write_str("(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            PrereqExpr::Any(v) => {
                f.write_str("(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Position lookup over a literal sequence.
    fn pos_in(seq: &[u32]) -> impl Fn(ItemId) -> Option<usize> + '_ {
        move |id: ItemId| seq.iter().position(|&x| x == id.0)
    }

    #[test]
    fn none_is_always_satisfied() {
        let p = PrereqExpr::None;
        assert!(p.satisfied_with_gap(&pos_in(&[]), 0, 3));
    }

    #[test]
    fn single_item_requires_presence_and_gap() {
        let p = PrereqExpr::Item(ItemId(7));
        // Not present.
        assert!(!p.satisfied_with_gap(&pos_in(&[1, 2]), 2, 1));
        // Present at position 0 (semester 0), candidate at 3 (semester 1).
        assert!(p.satisfied_with_gap(&pos_in(&[7, 1, 2]), 3, 3));
        // Present at position 1 — still semester 0 — candidate at 3.
        assert!(p.satisfied_with_gap(&pos_in(&[1, 7, 2]), 3, 3));
        // Present at position 3 (semester 1), candidate at 5 (semester 1):
        // same semester, violated.
        assert!(!p.satisfied_with_gap(&pos_in(&[1, 2, 4, 7, 5]), 5, 3));
    }

    #[test]
    fn literal_min_distance_reading() {
        let p = PrereqExpr::Item(ItemId(7));
        // 3 - 0 = 3 >= 3.
        assert!(p.satisfied_with_min_distance(&pos_in(&[7, 1, 2]), 3, 3));
        // 3 - 1 = 2 < 3: the literal reading rejects what block semantics
        // accepts (this is exactly the paper's exemplar discrepancy).
        assert!(!p.satisfied_with_min_distance(&pos_in(&[1, 7, 2]), 3, 3));
        assert!(!p.satisfied_with_min_distance(&pos_in(&[1, 2]), 2, 1));
    }

    #[test]
    fn paper_or_example_big_data() {
        // Big Data (m5) requires [Data Mining (m2) OR Data Analytics (m3)];
        // gap=3 enforces "at least one semester before" (§III-B2).
        let p = PrereqExpr::any_of([ItemId(2), ItemId(3)]);
        // m2 taken at position 0 (semester 0), m5 candidate at position 3
        // (semester 1).
        assert!(p.satisfied_with_gap(&pos_in(&[2, 1, 4]), 3, 3));
        // Neither taken.
        assert!(!p.satisfied_with_gap(&pos_in(&[1, 4, 6]), 3, 3));
        // m3 at position 2 is still semester 0; candidate at 3 is
        // semester 1 — "at least a semester before" holds.
        assert!(p.satisfied_with_gap(&pos_in(&[1, 4, 3]), 3, 3));
        // But a candidate at position 5 with m3 at position 3: same
        // semester, violated.
        assert!(!p.satisfied_with_gap(&pos_in(&[1, 4, 6, 3, 7]), 5, 3));
    }

    #[test]
    fn paper_and_example_machine_learning() {
        // Machine Learning (m6) requires [Linear Algebra (m4) AND
        // Data Mining (m2)].
        let p = PrereqExpr::all_of([ItemId(4), ItemId(2)]);
        assert!(p.satisfied_with_gap(&pos_in(&[4, 2, 1, 3]), 5, 3));
        // Only one present.
        assert!(!p.satisfied_with_gap(&pos_in(&[4, 1, 3]), 5, 3));
        // Both present but m2 too close (position 3, candidate 5, gap 3).
        assert!(!p.satisfied_with_gap(&pos_in(&[4, 1, 3, 2]), 5, 3));
    }

    #[test]
    fn gap_zero_treated_as_one() {
        // gap <= 1 degenerates to "strictly before" — an antecedent can
        // never share a position with its dependent.
        let p = PrereqExpr::Item(ItemId(1));
        assert!(p.satisfied_with_gap(&pos_in(&[1]), 1, 0));
        assert!(!p.satisfied_with_gap(&pos_in(&[1]), 0, 0));
    }

    #[test]
    fn constructors_collapse_degenerate_shapes() {
        assert_eq!(PrereqExpr::all_of([]), PrereqExpr::None);
        assert_eq!(PrereqExpr::any_of([ItemId(3)]), PrereqExpr::Item(ItemId(3)));
        assert!(matches!(
            PrereqExpr::all_of([ItemId(1), ItemId(2)]),
            PrereqExpr::All(_)
        ));
    }

    #[test]
    fn nested_expressions_compose() {
        // (1 AND (2 OR 3))
        let p = PrereqExpr::All(vec![
            PrereqExpr::Item(ItemId(1)),
            PrereqExpr::any_of([ItemId(2), ItemId(3)]),
        ]);
        assert!(p.satisfied(&pos_in(&[1, 3]), 2));
        assert!(!p.satisfied(&pos_in(&[1]), 1));
        assert!(!p.satisfied(&pos_in(&[2, 3]), 2));
    }

    #[test]
    fn referenced_items_collects_all() {
        let p = PrereqExpr::All(vec![
            PrereqExpr::Item(ItemId(1)),
            PrereqExpr::any_of([ItemId(2), ItemId(3)]),
        ]);
        assert_eq!(p.referenced_items(), vec![ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn display_renders_and_or() {
        let p = PrereqExpr::All(vec![
            PrereqExpr::Item(ItemId(4)),
            PrereqExpr::Item(ItemId(2)),
        ]);
        assert_eq!(p.to_string(), "(m4 AND m2)");
        let q = PrereqExpr::any_of([ItemId(2), ItemId(3)]);
        assert_eq!(q.to_string(), "(m2 OR m3)");
        assert_eq!(PrereqExpr::None.to_string(), "[]");
    }
}
