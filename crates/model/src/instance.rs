//! A complete TPP instance: catalog + constraints, the unit planners and
//! experiments consume.

use crate::catalog::Catalog;
use crate::constraints::{HardConstraints, SoftConstraints, TripConstraints};
use crate::ids::ItemId;
use serde::{Deserialize, Serialize};

/// One ready-to-plan problem instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanningInstance {
    /// The item universe.
    pub catalog: Catalog,
    /// Hard constraints `P_hard`.
    pub hard: HardConstraints,
    /// Soft constraints `P_soft`.
    pub soft: SoftConstraints,
    /// Trip-only constraints; `None` for course instances.
    pub trip: Option<TripConstraints>,
    /// The dataset's default starting item (Table III's `s_1`), if any.
    pub default_start: Option<ItemId>,
}

impl PlanningInstance {
    /// `true` when this is a trip instance.
    pub fn is_trip(&self) -> bool {
        self.trip.is_some()
    }

    /// The plan horizon `H`.
    pub fn horizon(&self) -> usize {
        self.hard.horizon()
    }

    /// Consistency checks across the bundle: constraint sanity, template
    /// shape, ideal-vector vocabulary length, start item validity.
    pub fn validate(&self) -> Result<(), crate::ModelError> {
        self.hard.validate()?;
        self.soft.templates.check_shape(&self.hard)?;
        if self.soft.ideal_topics.len() != self.catalog.vocabulary().len() {
            return Err(crate::ModelError::InvalidConstraints(format!(
                "ideal topic vector has length {}, vocabulary has {}",
                self.soft.ideal_topics.len(),
                self.catalog.vocabulary().len()
            )));
        }
        if let Some(start) = self.default_start {
            if self.catalog.get(start).is_none() {
                return Err(crate::ModelError::UnknownItem(start));
            }
        }
        if self.is_trip() {
            // The trip environment's distance legs and popularity
            // shaping read `item.poi` for every item; a POI-less item
            // used to surface as a panic deep inside `leg_km`. Reject
            // the catalog up front instead.
            for item in self.catalog.items() {
                if item.poi.is_none() {
                    return Err(crate::ModelError::MissingPoiAttrs { item: item.id });
                }
            }
        }
        if self.hard.horizon() > self.catalog.len() {
            return Err(crate::ModelError::InvalidConstraints(format!(
                "horizon {} exceeds catalog size {}",
                self.hard.horizon(),
                self.catalog.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    fn toy_instance() -> PlanningInstance {
        PlanningInstance {
            catalog: toy::table2_catalog(),
            hard: toy::table2_hard(),
            soft: toy::table2_soft(),
            trip: None,
            default_start: Some(ItemId(0)),
        }
    }

    #[test]
    fn toy_instance_validates() {
        let inst = toy_instance();
        inst.validate().unwrap();
        assert!(!inst.is_trip());
        assert_eq!(inst.horizon(), 6);
    }

    #[test]
    fn bad_start_rejected() {
        let mut inst = toy_instance();
        inst.default_start = Some(ItemId(99));
        assert!(inst.validate().is_err());
    }

    #[test]
    fn oversized_horizon_rejected() {
        let mut inst = toy_instance();
        inst.hard.n_primary = 10;
        inst.hard.n_secondary = 10;
        inst.soft.templates = crate::TemplateSet::new(vec![]);
        assert!(inst.validate().is_err());
    }

    #[test]
    fn trip_instance_with_poiless_item_rejected() {
        // A course catalog (no POI attrs anywhere) dressed up as a trip
        // instance must fail validation instead of panicking later in
        // the environment's distance code.
        let mut inst = toy_instance();
        inst.trip = Some(TripConstraints::default());
        match inst.validate() {
            Err(crate::ModelError::MissingPoiAttrs { item }) => assert_eq!(item, ItemId(0)),
            other => panic!("expected MissingPoiAttrs, got {other:?}"),
        }
    }

    #[test]
    fn trip_instance_flag() {
        let inst = PlanningInstance {
            catalog: toy::paris_toy_catalog(),
            hard: toy::paris_toy_hard(),
            soft: toy::paris_toy_soft(),
            trip: Some(TripConstraints::default()),
            default_start: None,
        };
        assert!(inst.is_trip());
        inst.validate().unwrap();
    }
}
