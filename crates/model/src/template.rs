//! Interleaving templates: the soft constraint `IT` (§II-A3).
//!
//! An interleaving template is one ideal permutation of primary and
//! secondary slots, e.g. `[primary, secondary, secondary, primary, ...]`;
//! `IT` is a set of such permutations provided by the domain expert. The
//! recommended sequence must adhere to these "as closely as possible" —
//! that closeness is quantified by the similarity kernel in
//! `tpp-core::reward`.

use crate::constraints::HardConstraints;
use crate::item::ItemKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One slot of a template: primary or secondary.
pub type SlotKind = ItemKind;

/// One ideal permutation `I ∈ IT` of primary/secondary slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InterleavingTemplate {
    slots: Vec<SlotKind>,
}

impl InterleavingTemplate {
    /// Creates a template from explicit slots.
    pub fn new(slots: Vec<SlotKind>) -> Self {
        InterleavingTemplate { slots }
    }

    /// Parses the compact notation used throughout this repo's docs and
    /// tests: `'P'` = primary, `'S'` = secondary, e.g. `"PPSPSS"` for the
    /// paper's `I1 = [primary, primary, secondary, primary, secondary,
    /// secondary]`. Also available through [`std::str::FromStr`].
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Result<Self, crate::ModelError> {
        let mut slots = Vec::with_capacity(s.len());
        for ch in s.chars() {
            match ch.to_ascii_uppercase() {
                'P' => slots.push(ItemKind::Primary),
                'S' => slots.push(ItemKind::Secondary),
                other => {
                    return Err(crate::ModelError::InvalidConstraints(format!(
                        "template char must be P or S, got {other:?}"
                    )))
                }
            }
        }
        Ok(InterleavingTemplate { slots })
    }

    /// The slot sequence.
    #[inline]
    pub fn slots(&self) -> &[SlotKind] {
        &self.slots
    }

    /// Template length (`|I| = #primary + #secondary`).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` for the empty template.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of primary slots.
    pub fn primary_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_primary()).count()
    }

    /// Number of secondary slots.
    pub fn secondary_count(&self) -> usize {
        self.len() - self.primary_count()
    }
}

impl std::str::FromStr for InterleavingTemplate {
    type Err = crate::ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        InterleavingTemplate::from_str(s)
    }
}

impl fmt::Display for InterleavingTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.slots {
            f.write_str(if s.is_primary() { "P" } else { "S" })?;
        }
        Ok(())
    }
}

/// The full template set `IT = {I1, I2, …}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemplateSet {
    templates: Vec<InterleavingTemplate>,
}

impl TemplateSet {
    /// Creates a template set.
    pub fn new(templates: Vec<InterleavingTemplate>) -> Self {
        TemplateSet { templates }
    }

    /// Parses several compact-notation templates at once.
    pub fn from_strs(specs: &[&str]) -> Result<Self, crate::ModelError> {
        let templates = specs
            .iter()
            .map(|s| InterleavingTemplate::from_str(s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TemplateSet { templates })
    }

    /// The paper's course-planning example `IT` (§II-B1):
    /// `{PPSPSS, PSSSPP, PSSPPS}`.
    pub fn paper_course_example() -> Self {
        Self::from_strs(&["PPSPSS", "PSSSPP", "PSSPPS"]).expect("static templates are valid")
    }

    /// The paper's trip-planning example `IT` (§II-B2):
    /// `{PSPSS, PSSSP, PSSPS}`.
    pub fn paper_trip_example() -> Self {
        Self::from_strs(&["PSPSS", "PSSSP", "PSSPS"]).expect("static templates are valid")
    }

    /// The templates, in insertion order.
    #[inline]
    pub fn templates(&self) -> &[InterleavingTemplate] {
        &self.templates
    }

    /// `|IT|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// `true` when no templates are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Checks that every template has exactly the primary/secondary slot
    /// counts the hard constraints require.
    pub fn check_shape(&self, hard: &HardConstraints) -> Result<(), crate::ModelError> {
        for t in &self.templates {
            let p = t.primary_count();
            let s = t.secondary_count();
            if p != hard.n_primary || s != hard.n_secondary {
                return Err(crate::ModelError::TemplateShapeMismatch {
                    primaries: p,
                    secondaries: s,
                    expected_primaries: hard.n_primary,
                    expected_secondaries: hard.n_secondary,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let t = InterleavingTemplate::from_str("PpSs").unwrap();
        assert_eq!(t.to_string(), "PPSS");
        assert_eq!(t.len(), 4);
        assert_eq!(t.primary_count(), 2);
        assert_eq!(t.secondary_count(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(InterleavingTemplate::from_str("PXQ").is_err());
    }

    #[test]
    fn paper_course_templates() {
        let it = TemplateSet::paper_course_example();
        assert_eq!(it.len(), 3);
        // I1 = [primary, primary, secondary, primary, secondary, secondary]
        assert_eq!(it.templates()[0].to_string(), "PPSPSS");
        // I2 = [primary, secondary, secondary, secondary, primary, primary]
        assert_eq!(it.templates()[1].to_string(), "PSSSPP");
        // I3 = [primary, secondary, secondary, primary, primary, secondary]
        assert_eq!(it.templates()[2].to_string(), "PSSPPS");
        for t in it.templates() {
            assert_eq!(t.primary_count(), 3);
            assert_eq!(t.secondary_count(), 3);
        }
    }

    #[test]
    fn paper_trip_templates() {
        let it = TemplateSet::paper_trip_example();
        assert_eq!(it.len(), 3);
        assert_eq!(it.templates()[0].to_string(), "PSPSS");
        for t in it.templates() {
            assert_eq!(t.primary_count(), 2);
            assert_eq!(t.secondary_count(), 3);
        }
        // Matches the trip hard-constraint example ⟨6, 2, 3, 1⟩.
        it.check_shape(&HardConstraints::trip_example()).unwrap();
    }

    #[test]
    fn check_shape_flags_mismatch() {
        let it = TemplateSet::paper_trip_example();
        let err = it
            .check_shape(&HardConstraints::course_example())
            .unwrap_err();
        assert!(matches!(
            err,
            crate::ModelError::TemplateShapeMismatch { .. }
        ));
    }

    #[test]
    fn empty_set_checks_vacuously() {
        let it = TemplateSet::new(vec![]);
        assert!(it.is_empty());
        it.check_shape(&HardConstraints::course_example()).unwrap();
    }
}
