//! # tpp-bench
//!
//! Shared helpers for the Criterion benchmark suite. The benches live in
//! `benches/`:
//!
//! * `tables.rs` — one group per paper table (IX–XVI plus the case
//!   studies), each timing a representative cell of that experiment;
//! * `figures.rs` — Fig. 1 comparisons and the Fig. 2 scalability curve;
//! * `ablations.rs` — the design-choice ablations DESIGN.md calls out
//!   (AvgSim vs MinSim, SARSA vs Q-learning, the θ gate, exploration,
//!   λ traces);
//! * `micro.rs` — hot-kernel micro-benches (bitsets, similarity, Q rows).

#![warn(missing_docs)]

use tpp_core::PlannerParams;
use tpp_model::PlanningInstance;

/// A cheap (low-episode) parameter set for benchmarking one learn cycle
/// without waiting for the full 500-episode default.
pub fn bench_params(base: PlannerParams, episodes: usize) -> PlannerParams {
    let mut p = base;
    p.episodes = episodes;
    p
}

/// Pins the start item for a bench run.
pub fn pinned(params: PlannerParams, instance: &PlanningInstance) -> PlannerParams {
    match instance.default_start {
        Some(s) => params.with_start(s),
        None => params,
    }
}
