//! Micro-benches on the serving front end's per-byte hot path: the
//! capped line framer (`tpp_serve::LineReader`) that every TCP and
//! stdio request flows through, against `BufRead::lines` as the
//! uncapped reference, plus the shed path's raw-id scan.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::io::BufRead;
use tpp_serve::{extract_raw_id, FramedLine, LineReader};

/// A realistic NDJSON request stream: short ops, medium plan requests,
/// a CRLF line and one near-cap line per repetition.
fn corpus(repetitions: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in 0..repetitions {
        bytes.extend_from_slice(format!("{{\"op\":\"health\",\"id\":\"h{i}\"}}\n").as_bytes());
        bytes.extend_from_slice(
            format!(
                "{{\"op\":\"plan\",\"dataset\":\"ds-ct\",\"episodes\":300,\"seed\":{i},\"deadline_ms\":250,\"id\":\"p{i}\"}}\r\n"
            )
            .as_bytes(),
        );
        bytes.extend_from_slice(b"{\"op\":\"stats\"}\n");
        let filler = "y".repeat(900);
        bytes.extend_from_slice(format!("{{\"op\":\"plan\",\"note\":\"{filler}\"}}\n").as_bytes());
    }
    bytes
}

fn bench_line_reader(c: &mut Criterion) {
    let bytes = corpus(64);
    let mut group = c.benchmark_group("framing");

    group.bench_function("line_reader_capped", |b| {
        b.iter(|| {
            let mut reader = LineReader::new(black_box(&bytes[..]), 4096);
            let mut lines = 0u64;
            loop {
                match reader.next_line() {
                    FramedLine::Line(l) => {
                        black_box(l.len());
                        lines += 1;
                    }
                    FramedLine::Eof => break,
                    _ => lines += 1,
                }
            }
            lines
        })
    });

    group.bench_function("bufread_lines_reference", |b| {
        b.iter(|| {
            let mut lines = 0u64;
            for line in std::io::BufReader::new(black_box(&bytes[..])).lines() {
                black_box(line.unwrap().len());
                lines += 1;
            }
            lines
        })
    });
    group.finish();
}

fn bench_overlong_discard(c: &mut Criterion) {
    // One 64 KiB hostile line followed by a normal request: the framer
    // must discard cheaply without buffering the whole line.
    let mut bytes = vec![b'x'; 64 * 1024];
    bytes.push(b'\n');
    bytes.extend_from_slice(b"{\"op\":\"health\",\"id\":\"after\"}\n");
    let mut group = c.benchmark_group("framing");
    group.bench_function("overlong_discard_64k", |b| {
        b.iter(|| {
            let mut reader = LineReader::new(black_box(&bytes[..]), 1024);
            let mut outcomes = 0u64;
            loop {
                match reader.next_line() {
                    FramedLine::Eof => break,
                    other => {
                        black_box(&other);
                        outcomes += 1;
                    }
                }
            }
            outcomes
        })
    });
    group.finish();
}

fn bench_raw_id_scan(c: &mut Criterion) {
    // The shed path runs this on every overloaded request to echo ids
    // out of lines that may not even parse.
    let lines = [
        r#"{"op":"plan","dataset":"ds-ct","episodes":300,"id":"stormy-42"}"#,
        r#"{"id":"m7","op":<<<not json"#,
        r#"{"op":"stats"}"#,
    ];
    c.bench_function("framing/extract_raw_id", |b| {
        b.iter(|| {
            let mut found = 0u64;
            for line in &lines {
                found += extract_raw_id(black_box(line)).is_some() as u64;
            }
            found
        })
    });
}

criterion_group!(
    benches,
    bench_line_reader,
    bench_overlong_discard,
    bench_raw_id_scan
);
criterion_main!(benches);
