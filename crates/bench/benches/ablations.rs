//! Ablations of the design choices DESIGN.md calls out. Each group
//! benches the variants back to back so both the runtime cost and (via
//! the printed score) the quality effect of the choice are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpp_bench::{bench_params, pinned};
use tpp_core::{score_plan, PlannerParams, RlPlanner, SimAggregate};
use tpp_datagen::defaults::*;
use tpp_rl::env::ChainEnv;
use tpp_rl::{EpsilonGreedy, QLearningAgent, SarsaAgent, SarsaConfig, Schedule};

fn learn_score(instance: &tpp_model::PlanningInstance, params: &PlannerParams) -> f64 {
    let start = instance.default_start.unwrap();
    let (policy, _) = RlPlanner::learn(instance, params, 0);
    score_plan(
        instance,
        &RlPlanner::recommend(&policy, instance, params, start),
    )
}

/// AvgSim vs MinSim aggregation in the reward (the paper runs both).
fn ablation_sim_aggregate(c: &mut Criterion) {
    let instance = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
    let base = pinned(
        bench_params(PlannerParams::univ1_defaults(), 100),
        &instance,
    );
    let mut group = c.benchmark_group("ablation_sim_aggregate");
    group.sample_size(10);
    for (name, sim) in [
        ("avg", SimAggregate::Average),
        ("min", SimAggregate::Minimum),
    ] {
        let params = base.clone().with_sim(sim);
        group.bench_function(name, |b| b.iter(|| learn_score(&instance, &params)));
    }
    group.finish();
}

/// SARSA vs Q-learning on the generic substrate (the paper argues for
/// on-policy SARSA).
fn ablation_sarsa_vs_q(c: &mut Criterion) {
    let config = SarsaConfig {
        alpha: Schedule::Constant(0.5),
        gamma: 0.9,
        episodes: 300,
    };
    let mut group = c.benchmark_group("ablation_sarsa_vs_q");
    group.sample_size(10);
    group.bench_function("sarsa", |b| {
        b.iter(|| {
            let mut env = ChainEnv::new(12, 11);
            let mut agent = SarsaAgent::new(&env, config);
            let mut rng = StdRng::seed_from_u64(1);
            agent.train(&mut env, &EpsilonGreedy::new(0.2), &mut rng, |_, _| 0)
        })
    });
    group.bench_function("qlearning", |b| {
        b.iter(|| {
            let mut env = ChainEnv::new(12, 11);
            let mut agent = QLearningAgent::new(&env, config);
            let mut rng = StdRng::seed_from_u64(1);
            agent.train(&mut env, &EpsilonGreedy::new(0.2), &mut rng, |_, _| 0)
        })
    });
    group.finish();
}

/// The θ = r1·r2 gate vs an ungated reward (ε = 0 disables the coverage
/// gate; Theorem 1 rests on the gate).
fn ablation_gate(c: &mut Criterion) {
    let instance = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
    let mut group = c.benchmark_group("ablation_gate");
    group.sample_size(10);
    let gated = pinned(
        bench_params(PlannerParams::univ1_defaults(), 100),
        &instance,
    );
    let mut ungated = gated.clone();
    ungated.epsilon = 0.0; // coverage gate always passes
    group.bench_function("gated_default_eps", |b| {
        b.iter(|| learn_score(&instance, &gated))
    });
    group.bench_function("coverage_gate_off", |b| {
        b.iter(|| learn_score(&instance, &ungated))
    });
    group.finish();
}

/// Exploration schedule: decaying ε-greedy vs pure reward-greedy
/// (Algorithm 1's literal rollout).
fn ablation_exploration(c: &mut Criterion) {
    let instance = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
    let mut group = c.benchmark_group("ablation_exploration");
    group.sample_size(10);
    let decaying = pinned(
        bench_params(PlannerParams::univ1_defaults(), 100),
        &instance,
    );
    let mut greedy_only = decaying.clone();
    greedy_only.exploration = Schedule::Constant(0.0);
    group.bench_function("decaying_eps", |b| {
        b.iter(|| learn_score(&instance, &decaying))
    });
    group.bench_function("reward_greedy_only", |b| {
        b.iter(|| learn_score(&instance, &greedy_only))
    });
    group.finish();
}

/// Eligibility traces: λ = 0.9 (default) vs plain one-step SARSA (λ = 0).
fn ablation_traces(c: &mut Criterion) {
    let instance = tpp_datagen::univ1_cyber(UNIV1_SEED);
    let mut group = c.benchmark_group("ablation_traces");
    group.sample_size(10);
    let with_traces = pinned(
        bench_params(PlannerParams::univ1_defaults(), 100),
        &instance,
    );
    let mut one_step = with_traces.clone();
    one_step.lambda = 0.0;
    group.bench_function("lambda_0_9", |b| {
        b.iter(|| learn_score(&instance, &with_traces))
    });
    group.bench_function("lambda_0", |b| b.iter(|| learn_score(&instance, &one_step)));
    group.finish();
}

criterion_group!(
    ablations,
    ablation_sim_aggregate,
    ablation_sarsa_vs_q,
    ablation_gate,
    ablation_exploration,
    ablation_traces
);
criterion_main!(ablations);
