//! Micro-benches on the hot kernels: topic bitsets (vs a naive
//! `Vec<bool>` reference), the Eq. 6 similarity kernel, Q-table row
//! scans, the full Eq. 2 reward, and haversine distance.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tpp_core::{InterleavingKernel, PlannerParams, RewardModel, SimAggregate};
use tpp_datagen::defaults::UNIV1_SEED;
use tpp_model::{ItemId, ItemKind, TemplateSet, TopicId, TopicVector};
use tpp_rl::QTable;

/// The naive baseline the bitset replaces (DESIGN.md `ablation_bitset`).
fn naive_novel_coverage(m: &[bool], ideal: &[bool], current: &[bool]) -> u32 {
    m.iter()
        .zip(ideal)
        .zip(current)
        .filter(|((m, i), c)| **m && **i && !**c)
        .count() as u32
}

fn bench_bitset(c: &mut Criterion) {
    let n = 100usize;
    let mk = |step: usize| -> TopicVector {
        TopicVector::from_topics(n, (0..n).step_by(step).map(TopicId::from))
    };
    let m = mk(3);
    let ideal = mk(2);
    let current = mk(5);
    let mb: Vec<bool> = m.to_bits().iter().map(|&b| b == 1).collect();
    let ib: Vec<bool> = ideal.to_bits().iter().map(|&b| b == 1).collect();
    let cb: Vec<bool> = current.to_bits().iter().map(|&b| b == 1).collect();

    let mut group = c.benchmark_group("ablation_bitset");
    group.bench_function("bitset_novel_ideal_coverage", |b| {
        b.iter(|| black_box(&m).novel_ideal_coverage(black_box(&ideal), black_box(&current)))
    });
    group.bench_function("vec_bool_novel_ideal_coverage", |b| {
        b.iter(|| naive_novel_coverage(black_box(&mb), black_box(&ib), black_box(&cb)))
    });
    group.bench_function("bitset_union", |b| {
        b.iter(|| {
            let mut x = m.clone();
            x.union_with(black_box(&ideal));
            x
        })
    });
    group.finish();
}

fn bench_similarity_kernel(c: &mut Criterion) {
    let it = TemplateSet::paper_course_example();
    let seq = [
        ItemKind::Primary,
        ItemKind::Secondary,
        ItemKind::Primary,
        ItemKind::Primary,
        ItemKind::Secondary,
        ItemKind::Secondary,
    ];
    let mut group = c.benchmark_group("similarity_kernel");
    group.bench_function("avg_sim_len6", |b| {
        b.iter(|| InterleavingKernel::aggregate(black_box(&seq), &it, SimAggregate::Average))
    });
    group.bench_function("best_sim_len6", |b| {
        b.iter(|| InterleavingKernel::best(black_box(&seq), &it))
    });
    group.finish();
}

fn bench_qtable(c: &mut Criterion) {
    let n = 128usize;
    let mut q = QTable::square(n);
    for i in 0..n {
        for j in 0..n {
            q.set(i, j, ((i * 31 + j * 17) % 97) as f64);
        }
    }
    let allowed: Vec<usize> = (0..n).step_by(2).collect();
    let mut group = c.benchmark_group("qtable");
    group.bench_function("best_action_masked_row128", |b| {
        b.iter(|| q.best_action(black_box(5), black_box(&allowed)))
    });
    group.bench_function("td_update", |b| {
        b.iter(|| {
            q.td_update(black_box(3), black_box(7), 0.75, black_box(1.25));
            q.get(3, 7)
        })
    });
    group.finish();
}

fn bench_reward(c: &mut Criterion) {
    let instance = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
    let params = PlannerParams::univ1_defaults();
    let model = RewardModel::new(
        instance.soft.ideal_topics.clone(),
        instance.soft.templates.clone(),
        instance.hard.gap,
        &params,
        false,
    );
    let item = instance.catalog.by_code("CS 634").unwrap();
    let seq = [ItemKind::Primary, ItemKind::Secondary, ItemKind::Primary];
    let mut coverage = instance.catalog.vocabulary().zero_vector();
    coverage.union_with(&instance.catalog.by_code("CS 675").unwrap().topics);
    let pos = |id: ItemId| if id.0 < 3 { Some(id.0 as usize) } else { None };
    c.bench_function("reward_eq2_full", |b| {
        b.iter(|| model.reward(black_box(item), &seq, &coverage, &pos, None))
    });
}

fn bench_haversine(c: &mut Criterion) {
    c.bench_function("haversine_km", |b| {
        b.iter(|| {
            tpp_geo::haversine_km(
                black_box(48.8584),
                black_box(2.2945),
                black_box(40.7128),
                black_box(-74.0060),
            )
        })
    });
}

criterion_group!(
    micro,
    bench_bitset,
    bench_similarity_kernel,
    bench_qtable,
    bench_reward,
    bench_haversine
);
criterion_main!(micro);
