//! Figure benches: Fig. 1's per-method critical paths and Fig. 2's
//! learning-time scaling in N (the bench ids encode the episode count so
//! the linearity claim can be read off the Criterion report).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpp_baselines::{eda_plan, gold_plan, omega_plan, OmegaConfig};
use tpp_bench::{bench_params, pinned};
use tpp_core::{score_plan, PlannerParams, RlPlanner};
use tpp_datagen::defaults::*;

fn bench_fig1_course(c: &mut Criterion) {
    let instance = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
    let params = pinned(
        bench_params(PlannerParams::univ1_defaults(), 100),
        &instance,
    );
    let start = instance.default_start.unwrap();
    let mut group = c.benchmark_group("fig1_course");
    group.sample_size(10);
    group.bench_function("rl_planner", |b| {
        b.iter(|| {
            let (policy, _) = RlPlanner::learn(&instance, &params, 0);
            score_plan(
                &instance,
                &RlPlanner::recommend(&policy, &instance, &params, start),
            )
        })
    });
    group.bench_function("eda", |b| {
        b.iter(|| score_plan(&instance, &eda_plan(&instance, &params, start, 0)))
    });
    group.bench_function("omega", |b| {
        b.iter(|| {
            score_plan(
                &instance,
                &omega_plan(
                    &instance,
                    &OmegaConfig::paper_adaptation(instance.horizon()),
                    None,
                ),
            )
        })
    });
    group.bench_function("gold", |b| {
        b.iter(|| score_plan(&instance, &gold_plan(&instance, Some(start))))
    });
    group.finish();
}

fn bench_fig1_trip(c: &mut Criterion) {
    let d = tpp_datagen::nyc(NYC_SEED);
    let instance = &d.instance;
    let params = pinned(bench_params(PlannerParams::trip_defaults(), 100), instance);
    let start = instance.default_start.unwrap();
    let mut group = c.benchmark_group("fig1_trip");
    group.sample_size(10);
    group.bench_function("rl_planner", |b| {
        b.iter(|| {
            let (policy, _) = RlPlanner::learn(instance, &params, 0);
            score_plan(
                instance,
                &RlPlanner::recommend(&policy, instance, &params, start),
            )
        })
    });
    group.bench_function("eda", |b| {
        b.iter(|| score_plan(instance, &eda_plan(instance, &params, start, 0)))
    });
    group.bench_function("gold", |b| {
        b.iter(|| score_plan(instance, &gold_plan(instance, Some(start))))
    });
    group.finish();
}

fn bench_fig2_scalability(c: &mut Criterion) {
    let instance = tpp_datagen::univ1_ds_ct(UNIV1_SEED);
    let mut group = c.benchmark_group("fig2_scalability");
    group.sample_size(10);
    for n in [100usize, 200, 300, 500, 1000] {
        let params = pinned(bench_params(PlannerParams::univ1_defaults(), n), &instance);
        group.bench_with_input(BenchmarkId::new("learn", n), &n, |b, _| {
            b.iter(|| RlPlanner::learn(&instance, &params, 0))
        });
    }
    // Recommendation time is independent of N: one bench with a trained
    // policy (Fig. 2 b/d's flat line).
    let params = pinned(
        bench_params(PlannerParams::univ1_defaults(), 500),
        &instance,
    );
    let (policy, _) = RlPlanner::learn(&instance, &params, 0);
    let start = instance.default_start.unwrap();
    group.bench_function("recommend", |b| {
        b.iter(|| RlPlanner::recommend(&policy, &instance, &params, start))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig1_course,
    bench_fig1_trip,
    bench_fig2_scalability
);
criterion_main!(figures);
